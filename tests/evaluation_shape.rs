//! Shape checks on the reproduced evaluation: the orderings and
//! qualitative claims of the paper's Section 4 must hold at test size.
//! Absolute numbers are recorded in EXPERIMENTS.md, not asserted here.

use psb::eval::{fig6, fig7, geometric_mean, table3, EvalParams};

fn params() -> EvalParams {
    EvalParams {
        size: 384,
        ..EvalParams::default()
    }
}

#[test]
fn figure6_ordering_holds() {
    let f = fig6(&params());
    // models: [global, squash, trace, region-squash]
    let g = &f.geomeans;
    assert!(g[0] > 1.0, "global must beat the scalar machine");
    assert!(g[1] >= g[0] * 0.98, "squashing >= global (geomean)");
    assert!(g[2] >= g[1] * 0.97, "trace ~>= squashing (geomean)");
    assert!(g[3] >= g[2] * 0.97, "region scheduling ~>= trace (geomean)");
}

#[test]
fn figure7_ordering_holds() {
    let f = fig7(&params());
    // models: [global, boost, trace-pred, region-pred]
    let g = &f.geomeans;
    assert!(g[1] > g[0], "boosting beats global scheduling");
    assert!(g[2] > g[1], "trace predicating beats boosting");
    assert!(
        g[3] >= g[2],
        "region predicating >= trace predicating (geomean)"
    );
    assert!(
        g[3] > 1.8,
        "the headline speedup is well above the restricted models"
    );

    // Section 4.2.2: on the extremely predictable benchmarks, region
    // predicating has no benefit over trace predicating...
    for b in &f.benches {
        let tp = b.speedup_of(psb::sched::Model::TracePred).unwrap();
        let rp = b.speedup_of(psb::sched::Model::RegionPred).unwrap();
        if b.name == "grep" || b.name == "nroff" {
            assert!(
                (rp / tp - 1.0).abs() < 0.08,
                "{}: region ≈ trace on predictable benchmarks (got {tp:.2} vs {rp:.2})",
                b.name
            );
        }
    }
    // ... while the unpredictable ones gain considerably somewhere.
    let gains: Vec<f64> = f
        .benches
        .iter()
        .filter(|b| ["compress", "eqntott", "espresso", "li"].contains(&b.name.as_str()))
        .map(|b| {
            b.speedup_of(psb::sched::Model::RegionPred).unwrap()
                / b.speedup_of(psb::sched::Model::TracePred).unwrap()
        })
        .collect();
    assert!(
        gains.iter().any(|&g| g > 1.05),
        "region predicating must win considerably on some unpredictable benchmark: {gains:?}"
    );
    assert!(geometric_mean(&gains) >= 1.0);
}

#[test]
fn table3_bands_hold() {
    let rows = table3(&params());
    for row in &rows {
        assert_eq!(row.accuracy.len(), 8, "{}: need depths 1..=8", row.name);
        // Accuracy decays monotonically (within float fuzz).
        for w in row.accuracy.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{}: accuracy must decay", row.name);
        }
        match row.name.as_str() {
            "grep" | "nroff" => {
                assert!(
                    row.accuracy[0] > 0.95,
                    "{} is extremely predictable",
                    row.name
                );
                assert!(
                    row.accuracy[7] > 0.75,
                    "{} stays predictable at depth 8",
                    row.name
                );
            }
            _ => {
                assert!(
                    row.accuracy[0] < 0.96,
                    "{} must not be extremely predictable",
                    row.name
                );
                assert!(
                    row.accuracy[3] < 0.88,
                    "{} four-branch accuracy must have decayed",
                    row.name
                );
            }
        }
    }
    // The predictable/unpredictable split that drives Section 4.2.2.
    let acc4 = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.accuracy[3])
            .unwrap()
    };
    assert!(acc4("grep") > acc4("compress"));
    assert!(acc4("nroff") > acc4("eqntott"));
}
