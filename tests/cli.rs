//! End-to-end tests of the `psbsim` command-line interface.

use std::process::Command;

fn psbsim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_psbsim"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("psbsim spawns")
}

#[test]
fn run_reports_speedup_and_match() {
    let out = psbsim(&["run", "asm/gcd.asm"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("speedup:"));
    assert!(text.contains("golden model:  match"));
    assert!(text.contains("r1 = 12"), "gcd(10044, 3108) = 12:\n{text}");
}

#[test]
fn scalar_subcommand_runs_baseline_only() {
    let out = psbsim(&["scalar", "asm/gcd.asm"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cycles:"));
    assert!(text.contains("r1 = 12"));
    assert!(!text.contains("speedup"));
}

#[test]
fn disasm_prints_vliw_listing() {
    let out = psbsim(&["disasm", "asm/gcd.asm", "--model", "trace-pred"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vliw program"));
    assert!(text.contains("W0"));
}

#[test]
fn every_model_flag_accepted() {
    for model in [
        "global",
        "squash",
        "trace",
        "region-squash",
        "boost",
        "trace-pred",
        "region-pred",
    ] {
        let out = psbsim(&["run", "asm/gcd.asm", "--model", model]);
        assert!(out.status.success(), "{model}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("golden model:  match"));
    }
}

#[test]
fn unroll_and_optimize_flags_work() {
    let out = psbsim(&[
        "run",
        "asm/matmul.asm",
        "--width",
        "8",
        "--conds",
        "8",
        "--unroll",
        "2",
        "--optimize",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("r7 = 2629"));
}

#[test]
fn events_flag_prints_table1_format() {
    let out = psbsim(&["run", "asm/gcd.asm", "--events"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Machine state transition"));
    assert!(text.contains("spec write"));
}

#[test]
fn bad_usage_exits_with_code_2() {
    for args in [
        &["run"][..],
        &["frobnicate", "asm/gcd.asm"][..],
        &["run", "asm/gcd.asm", "--model", "nonsense"][..],
        &["run", "asm/gcd.asm", "--width", "many"][..],
    ] {
        let out = psbsim(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    }
}

#[test]
fn missing_file_exits_with_code_1() {
    let out = psbsim(&["run", "asm/no_such_file.asm"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn parse_error_reports_line() {
    let dir = std::env::temp_dir().join("psbsim_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.asm");
    std::fs::write(&bad, "a:\n    r1 = r2 $$ r3\n    halt\n").unwrap();
    let out = psbsim(&["run", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");
}
