//! Cross-crate integration: every scheduling model, over every benchmark
//! kernel, must reproduce the scalar golden model's observable state —
//! with separate training and evaluation inputs, on several machine
//! shapes.

use psb::compile::{compile_fresh, CompileRequest, ProfileSource};
use psb::core::{MachineConfig, ShadowMode};
use psb::isa::Resources;
use psb::scalar::{ScalarConfig, ScalarMachine};
use psb::sched::{Model, SchedConfig};
use psb::workloads::{all_workloads_sized, by_name};

const SIZE: usize = 256;
const TRAIN_SEED: u64 = 5;
const EVAL_SEED: u64 = 99;

fn check(name: &str, sched_cfg: &SchedConfig, machine_cfg: &MachineConfig) {
    let train = by_name(name, TRAIN_SEED, SIZE).expect("known workload");
    let eval = by_name(name, EVAL_SEED, SIZE).expect("known workload");
    let scalar = ScalarMachine::new(&eval.program, ScalarConfig::default())
        .run()
        .expect("eval run");
    let art = compile_fresh(&CompileRequest {
        program: &eval.program,
        profile: ProfileSource::Train {
            program: &train.program,
            config: ScalarConfig::default(),
        },
        sched: sched_cfg.clone(),
    })
    .unwrap_or_else(|e| panic!("{name}/{}: compile: {e}", sched_cfg.model));
    let res = art
        .run(machine_cfg.clone())
        .unwrap_or_else(|e| panic!("{name}/{}: machine: {e}", sched_cfg.model));
    assert_eq!(
        res.observable(&eval.program.live_out),
        scalar.observable(&eval.program.live_out),
        "{name}/{}: diverged from golden model",
        sched_cfg.model
    );
    assert!(
        res.cycles < scalar.cycles * 2,
        "{name}/{}: pathological slowdown",
        sched_cfg.model
    );
}

#[test]
fn all_models_on_all_benchmarks() {
    for w in all_workloads_sized(EVAL_SEED, SIZE) {
        for model in Model::ALL {
            check(w.name, &SchedConfig::new(model), &MachineConfig::default());
        }
    }
}

#[test]
fn two_issue_machine() {
    let resources = Resources {
        alu: 2,
        branch: 2,
        load: 1,
        store: 1,
    };
    for w in all_workloads_sized(EVAL_SEED, SIZE) {
        for model in [Model::Trace, Model::TracePred, Model::RegionPred] {
            let mut sc = SchedConfig::new(model);
            sc.issue_width = 2;
            sc.resources = resources;
            let mc = MachineConfig {
                issue_width: 2,
                resources,
                ..MachineConfig::default()
            };
            check(w.name, &sc, &mc);
        }
    }
}

#[test]
fn eight_issue_full_machine_with_depth_sweep() {
    for w in all_workloads_sized(EVAL_SEED, SIZE) {
        for depth in [1, 4, 8] {
            let mut sc = SchedConfig::new(Model::RegionPred);
            sc.issue_width = 8;
            sc.resources = Resources::full_issue(8);
            sc.num_conds = 8;
            sc.depth = depth;
            let mut mc = MachineConfig::full_issue(8);
            mc.record_events = false;
            check(w.name, &sc, &mc);
        }
    }
}

#[test]
fn infinite_shadow_ablation() {
    for w in all_workloads_sized(EVAL_SEED, SIZE) {
        let mut sc = SchedConfig::new(Model::RegionPred);
        sc.single_shadow = false;
        let mc = MachineConfig {
            shadow_mode: ShadowMode::Infinite,
            ..MachineConfig::default()
        };
        check(w.name, &sc, &mc);
    }
}

#[test]
fn counter_form_ablation() {
    for w in all_workloads_sized(EVAL_SEED, SIZE) {
        let mut sc = SchedConfig::new(Model::TracePred);
        sc.ordered_cond_sets = true;
        check(w.name, &sc, &MachineConfig::default());
    }
}

/// The li kernel's unrolled traversal makes the region scheduler hoist a
/// next-cell dereference above the NULL check; the machine must buffer and
/// squash the resulting speculative exception in the final iteration
/// rather than faulting (Section 2.1's motivating case).
#[test]
fn li_speculative_null_dereference_is_squashed() {
    let w = by_name("li", EVAL_SEED, SIZE).unwrap();
    let profile = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap()
        .edge_profile;
    let art = compile_fresh(&CompileRequest {
        program: &w.program,
        profile: ProfileSource::Provided(&profile),
        sched: SchedConfig::new(Model::RegionPred),
    })
    .unwrap();
    // The run completes (no fatal fault) even though the hoisted load
    // dereferences NULL speculatively at the end of the list.
    let res = art.run(MachineConfig::default()).unwrap();
    assert_eq!(
        res.recoveries, 0,
        "the squashed exception must never commit"
    );
}

/// Page-fault-style non-fatal exceptions on cold pages exercise the full
/// future-condition recovery path on real kernels.
#[test]
fn fault_recovery_on_benchmarks() {
    for name in ["compress", "grep", "li"] {
        let train = by_name(name, TRAIN_SEED, SIZE).unwrap();
        let eval = by_name(name, EVAL_SEED, SIZE).unwrap();
        let faults: std::collections::BTreeSet<i64> = (16..80).step_by(7).collect();
        let scfg = ScalarConfig {
            fault_once_addrs: faults.clone(),
            ..ScalarConfig::default()
        };
        let scalar = ScalarMachine::new(&eval.program, scfg).run().unwrap();
        let art = compile_fresh(&CompileRequest {
            program: &eval.program,
            profile: ProfileSource::Train {
                program: &train.program,
                config: ScalarConfig::default(),
            },
            sched: SchedConfig::new(Model::RegionPred),
        })
        .unwrap();
        let mc = MachineConfig {
            fault_once_addrs: faults,
            ..MachineConfig::default()
        };
        let res = art.run(mc).unwrap();
        assert_eq!(
            res.observable(&eval.program.live_out),
            scalar.observable(&eval.program.live_out),
            "{name}: fault recovery diverged"
        );
    }
}

/// The workloads round-trip through the assembly format, and the parsed
/// copy behaves identically.
#[test]
fn workloads_roundtrip_through_asm() {
    for w in all_workloads_sized(EVAL_SEED, 128) {
        let text = w.program.to_asm();
        let parsed = psb::isa::parse_program(&text)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", w.name));
        let a = ScalarMachine::new(&w.program, ScalarConfig::default())
            .run()
            .unwrap();
        let b = ScalarMachine::new(&parsed, ScalarConfig::default())
            .run()
            .unwrap();
        assert_eq!(a.cycles, b.cycles, "{}", w.name);
        assert_eq!(
            a.observable(&w.program.live_out),
            b.observable(&parsed.live_out),
            "{}",
            w.name
        );
    }
}

/// Unrolling workloads preserves semantics end to end (scalar and
/// scheduled execution).
#[test]
fn unrolled_workloads_match_golden_model() {
    for name in ["grep", "espresso", "li"] {
        let train = by_name(name, TRAIN_SEED, SIZE).unwrap();
        let eval = by_name(name, EVAL_SEED, SIZE).unwrap();
        let train_u = psb::ir::unroll_loops(&train.program, 3);
        let eval_u = psb::ir::unroll_loops(&eval.program, 3);
        let profile = ScalarMachine::new(&train_u, ScalarConfig::default())
            .run()
            .unwrap()
            .edge_profile;
        let scalar = ScalarMachine::new(&eval_u, ScalarConfig::default())
            .run()
            .unwrap();
        // Unrolling must not change the observable result.
        let orig = ScalarMachine::new(&eval.program, ScalarConfig::default())
            .run()
            .unwrap();
        assert_eq!(
            scalar.observable(&eval_u.live_out),
            orig.observable(&eval.program.live_out),
            "{name}: unrolling changed semantics"
        );
        let mut sc = SchedConfig::new(Model::RegionPred);
        sc.num_conds = 8;
        sc.depth = 8;
        sc.max_blocks = 32;
        let art = compile_fresh(&CompileRequest {
            program: &eval_u,
            profile: ProfileSource::Provided(&profile),
            sched: sc,
        })
        .unwrap();
        let mut mc = MachineConfig::full_issue(8);
        mc.issue_width = 8;
        let res = art.run(mc).unwrap();
        assert_eq!(
            res.observable(&eval_u.live_out),
            scalar.observable(&eval_u.live_out),
            "{name}: unrolled schedule diverged"
        );
    }
}

/// Event logs of full workload runs audit clean: every speculative write
/// resolves exactly once, nothing leaks across regions, and recovery
/// narratives are well-formed.
#[test]
fn event_logs_audit_clean() {
    for w in all_workloads_sized(EVAL_SEED, 128) {
        let profile = ScalarMachine::new(&w.program, ScalarConfig::default())
            .run()
            .unwrap()
            .edge_profile;
        let art = compile_fresh(&CompileRequest {
            program: &w.program,
            profile: ProfileSource::Provided(&profile),
            sched: SchedConfig::new(Model::RegionPred),
        })
        .unwrap();
        let res = art.run(MachineConfig::default().with_events()).unwrap();
        let violations = psb::core::audit_events(&res.events);
        assert!(
            violations.is_empty(),
            "{}: {:?}",
            w.name,
            violations.first()
        );
    }
}

/// A recovery-bearing run also audits clean.
#[test]
fn recovery_event_logs_audit_clean() {
    let w = by_name("compress", EVAL_SEED, SIZE).unwrap();
    let faults: std::collections::BTreeSet<i64> = (16..200).step_by(5).collect();
    let profile = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap()
        .edge_profile;
    let art = compile_fresh(&CompileRequest {
        program: &w.program,
        profile: ProfileSource::Provided(&profile),
        sched: SchedConfig::new(Model::RegionPred),
    })
    .unwrap();
    let mc = MachineConfig {
        fault_once_addrs: faults,
        record_events: true,
        ..MachineConfig::default()
    };
    let res = art.run(mc).unwrap();
    assert!(res.recoveries > 0, "the fault set must exercise recovery");
    let violations = psb::core::audit_events(&res.events);
    assert!(violations.is_empty(), "{:?}", violations.first());
}
