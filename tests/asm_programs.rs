//! The shipped assembly corpus runs correctly under every model — the
//! `psbsim` flow exercised as a library.

use psb::compile::{compile_fresh, CompileRequest, ProfileSource};
use psb::core::MachineConfig;
use psb::isa::parse_program;
use psb::scalar::{ScalarConfig, ScalarMachine};
use psb::sched::{Model, SchedConfig};

fn check_file(path: &str, expect: &[(usize, i64)]) {
    let text = std::fs::read_to_string(path).expect("corpus file exists");
    let prog = parse_program(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    let scalar = ScalarMachine::new(&prog, ScalarConfig::default())
        .run()
        .unwrap();
    for &(reg, value) in expect {
        assert_eq!(scalar.regs[reg], value, "{path}: r{reg}");
    }
    for model in Model::ALL {
        let art = compile_fresh(&CompileRequest {
            program: &prog,
            profile: ProfileSource::Provided(&scalar.edge_profile),
            sched: SchedConfig::new(model),
        })
        .unwrap_or_else(|e| panic!("{path}/{model}: {e}"));
        let res = art
            .run(MachineConfig::default())
            .unwrap_or_else(|e| panic!("{path}/{model}: {e}"));
        assert_eq!(
            res.observable(&prog.live_out),
            scalar.observable(&prog.live_out),
            "{path}/{model}"
        );
    }
}

#[test]
fn gcd_runs_under_every_model() {
    // gcd(10044, 3108) = 12.
    check_file("asm/gcd.asm", &[(1, 12)]);
}

#[test]
fn dotprod_runs_under_every_model() {
    check_file("asm/dotprod.asm", &[]);
}

#[test]
fn bubble_sort_runs_under_every_model() {
    // Reference checksum computed independently.
    let vals: [i64; 24] = [
        9, -3, 44, 7, -12, 0, 25, -8, 3, 18, -1, 30, 6, -20, 11, 2, 40, -5, 13, 21, -9, 5, 28, -15,
    ];
    let mut sorted = vals;
    sorted.sort();
    let checksum: i64 = sorted.iter().enumerate().map(|(i, &v)| i as i64 * v).sum();
    check_file("asm/sort.asm", &[(7, checksum)]);
}

#[test]
fn unrolled_sort_still_sorts() {
    let text = std::fs::read_to_string("asm/sort.asm").unwrap();
    let prog = parse_program(&text).unwrap();
    let unrolled = psb::ir::unroll_loops(&prog, 2);
    let a = ScalarMachine::new(&prog, ScalarConfig::default())
        .run()
        .unwrap();
    let b = ScalarMachine::new(&unrolled, ScalarConfig::default())
        .run()
        .unwrap();
    assert_eq!(a.regs[7], b.regs[7]);
}

#[test]
fn matmul_runs_under_every_model() {
    // Checksum computed independently from the generated inputs.
    check_file("asm/matmul.asm", &[(7, 2629)]);
}

#[test]
fn matmul_benefits_from_width_and_unrolling() {
    let text = std::fs::read_to_string("asm/matmul.asm").unwrap();
    let prog = parse_program(&text).unwrap();
    let scalar = ScalarMachine::new(&prog, ScalarConfig::default())
        .run()
        .unwrap();

    let run_with = |p: &psb::isa::ScalarProgram, width: usize| {
        let profile = ScalarMachine::new(p, ScalarConfig::default())
            .run()
            .unwrap()
            .edge_profile;
        let mut sc = SchedConfig::new(Model::RegionPred);
        sc.issue_width = width;
        sc.resources = psb::isa::Resources::full_issue(width);
        sc.num_conds = 8;
        sc.depth = 8;
        sc.max_blocks = 32;
        let art = compile_fresh(&CompileRequest {
            program: p,
            profile: ProfileSource::Provided(&profile),
            sched: sc,
        })
        .unwrap();
        let mc = MachineConfig {
            issue_width: width,
            resources: psb::isa::Resources::full_issue(width),
            store_buffer_size: 32,
            ..MachineConfig::default()
        };
        art.run(mc).unwrap().cycles
    };
    let narrow = run_with(&prog, 4);
    let unrolled = psb::ir::unroll_loops(&prog, 3);
    let wide_unrolled = run_with(&unrolled, 8);
    assert!(narrow < scalar.cycles, "4-issue must beat scalar");
    assert!(
        wide_unrolled < narrow,
        "8-issue + unrolling must beat 4-issue rolled ({wide_unrolled} vs {narrow})"
    );
}
