//! Reproducibility: identical seeds and configurations must give
//! bit-identical programs, schedules and cycle counts — the property that
//! makes EXPERIMENTS.md's numbers reproducible on any machine.

use psb::compile::{compile_fresh, CompileRequest, ProfileSource};
use psb::core::MachineConfig;
use psb::scalar::{ScalarConfig, ScalarMachine};
use psb::sched::{Model, SchedConfig};
use psb::workloads::by_name;

#[test]
fn workload_generation_is_deterministic() {
    for name in ["compress", "eqntott", "espresso", "grep", "li", "nroff"] {
        let a = by_name(name, 42, 300).unwrap();
        let b = by_name(name, 42, 300).unwrap();
        assert_eq!(a.program, b.program, "{name}: same seed, same program");
        let c = by_name(name, 43, 300).unwrap();
        assert_ne!(
            a.program, c.program,
            "{name}: different seed, different inputs"
        );
    }
}

#[test]
fn scheduling_is_deterministic() {
    let w = by_name("compress", 7, 300).unwrap();
    let profile = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap()
        .edge_profile;
    for model in Model::ALL {
        let req = CompileRequest {
            program: &w.program,
            profile: ProfileSource::Provided(&profile),
            sched: SchedConfig::new(model),
        };
        let a = compile_fresh(&req).unwrap();
        let b = compile_fresh(&req).unwrap();
        assert_eq!(
            a.program, b.program,
            "{model}: scheduling must be deterministic"
        );
        assert_eq!(
            a.content_hash, b.content_hash,
            "{model}: the content hash must be stable"
        );
        assert!(a.same_content(&b), "{model}: artifacts must be byte-equal");
    }
}

#[test]
fn execution_is_deterministic() {
    let w = by_name("espresso", 9, 300).unwrap();
    let profile = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap()
        .edge_profile;
    let art = compile_fresh(&CompileRequest {
        program: &w.program,
        profile: ProfileSource::Provided(&profile),
        sched: SchedConfig::new(Model::RegionPred),
    })
    .unwrap();
    let a = art.run(MachineConfig::default()).unwrap();
    let b = art.run(MachineConfig::default()).unwrap();
    assert_eq!(a, b, "same program, same machine, same run");

    let s1 = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap();
    let s2 = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap();
    assert_eq!(s1.cycles, s2.cycles);
    assert_eq!(s1.regs, s2.regs);
}
