; Bubble sort of 24 words: nested loops, data-dependent swap branch.
.name sort
.memory 64
.init r8 24
.liveout r7
.cell 16 9
.cell 17 -3
.cell 18 44
.cell 19 7
.cell 20 -12
.cell 21 0
.cell 22 25
.cell 23 -8
.cell 24 3
.cell 25 18
.cell 26 -1
.cell 27 30
.cell 28 6
.cell 29 -20
.cell 30 11
.cell 31 2
.cell 32 40
.cell 33 -5
.cell 34 13
.cell 35 21
.cell 36 -9
.cell 37 5
.cell 38 28
.cell 39 -15

entry:
    r1 = 0
    j outer
outer:
    r2 = 0
    r9 = r8 - r1
    r9 = r9 - 1
    j inner
inner:
    r3 = load(r2+16) !1
    r4 = load(r2+17) !1
    br (r3 > r4) swap else step
swap:
    store(r2+16) = r4 !1
    store(r2+17) = r3 !1
    j step
step:
    r2 = r2 + 1
    br (r2 < r9) inner else next
next:
    r1 = r1 + 1
    br (r1 < r8) outer else sum
sum:
    ; checksum: r7 = sum of i * a[i]
    r2 = 0
    r7 = 0
    j sumloop
sumloop:
    r3 = load(r2+16) !1
    r4 = r2 * r3
    r7 = r7 + r4
    r2 = r2 + 1
    br (r2 < r8) sumloop else done
done:
    halt
