; Recovery stress with a dependent chain across a data-dependent branch
; (shrunk by psb-fuzz, then hand-polished).  The first load faults once
; and feeds the branch condition; on the fall-through path a second
; masked load depends on fresh address arithmetic.  Speculating models
; hoist both loads, so the committed exception forces a recovery whose
; re-execution must regenerate r11 before the second load re-issues.
.name recovery-rebuffer-chain
.memory 128
.init r4 -46
.liveout r7 r8 r11
.entry b0
b0:
    j b1
b1:
    r8 = load(0+16) !1
    j b2
b2:
    br (r8 < r7) b4 else b3
b3:
    r11 = r4 & 3
    r7 = load(r11+16) !1
    halt
b4:
    halt
