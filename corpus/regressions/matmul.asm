; 6x6 integer matrix multiply: C = A * B, then a checksum of C.
; A at 16, B at 52, C at 88 (row-major, 36 words each).
.name matmul
.memory 160
.init r10 6
.liveout r7
.cell 16 2
.cell 17 4
.cell 18 0
.cell 19 -1
.cell 20 -3
.cell 21 -3
.cell 22 5
.cell 23 -5
.cell 24 0
.cell 25 3
.cell 26 2
.cell 27 4
.cell 28 -4
.cell 29 0
.cell 30 3
.cell 31 4
.cell 32 -5
.cell 33 1
.cell 34 -3
.cell 35 2
.cell 36 1
.cell 37 -3
.cell 38 -3
.cell 39 -2
.cell 40 -5
.cell 41 -4
.cell 42 -3
.cell 43 3
.cell 44 4
.cell 45 -4
.cell 46 1
.cell 47 -4
.cell 48 -1
.cell 49 -2
.cell 50 5
.cell 51 -2
.cell 52 1
.cell 53 -4
.cell 54 -1
.cell 55 -2
.cell 56 1
.cell 57 -1
.cell 58 0
.cell 59 -5
.cell 60 -2
.cell 61 -5
.cell 62 1
.cell 63 -5
.cell 64 1
.cell 65 2
.cell 66 -3
.cell 67 -5
.cell 68 -2
.cell 69 1
.cell 70 -4
.cell 71 4
.cell 72 -5
.cell 73 -4
.cell 74 4
.cell 75 -2
.cell 76 -2
.cell 77 0
.cell 78 -5
.cell 79 -4
.cell 80 -3
.cell 81 3
.cell 82 -5
.cell 83 3
.cell 84 -4
.cell 85 4
.cell 86 2
.cell 87 3

entry:
    r1 = 0
    j iloop
iloop:
    r2 = 0
    j jloop
jloop:
    r3 = 0
    r4 = 0
    j kloop
kloop:
    ; a = A[i*6+k], b = B[k*6+j]
    r5 = r1 * 6
    r5 = r5 + r3
    r5 = load(r5+16) !1
    r6 = r3 * 6
    r6 = r6 + r2
    r6 = load(r6+52) !2
    r5 = r5 * r6
    r4 = r4 + r5
    r3 = r3 + 1
    br (r3 < r10) kloop else storec
storec:
    r5 = r1 * 6
    r5 = r5 + r2
    store(r5+88) = r4 !3
    r2 = r2 + 1
    br (r2 < r10) jloop else inext
inext:
    r1 = r1 + 1
    br (r1 < r10) iloop else sum
sum:
    r1 = 0
    r7 = 0
    j sumloop
sumloop:
    r5 = load(r1+88) !3
    r6 = r1 + 1
    r5 = r5 * r6
    r7 = r7 + r5
    r1 = r1 + 1
    br (r1 < 36) sumloop else done
done:
    halt
