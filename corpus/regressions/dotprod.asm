; Dot product with a conditional saturation step.
.name dotprod
.memory 160
.init r8 32
.cell 16 -1
.cell 64 2
.cell 17 7
.cell 65 -9
.cell 18 5
.cell 66 -2
.cell 19 -8
.cell 67 -4
.cell 20 -6
.cell 68 2
.cell 21 6
.cell 69 -2
.cell 22 3
.cell 70 8
.cell 23 -6
.cell 71 9
.cell 24 -2
.cell 72 -9
.cell 25 -3
.cell 73 4
.cell 26 -1
.cell 74 -4
.cell 27 3
.cell 75 -4
.cell 28 -7
.cell 76 -5
.cell 29 5
.cell 77 -5
.cell 30 -5
.cell 78 -9
.cell 31 -9
.cell 79 -3
.cell 32 -3
.cell 80 -4
.cell 33 -4
.cell 81 0
.cell 34 1
.cell 82 -3
.cell 35 8
.cell 83 -3
.cell 36 -4
.cell 84 -3
.cell 37 3
.cell 85 0
.cell 38 -9
.cell 86 2
.cell 39 4
.cell 87 -4
.cell 40 -5
.cell 88 -1
.cell 41 -7
.cell 89 1
.cell 42 0
.cell 90 9
.cell 43 -9
.cell 91 1
.cell 44 -7
.cell 92 0
.cell 45 2
.cell 93 0
.cell 46 6
.cell 94 1
.cell 47 -4
.cell 95 6
.liveout r2

entry:
    r1 = 0
    r2 = 0
    j loop
loop:
    r3 = load(r1+16) !1
    r4 = load(r1+64) !2
    r5 = r3 * r4
    r2 = r2 + r5
    br (r2 > 10000) sat else next
sat:
    r2 = 10000
    j next
next:
    r1 = r1 + 1
    br (r1 < r8) loop else done
done:
    halt
