; Euclid's algorithm by repeated subtraction (branch-heavy, no memory).
.name gcd
.memory 16
.init r1 10044
.init r2 3108
.liveout r1

loop:
    br (r2 == 0) done else body
body:
    br (r1 < r2) swap else sub
swap:
    r3 = r1
    r1 = r2
    r2 = r3
    j loop
sub:
    r1 = r1 - r2
    j loop
done:
    halt
