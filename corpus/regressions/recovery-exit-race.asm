; Minimal recovery-exit stress (shrunk by psb-fuzz from a 60-instruction
; case).  The two constant branches open a speculative region; the masked
; load below them is hoisted above both by the speculating models, hits
; the fault-once address, and buffers an E-flagged shadow.  When the
; branch conditions commit, the machine runs one recovery episode whose
; exit races the EPC word -- the exact window of the late-commit bug
; pinned by `deferred_exit_commit_reproduces_stale_clobber`.
.name recovery-exit-race
.memory 128
.init r8 27
.liveout r2 r11
.entry b0
b0:
    br (0 > 0) b1 else b1
b1:
    br (0 == 0) b2 else b2
b2:
    r11 = r8 & 31
    r2 = load(r11+16) !1
    halt
