//! `psbsim` — run scalar assembly through the predicating toolchain.
//!
//! ```text
//! psbsim scalar <file.asm>                 run on the scalar reference machine
//! psbsim disasm <file.asm> [options]       schedule and print the VLIW code
//! psbsim run    <file.asm> [options]       schedule, execute, compare, report
//!
//! options:
//!   --model M     global|squash|trace|region-squash|boost|trace-pred|region-pred
//!                 (default region-pred)
//!   --width N     issue width (default 4; resources fully duplicated when N != 4)
//!   --conds K     CCR entries (default 4)
//!   --depth D     max unresolved conditions at issue (default = K)
//!   --unroll F    unroll innermost loops F times before scheduling
//!   --optimize    copy-propagate and dead-code-eliminate before scheduling
//!   --events      print the machine event log (Table 1 style)
//! ```

use psb::compile::{compile_fresh, CompileRequest, ProfileSource};
use psb::core::MachineConfig;
use psb::eval::render_table1;
use psb::ir::{optimize, unroll_loops};
use psb::isa::{parse_program, Resources, ScalarProgram};
use psb::scalar::{ScalarConfig, ScalarMachine};
use psb::sched::{Model, SchedConfig};
use std::process::exit;

struct Options {
    command: String,
    file: String,
    model: Model,
    width: usize,
    conds: usize,
    depth: Option<usize>,
    unroll: usize,
    optimize: bool,
    events: bool,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let command = it
        .next()
        .cloned()
        .unwrap_or_else(|| usage("missing command"));
    let file = it
        .next()
        .cloned()
        .unwrap_or_else(|| usage("missing input file"));
    let mut opts = Options {
        command,
        file,
        model: Model::RegionPred,
        width: 4,
        conds: 4,
        depth: None,
        unroll: 1,
        optimize: false,
        events: false,
    };
    let mut it = it.peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--model" => {
                let m = value("--model");
                opts.model = Model::ALL
                    .into_iter()
                    .find(|x| x.name() == m)
                    .unwrap_or_else(|| usage(&format!("unknown model {m}")));
            }
            "--width" => {
                opts.width = value("--width")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --width"))
            }
            "--conds" => {
                opts.conds = value("--conds")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --conds"))
            }
            "--depth" => {
                opts.depth = Some(
                    value("--depth")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --depth")),
                )
            }
            "--unroll" => {
                opts.unroll = value("--unroll")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --unroll"))
            }
            "--optimize" => opts.optimize = true,
            "--events" => opts.events = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    opts
}

fn usage(msg: &str) -> ! {
    eprintln!("psbsim: {msg}");
    eprintln!("usage: psbsim (scalar|disasm|run) <file.asm> [--model M] [--width N]");
    eprintln!("              [--conds K] [--depth D] [--unroll F] [--optimize] [--events]");
    exit(2)
}

fn load(opts: &Options) -> ScalarProgram {
    let text = std::fs::read_to_string(&opts.file).unwrap_or_else(|e| {
        eprintln!("psbsim: cannot read {}: {e}", opts.file);
        exit(1)
    });
    let prog = parse_program(&text).unwrap_or_else(|e| {
        eprintln!("psbsim: {}: {e}", opts.file);
        exit(1)
    });
    let mut prog = if opts.unroll > 1 {
        unroll_loops(&prog, opts.unroll)
    } else {
        prog
    };
    if opts.optimize {
        let (rewrites, removed) = optimize(&mut prog);
        eprintln!("psbsim: optimised ({rewrites} operands rewritten, {removed} ops removed)");
    }
    prog
}

fn main() {
    let opts = parse_args();
    let prog = load(&opts);

    let scalar = ScalarMachine::new(&prog, ScalarConfig::default())
        .run()
        .unwrap_or_else(|e| {
            eprintln!("psbsim: scalar execution failed: {e}");
            exit(1)
        });

    if opts.command == "scalar" {
        println!("cycles:        {}", scalar.cycles);
        println!("instructions:  {}", scalar.dyn_instrs);
        for r in &prog.live_out {
            println!("{r} = {}", scalar.regs[r.index()]);
        }
        return;
    }

    let resources = if opts.width == 4 {
        Resources::paper_base()
    } else {
        Resources::full_issue(opts.width)
    };
    let mut cfg = SchedConfig::new(opts.model);
    cfg.issue_width = opts.width;
    cfg.resources = resources;
    cfg.num_conds = opts.conds;
    cfg.depth = opts.depth.unwrap_or(opts.conds);
    let req = CompileRequest {
        program: &prog,
        profile: ProfileSource::Provided(&scalar.edge_profile),
        sched: cfg,
    };
    let art = compile_fresh(&req).unwrap_or_else(|e| {
        eprintln!("psbsim: {e}");
        exit(1)
    });

    if opts.command == "disasm" {
        print!("{}", art.program);
        return;
    }
    if opts.command != "run" {
        usage(&format!("unknown command {}", opts.command));
    }

    let mc = MachineConfig {
        issue_width: opts.width,
        resources,
        record_events: opts.events,
        ..MachineConfig::default()
    };
    let res = art.run(mc).unwrap_or_else(|e| {
        eprintln!("psbsim: execution failed: {e}");
        exit(1)
    });
    if opts.events {
        println!("{}", render_table1(&res.events));
    }
    let ok = res.observable(&prog.live_out) == scalar.observable(&prog.live_out);
    println!("model:         {}", opts.model);
    println!("artifact:      {}", art.hash_hex());
    println!("scalar cycles: {}", scalar.cycles);
    println!("vliw cycles:   {}", res.cycles);
    println!(
        "speedup:       {:.2}x",
        scalar.cycles as f64 / res.cycles as f64
    );
    println!(
        "ops executed:  {} (+{} squashed), {} recoveries",
        res.ops_executed, res.ops_squashed, res.recoveries
    );
    for r in &prog.live_out {
        println!("{r} = {}", res.regs[r.index()]);
    }
    if !ok {
        eprintln!("psbsim: MISMATCH against the scalar golden model");
        exit(1);
    }
    println!("golden model:  match");
}
