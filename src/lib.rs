//! Facade crate for the predicated-state-buffering (PSB) reproduction.
//!
//! Re-exports the public API of every workspace crate so downstream users
//! (and the examples in `examples/`) can depend on a single crate:
//!
//! * [`isa`] — instruction set, predicates, scalar and VLIW programs.
//! * [`ir`] — CFG, dominance, liveness and code transformations.
//! * [`core`] — the predicating VLIW machine (the paper's contribution).
//! * [`scalar`] — the R3000-like scalar reference machine.
//! * [`sched`] — the seven speculative instruction-scheduling models.
//! * [`compile`] — the staged profile → schedule → decode pipeline with
//!   its content-addressed artifact cache.
//! * [`workloads`] — the six synthetic benchmark kernels.
//! * [`eval`] — the experiment harness regenerating every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use psb::prelude::*;
//!
//! // Build a small scalar program, schedule it with the paper's
//! // region-predicating model, and compare cycle counts.
//! let program = psb::workloads::grep_like(42).program;
//! let scalar = psb::scalar::ScalarMachine::run_to_completion(&program).unwrap();
//! assert!(scalar.cycles > 0);
//! ```

#![warn(missing_docs)]

pub use psb_compile as compile;
pub use psb_core as core;
pub use psb_eval as eval;
pub use psb_ir as ir;
pub use psb_isa as isa;
pub use psb_scalar as scalar;
pub use psb_sched as sched;
pub use psb_workloads as workloads;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use psb_isa::{
        AluOp, Ccr, CmpOp, Cond, CondReg, MemTag, Op, Predicate, ProgramBuilder, Reg,
        ScalarProgram, Src, VliwProgram,
    };
}
