//! Offline drop-in subset of the `criterion` API.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the surface the workspace's benches use: [`Criterion`] with
//! `bench_function`/`benchmark_group`/`sample_size`, [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: for each benchmark the routine is
//! warmed up once, then timed over `sample_size` samples; the median
//! per-iteration time is printed.  When the binary is invoked with
//! `--test` (as `cargo test` does for `harness = false` bench targets),
//! each routine runs exactly once as a smoke test.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Configures the measurement-time budget.  Accepted for upstream
    /// compatibility; this stub always runs exactly `sample_size` samples.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    fn is_test_mode(&self) -> bool {
        self.test_mode
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.parent.sample_size,
            self.parent.is_test_mode(),
            &mut f,
        );
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`] with
/// the routine to measure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    test_mode: bool,
}

impl Bencher {
    /// Measures `routine`, recording one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(if test_mode { 1 } else { sample_size }),
        iters_per_sample: 1,
        test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("{id}: ok (test mode, 1 iteration)");
        return;
    }
    let mut per_iter: Vec<u128> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() / b.iters_per_sample as u128)
        .collect();
    per_iter.sort_unstable();
    let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0);
    let (lo, hi) = (
        per_iter.first().copied().unwrap_or(0),
        per_iter.last().copied().unwrap_or(0),
    );
    println!(
        "{id}: median {} (min {}, max {})",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn1, fn2)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count >= 1);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion::default().sample_size(1);
        c.test_mode = true;
        let mut g = c.benchmark_group("grp");
        let mut hits = 0u32;
        g.bench_function("one", |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits >= 1);
    }
}
