//! Offline drop-in subset of the `proptest` API.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements exactly the surface the workspace's property tests use:
//!
//! * the [`proptest!`], [`prop_compose!`], [`prop_oneof!`],
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`] macros;
//! * [`strategy::Strategy`] with `prop_map`, plus [`strategy::Just`],
//!   integer-range strategies, tuple strategies, [`collection::vec`],
//!   [`option::of`] and [`arbitrary::any`];
//! * [`test_runner::ProptestConfig`] and [`test_runner::TestCaseError`].
//!
//! Differences from upstream: failing cases are **not shrunk** (the
//! failing seed and case index are printed instead, and runs are fully
//! deterministic per test name, so a failure always reproduces), and the
//! default case count is 256.

#![warn(missing_docs)]

/// The deterministic RNG and test-case bookkeeping types.
pub mod test_runner {
    /// The generator driving every strategy: SplitMix64, seeded
    /// deterministically from the test name and case index.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with the given seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Why a generated case did not pass.
    #[derive(Clone, PartialEq, Eq, Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs: try another case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given message.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Runner configuration, settable per `proptest!` block via
    /// `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Global cap on `prop_assume!` rejections before the test aborts.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A config requiring `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// FNV-1a, used to derive a per-test base seed from its name.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree and no shrinking: a strategy
    /// simply draws a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates with `self`, then with the strategy `f` builds from
        /// the drawn value (monadic bind).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy, erasing its concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A strategy built from a plain generation function — the backbone of
    /// [`prop_compose!`](crate::prop_compose).
    pub struct FnStrategy<F>(F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Wraps a generation function as a strategy.
    pub fn fn_strategy<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
        FnStrategy(f)
    }

    /// Boxes a strategy — used by [`prop_oneof!`](crate::prop_oneof) to
    /// unify heterogeneous arm types.
    pub fn boxed_arm<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// A weighted union of strategies; see
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union over weighted arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof!: no arms with nonzero weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    let draw = rng.next_u64() % span;
                    (self.start as u64).wrapping_add(draw) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (whole domain, uniform).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification for [`vec`]: an exact length or a half-open
    /// range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "vec strategy: empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Upstream defaults to 3:1 Some:None.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Some` of a value from `inner` three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Defines property tests.  Supported syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn name(x in strategy1, (a, b) in strategy2) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let base_seed = $crate::test_runner::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut rejects: u32 = 0;
            let mut case: u64 = 0;
            let mut passed: u32 = 0;
            while passed < config.cases {
                let seed = base_seed ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d);
                let mut rng = $crate::test_runner::TestRng::new(seed);
                case += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                #[allow(unused_mut)]
                let mut one_case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                match one_case() {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(
                            rejects <= config.max_global_rejects,
                            "{}: too many prop_assume! rejections ({})",
                            stringify!($name),
                            rejects
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\n(test {}, case index {}, seed {:#x})",
                            msg,
                            stringify!($name),
                            case - 1,
                            seed
                        );
                    }
                }
            }
        }
    )*};
}

/// Defines a named strategy function.  Supported syntax (one or two
/// generation groups; the second group may reference bindings of the
/// first):
///
/// ```ignore
/// prop_compose! {
///     fn my_strategy()(x in 0..10u8)(ys in vec(0..x as u64, 4)) -> Vec<u64> {
///         ys
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($arg:tt)*)
        ($($pat1:pat in $strat1:expr),* $(,)?)
        ($($pat2:pat in $strat2:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::fn_strategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $pat1 = $crate::strategy::Strategy::generate(&($strat1), rng);)*
                $(let $pat2 = $crate::strategy::Strategy::generate(&($strat2), rng);)*
                $body
            })
        }
    };
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($arg:tt)*)
        ($($pat1:pat in $strat1:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::fn_strategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $pat1 = $crate::strategy::Strategy::generate(&($strat1), rng);)*
                $body
            })
        }
    };
}

/// A weighted or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, $crate::strategy::boxed_arm($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1, $crate::strategy::boxed_arm($strat))),+
        ])
    };
}

/// Like `assert!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            a, b, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Like `assert_ne!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            a,
            b,
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Rejects the current case unless `cond` holds; the runner draws a fresh
/// case instead, without counting this one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(a in 0i64..50)(b in 0i64..50, c in Just(a)) -> (i64, i64, i64) {
            (a, b, c)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -5i64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_map((tag, n) in prop_oneof![
            2 => (0u8..1, 10i64..20).prop_map(|(_, n)| (0u8, n)),
            1 => (0u8..1, 30i64..40).prop_map(|(_, n)| (1u8, n)),
        ]) {
            match tag {
                0 => prop_assert!((10..20).contains(&n)),
                _ => prop_assert!((30..40).contains(&n)),
            }
        }

        #[test]
        fn compose_dependent_groups((a, b, c) in pair()) {
            prop_assert_eq!(a, c);
            prop_assert!((0..50).contains(&b));
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 8usize);
        let mut r1 = TestRng::new(42);
        let mut r2 = TestRng::new(42);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
