//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this vendored crate provides exactly the surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! (half-open and inclusive integer ranges) and [`Rng::gen_bool`].
//!
//! The backend is xoshiro256** seeded via SplitMix64 — a deterministic,
//! high-quality generator.  The streams differ from upstream `rand`'s
//! `StdRng` (which is ChaCha12); all in-repo consumers only require
//! determinism for a given seed, not upstream-identical streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker for types [`Rng::gen_range`] can produce.  Mirroring upstream,
/// the bound exists so type inference can prune non-numeric candidates in
/// expressions like `x - rng.gen_range(1..8)`.
pub trait SampleUniform {}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(impl SampleUniform for $t {})*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// A range that [`Rng::gen_range`] can sample uniformly.
///
/// The output type is a trait *parameter* (as in upstream `rand`) so that
/// `rng.gen_range(1..8)` infers the literal type from the call site.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let draw = rng.next_u64() as $wide % span;
                (self.start as $wide).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                let draw = rng.next_u64() as $wide % span;
                (start as $wide).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_sample_range! {
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 uniform mantissa bits, exactly as upstream.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence-related sampling (the `shuffle` extension trait).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension methods, as in upstream `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<i64> = (0..32).map(|_| a.gen_range(-50i64..50)).collect();
        let vb: Vec<i64> = (0..32).map(|_| b.gen_range(-50i64..50)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<i64> = (0..32).map(|_| c.gen_range(-50i64..50)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(-8i64..64);
            assert!((-8..64).contains(&x));
            let y = r.gen_range(1usize..=5);
            assert!((1..=5).contains(&y));
            let z = r.gen_range(32u8..127);
            assert!((32..127).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "p=0.3 gave {heads}/10000");
    }
}
