//! A corrupted dispatch-table index in a pre-decoded arena must be
//! rejected at machine construction (decode time) with a typed
//! [`VliwError::Malformed`] — never reach issue time, and never panic.

use psb_core::{DecodedProgram, Engine, MachineConfig, VliwError, VliwMachine};
use psb_isa::{AluOp, MemImage, MultiOp, Op, Reg, Slot, SlotOp, Src, VliwProgram};
use std::sync::Arc;

fn prog() -> VliwProgram {
    let r = Reg::new;
    VliwProgram {
        name: "dispatch-validation".into(),
        words: vec![
            MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Alu {
                op: AluOp::Add,
                rd: r(1),
                a: Src::imm(2),
                b: Src::imm(3),
            }))]),
            MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
        ],
        region_starts: vec![0],
        num_conds: 2,
        init_regs: vec![],
        memory: MemImage::zeroed(8),
        live_out: vec![r(1)],
    }
}

fn expect_rejected(p: &VliwProgram, d: DecodedProgram) {
    // The corruption must surface as a construction-time Malformed error
    // on every engine (validation does not depend on which engine would
    // have consumed the index), with no panic anywhere.
    for engine in [Engine::Tabled, Engine::Predecoded, Engine::Legacy] {
        let cfg = MachineConfig {
            engine,
            ..MachineConfig::default()
        };
        let err = VliwMachine::run_program_decoded(p, Arc::new(d.clone()), cfg)
            .expect_err("corrupted arena must be rejected");
        match err {
            VliwError::Malformed(m) => {
                assert!(m.contains("pre-decoded arena rejected"), "{m}")
            }
            other => panic!("expected Malformed, got {other}"),
        }
    }
}

#[test]
fn corrupted_handler_index_is_caught_at_decode_time() {
    let p = prog();
    let mut d = DecodedProgram::decode(&p);
    d.slots[0].handler = u16::MAX; // far outside the generated table
    expect_rejected(&p, d);
}

#[test]
fn plausible_but_wrong_handler_index_is_caught_at_decode_time() {
    let p = prog();
    let mut d = DecodedProgram::decode(&p);
    // In-range for the table, but the wrong handler for an ALU slot —
    // exactly the corruption an index-bounds check alone would miss.
    d.slots[0].handler ^= 1;
    expect_rejected(&p, d);
}

#[test]
fn corrupted_word_class_is_caught_at_decode_time() {
    let p = prog();
    let mut d = DecodedProgram::decode(&p);
    d.words[1].class = 0; // the halt word's class must have the control bit
    expect_rejected(&p, d);
}

#[test]
fn valid_arena_runs_identically_on_every_engine() {
    let p = prog();
    let d = Arc::new(DecodedProgram::decode(&p));
    let run = |engine| {
        let cfg = MachineConfig {
            engine,
            record_events: true,
            ..MachineConfig::default()
        };
        VliwMachine::run_program_decoded(&p, Arc::clone(&d), cfg).expect("runs clean")
    };
    let tabled = run(Engine::Tabled);
    assert_eq!(tabled.regs[1], 5);
    assert_eq!(tabled, run(Engine::Predecoded));
    assert_eq!(tabled, run(Engine::Legacy));
}
