//! A battery of speculative-exception recovery scenarios beyond the
//! paper's Figure 5, each probing one corner of the Section 3.5
//! mechanism.

use psb_core::{Event, MachineConfig, VliwMachine};
use psb_isa::{
    AluOp, CmpOp, CondReg, MemImage, MemTag, MultiOp, Op, Predicate, Reg, Slot, SlotOp, Src,
    VliwProgram,
};

fn r(i: usize) -> Reg {
    Reg::new(i)
}

fn c(i: usize) -> CondReg {
    CondReg::new(i)
}

fn p() -> Predicate {
    Predicate::always()
}

fn load(rd: Reg, base: i64) -> SlotOp {
    SlotOp::Op(Op::Load {
        rd,
        base: Src::imm(base),
        offset: 0,
        tag: MemTag::ANY,
    })
}

fn setc_true(cr: CondReg) -> SlotOp {
    SlotOp::Op(Op::SetCond {
        c: cr,
        cmp: CmpOp::Eq,
        a: Src::imm(0),
        b: Src::imm(0),
    })
}

fn setc_false(cr: CondReg) -> SlotOp {
    SlotOp::Op(Op::SetCond {
        c: cr,
        cmp: CmpOp::Eq,
        a: Src::imm(0),
        b: Src::imm(1),
    })
}

fn prog(words: Vec<MultiOp>) -> VliwProgram {
    VliwProgram {
        name: "recovery".into(),
        words,
        region_starts: vec![0],
        num_conds: 4,
        init_regs: vec![],
        memory: MemImage::zeroed(64),
        live_out: vec![],
    }
}

fn faulting_config(addrs: &[i64]) -> MachineConfig {
    let mut cfg = MachineConfig::two_issue().with_events();
    for &a in addrs {
        cfg.fault_once_addrs.insert(a);
    }
    cfg.fault_penalty = 4;
    cfg
}

/// Two buffered exceptions under the *same* predicate commit together:
/// one recovery pass must handle both.
#[test]
fn two_exceptions_commit_together() {
    let mut words = vec![
        MultiOp::new(vec![Slot::new(p().and_pos(c(0)), load(r(1), 4))]),
        MultiOp::new(vec![Slot::new(p().and_pos(c(0)), load(r(2), 5))]),
        MultiOp::new(vec![Slot::alw(setc_true(c(0)))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
    ];
    let pr = {
        let mut pr = prog(std::mem::take(&mut words));
        pr.memory.set(4, 11);
        pr.memory.set(5, 22);
        pr
    };
    let res = VliwMachine::run_program(&pr, faulting_config(&[4, 5])).unwrap();
    assert_eq!(res.recoveries, 1, "one commit point, one recovery");
    assert_eq!(
        res.faults_handled, 2,
        "both exceptions handled during re-execution"
    );
    assert_eq!(res.regs[1], 11);
    assert_eq!(res.regs[2], 22);
}

/// A dependent chain through a faulting load: the consumer re-executes
/// during recovery and sees the recovered value (the paper's i3'/i4'
/// example from Section 2.1).
#[test]
fn dependent_chain_regenerated() {
    let mut pr = prog(vec![
        MultiOp::new(vec![Slot::new(p().and_pos(c(0)), load(r(1), 4))]),
        MultiOp::new(vec![Slot::new(
            p().and_pos(c(0)),
            SlotOp::Op(Op::Alu {
                op: AluOp::Add,
                rd: r(2),
                a: Src::shadow(r(1)),
                b: Src::imm(5),
            }),
        )]),
        MultiOp::new(vec![Slot::new(
            p().and_pos(c(0)),
            SlotOp::Op(Op::Alu {
                op: AluOp::And,
                rd: r(3),
                a: Src::shadow(r(2)),
                b: Src::imm(1),
            }),
        )]),
        MultiOp::new(vec![Slot::alw(setc_true(c(0)))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
    ]);
    pr.memory.set(4, 40);
    let res = VliwMachine::run_program(&pr, faulting_config(&[4])).unwrap();
    assert_eq!(res.recoveries, 1);
    assert_eq!(res.regs[1], 40);
    assert_eq!(res.regs[2], 45, "i3' re-executed with the real operand");
    assert_eq!(
        res.regs[3], 1,
        "i4' re-executed with the regenerated operand"
    );
}

/// A *non-speculative* instruction between the region top and the commit
/// point must not be re-executed (the paper's i2: re-execution would
/// destroy its semantics).
#[test]
fn non_speculative_work_not_reexecuted() {
    // r5 = r5 + 1 (alw) runs exactly once even though a recovery replays
    // the region around it.
    let mut pr = prog(vec![
        MultiOp::new(vec![Slot::new(p().and_pos(c(0)), load(r(1), 4))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Alu {
            op: AluOp::Add,
            rd: r(5),
            a: Src::reg(r(5)),
            b: Src::imm(1),
        }))]),
        MultiOp::new(vec![Slot::alw(setc_true(c(0)))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
    ]);
    pr.memory.set(4, 7);
    let res = VliwMachine::run_program(&pr, faulting_config(&[4])).unwrap();
    assert_eq!(res.recoveries, 1);
    assert_eq!(res.regs[5], 1, "the increment must run exactly once");
    assert_eq!(res.regs[1], 7);
}

/// An exception whose predicate resolves *false* before any commit point
/// never triggers recovery and costs nothing.
#[test]
fn squashed_exception_is_free() {
    let pr = prog(vec![
        MultiOp::new(vec![Slot::new(p().and_pos(c(0)), load(r(1), 4))]),
        MultiOp::new(vec![Slot::alw(setc_false(c(0)))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
    ]);
    let mut cfg = faulting_config(&[4]);
    cfg.fault_penalty = 1000;
    let res = VliwMachine::run_program(&pr, cfg).unwrap();
    assert_eq!(res.recoveries, 0);
    assert_eq!(res.faults_handled, 0);
    assert!(res.cycles < 20);
}

/// During recovery, an instruction with an *unspecified* predicate under
/// the future condition is re-buffered (category 3) and resolves on a
/// later commit.
#[test]
fn category3_rebuffered_exception() {
    let mut pr = prog(vec![
        // Faulting spec load under c0 (commits first).
        MultiOp::new(vec![Slot::new(p().and_pos(c(0)), load(r(1), 4))]),
        // Faulting spec load under c1 (still open at the first commit).
        MultiOp::new(vec![Slot::new(p().and_pos(c(1)), load(r(2), 5))]),
        MultiOp::new(vec![Slot::alw(setc_true(c(0)))]),
        // c1 resolves later.
        MultiOp::new(vec![Slot::alw(setc_true(c(1)))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
    ]);
    pr.memory.set(4, 1);
    pr.memory.set(5, 2);
    let res = VliwMachine::run_program(&pr, faulting_config(&[4, 5])).unwrap();
    // First recovery handles c0's fault; c1's is re-buffered during that
    // recovery (unspecified under the future condition) and commits later,
    // triggering a second recovery.
    assert_eq!(res.recoveries, 2);
    assert_eq!(res.faults_handled, 2);
    assert_eq!(res.regs[1], 1);
    assert_eq!(res.regs[2], 2);
}

/// The event log records the full recovery narrative in order.
#[test]
fn recovery_event_ordering() {
    let mut pr = prog(vec![
        MultiOp::new(vec![Slot::new(p().and_pos(c(0)), load(r(1), 4))]),
        MultiOp::new(vec![Slot::alw(setc_true(c(0)))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
    ]);
    pr.memory.set(4, 9);
    let res = VliwMachine::run_program(&pr, faulting_config(&[4])).unwrap();
    let pos = |pred: &dyn Fn(&Event) -> bool| res.events.iter().position(pred);
    let spec = pos(&|e| matches!(e, Event::SpecWrite { exc: true, .. })).expect("E buffered");
    let start = pos(&|e| matches!(e, Event::RecoveryStart { .. })).expect("recovery starts");
    let fault = pos(&|e| matches!(e, Event::FaultHandled { .. })).expect("fault handled");
    let end = pos(&|e| matches!(e, Event::RecoveryEnd { .. })).expect("recovery ends");
    // The re-executed load's predicate is already true under the future
    // condition by its writeback, so the recovered value lands as a
    // sequential write (commit during execution) after the recovery.
    let landed = res
        .events
        .iter()
        .rposition(|e| {
            matches!(e, Event::Commit { .. })
                || matches!(e, Event::SeqWrite { reg, .. } if *reg == r(1))
        })
        .expect("recovered value reaches the sequential state");
    assert!(spec < start && start < fault && fault < end && end < landed);
}

/// Builds the recovery-exit race program: a faulting spec load and a
/// dependent spec add under `c0`, committed by a word that *also*
/// sequentially writes the dependent's register.  Whether the recovered
/// shadow or the sequential write lands last depends on when the
/// recovery-exit commit pass runs.
fn exit_race_program() -> VliwProgram {
    let mut pr = prog(vec![
        MultiOp::new(vec![Slot::new(p().and_pos(c(0)), load(r(1), 4))]),
        MultiOp::new(vec![Slot::new(
            p().and_pos(c(0)),
            SlotOp::Op(Op::Alu {
                op: AluOp::Add,
                rd: r(3),
                a: Src::shadow(r(1)),
                b: Src::imm(5),
            }),
        )]),
        MultiOp::new(vec![
            Slot::alw(setc_true(c(0))),
            Slot::alw(SlotOp::Op(Op::Alu {
                op: AluOp::Add,
                rd: r(3),
                a: Src::imm(99),
                b: Src::imm(0),
            })),
        ]),
        MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
    ]);
    pr.memory.set(4, 11);
    pr
}

/// Recovery-exit timing: the shadow regenerated during recovery commits
/// in the *same* cycle the PC reaches the EPC, so a sequential write in
/// the EPC word lands after it and survives.  (Regression test for the
/// one-cycle-late commit that used to clobber the EPC word's result.)
#[test]
fn recovery_exit_commit_beats_epc_reissue() {
    let pr = exit_race_program();
    let res = VliwMachine::run_program(&pr, faulting_config(&[4])).unwrap();
    assert_eq!(res.recoveries, 1);
    assert_eq!(res.regs[1], 11, "faulting load recovered");
    assert_eq!(
        res.regs[3], 99,
        "the EPC word's sequential write must survive the recovery exit"
    );
}

/// The test-only `defer_recovery_exit_commit` escape hatch reintroduces
/// the late commit: the stale shadow (11 + 5) clobbers the EPC word's
/// sequential 99, and the lockstep invariant checker flags the surviving
/// shadow.  This is the bug `repro fuzz --inject-recovery-bug` hunts.
#[test]
fn deferred_exit_commit_reproduces_stale_clobber() {
    let pr = exit_race_program();
    let mut cfg = faulting_config(&[4]);
    cfg.defer_recovery_exit_commit = true;
    let sink = psb_core::InvariantSink::new(4, true);
    let (res, mut sink) = VliwMachine::run_with_sink(&pr, cfg, sink).unwrap();
    assert_eq!(res.recoveries, 1);
    assert_eq!(
        res.regs[3], 16,
        "deferred commit lets the stale shadow land last"
    );
    sink.finalize();
    assert!(
        sink.violations()
            .iter()
            .any(|v| v.message.contains("stale shadow")),
        "invariant checker must flag the late commit: {:?}",
        sink.violations()
    );
}

/// An E-flagged shadow carries no data: an always-predicate consumer of
/// the register reads *through* the buffered exception to the sequential
/// value, and a false condition squashes the exception without any
/// recovery.
#[test]
fn exception_shadow_is_skipped_by_readers() {
    let mut pr = prog(vec![
        MultiOp::new(vec![Slot::new(p().and_pos(c(0)), load(r(1), 4))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Alu {
            op: AluOp::Add,
            rd: r(2),
            a: Src::shadow(r(1)),
            b: Src::imm(1),
        }))]),
        MultiOp::new(vec![Slot::alw(setc_false(c(0)))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
    ]);
    pr.init_regs.push((r(1), 7));
    pr.memory.set(4, 55);
    let res = VliwMachine::run_program(&pr, faulting_config(&[4])).unwrap();
    assert_eq!(
        res.regs[2], 8,
        "reader must fall back to the sequential 7, not the E slot"
    );
    assert_eq!(res.recoveries, 0, "squashed exception triggers no recovery");
    assert_eq!(res.faults_handled, 0);
}

/// Fatal NULL dereference buffered and *committed*: the recovery re-raises
/// it and the machine reports a precise fault instead of completing.
#[test]
fn committed_fatal_fault_is_reported() {
    let pr = prog(vec![
        MultiOp::new(vec![Slot::new(p().and_pos(c(0)), load(r(1), 0))]),
        MultiOp::new(vec![Slot::alw(setc_true(c(0)))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
        MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
    ]);
    let err = VliwMachine::run_program(&pr, MachineConfig::two_issue()).unwrap_err();
    assert!(matches!(err, psb_core::VliwError::Fault { .. }));
}
