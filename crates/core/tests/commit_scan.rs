//! Differential property tests for the two commit-pass strategies.
//!
//! [`CommitScan::Naive`] is a direct transcription of the paper's
//! per-entry commit hardware and serves as the oracle;
//! [`CommitScan::Indexed`] is the O(active) wakeup-list implementation.
//! These tests drive both through identical stimuli — random operation
//! sequences at the component level, random validated programs at the
//! machine level — and require byte-identical event streams and final
//! architectural state.

use proptest::prelude::*;
use psb_core::{
    CommitScan, EventLog, MachineConfig, PredicatedRegFile, PredicatedStoreBuffer, ShadowMode,
    VliwMachine,
};
use psb_isa::{
    AluOp, Ccr, CmpOp, CondReg, MemImage, MemTag, Memory, MultiOp, Op, PredTerm, Predicate, Reg,
    Slot, SlotOp, Src, VliwProgram,
};

const K: usize = 4;
const REGS: usize = 8;

fn pred_strategy() -> impl Strategy<Value = Predicate> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(PredTerm::DontCare),
            1 => Just(PredTerm::Pos),
            1 => Just(PredTerm::Neg),
        ],
        K,
    )
    .prop_map(|terms| {
        let mut p = Predicate::always();
        for (i, t) in terms.into_iter().enumerate() {
            p = p.with_term(CondReg::new(i), t);
        }
        p
    })
}

/// One step of component-level stimulus, applied identically to the naive
/// and the indexed instance.
#[derive(Clone, Debug)]
enum Step {
    /// Register file: sequential write / store buffer: no-op.
    WriteSeq { reg: usize, value: i64 },
    /// Buffer a speculative entry (shadow write or store append).
    WriteSpec {
        reg: usize,
        value: i64,
        pred: Predicate,
        exc: bool,
    },
    /// Update one CCR condition.
    SetCond { cond: usize, value: bool },
    /// Region-entry style CCR reset.
    ResetCcr,
    /// One commit pass (guarded by the exception-commit scan, exactly as
    /// the machine guards it).
    Tick,
    /// Recovery-entry / region-exit squash of all speculative state.
    SquashSpec,
    /// Store buffer only: retire up to one head to memory.
    Retire,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => (1..REGS, -100i64..100).prop_map(|(reg, value)| Step::WriteSeq { reg, value }),
        4 => (1..REGS, -100i64..100, pred_strategy(), prop_oneof![4 => Just(false), 1 => Just(true)])
            .prop_map(|(reg, value, pred, exc)| Step::WriteSpec { reg, value, pred, exc }),
        3 => (0..K, any::<bool>()).prop_map(|(cond, value)| Step::SetCond { cond, value }),
        1 => Just(Step::ResetCcr),
        5 => Just(Step::Tick),
        1 => Just(Step::SquashSpec),
        2 => Just(Step::Retire),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Register file: the indexed wakeup lists produce the same commit and
    /// squash events, in the same order, and the same final sequential and
    /// shadow state as the naive full scan.
    #[test]
    fn regfile_indexed_matches_naive(
        steps in proptest::collection::vec(step_strategy(), 1..80),
        infinite in any::<bool>(),
    ) {
        let mode = if infinite { ShadowMode::Infinite } else { ShadowMode::Single };
        let mut naive = PredicatedRegFile::new(REGS, mode);
        let mut indexed = PredicatedRegFile::new(REGS, mode).with_commit_scan(CommitScan::Indexed);
        let mut log_n = EventLog::new(true);
        let mut log_i = EventLog::new(true);
        let mut ccr = Ccr::new(K);
        let mut cycle = 1u64;
        for step in steps {
            match step {
                Step::WriteSeq { reg, value } => {
                    naive.write_seq(Reg::new(reg), value);
                    indexed.write_seq(Reg::new(reg), value);
                }
                Step::WriteSpec { reg, value, pred, exc } => {
                    // The machine only buffers unspecified predicates; a
                    // single-shadow conflict is a scheduler error there, so
                    // both instances must agree on the verdict here.
                    if pred.eval(&ccr) != psb_isa::Cond::Unspecified {
                        continue;
                    }
                    let rn = naive.write_spec(Reg::new(reg), value, pred, exc);
                    let ri = indexed.write_spec(Reg::new(reg), value, pred, exc);
                    prop_assert_eq!(rn.is_ok(), ri.is_ok());
                }
                Step::SetCond { cond, value } => ccr.set(CondReg::new(cond), value),
                Step::ResetCcr => ccr.reset(),
                Step::Tick => {
                    // Mirror the machine: an exception that would commit
                    // diverts to recovery (squash) instead of ticking.
                    let exc_n = naive.has_exception_commit(&ccr);
                    prop_assert_eq!(exc_n, indexed.has_exception_commit(&ccr));
                    if exc_n {
                        prop_assert_eq!(
                            naive.squash_spec(cycle, &mut log_n),
                            indexed.squash_spec(cycle, &mut log_i)
                        );
                        ccr.reset();
                    } else {
                        prop_assert_eq!(
                            naive.tick(&ccr, cycle, &mut log_n),
                            indexed.tick(&ccr, cycle, &mut log_i)
                        );
                    }
                }
                Step::SquashSpec => {
                    prop_assert_eq!(
                        naive.squash_spec(cycle, &mut log_n),
                        indexed.squash_spec(cycle, &mut log_i)
                    );
                }
                Step::Retire => {}
            }
            cycle += 1;
        }
        prop_assert_eq!(log_n.events(), log_i.events());
        prop_assert_eq!(naive.seq_values(), indexed.seq_values());
        for r in 0..REGS {
            prop_assert_eq!(
                naive.shadow_entry(Reg::new(r)),
                indexed.shadow_entry(Reg::new(r))
            );
        }
    }

    /// Store buffer: same property — identical events, identical entries,
    /// identical retired memory.
    #[test]
    fn storebuf_indexed_matches_naive(
        steps in proptest::collection::vec(step_strategy(), 1..80),
    ) {
        let mut naive = PredicatedStoreBuffer::new(64);
        let mut indexed = PredicatedStoreBuffer::new(64).with_commit_scan(CommitScan::Indexed);
        let mut log_n = EventLog::new(true);
        let mut log_i = EventLog::new(true);
        let mut mem_n = Memory::from_image(&MemImage::zeroed(32));
        let mut mem_i = Memory::from_image(&MemImage::zeroed(32));
        let mut ccr = Ccr::new(K);
        let mut cycle = 1u64;
        for step in steps {
            match step {
                Step::WriteSeq { reg, value } => {
                    // Reuse as a non-speculative store.
                    if naive.would_overflow(1) {
                        continue;
                    }
                    let addr = reg as i64;
                    naive.append(addr, value, Predicate::always(), false, false, cycle, &mut log_n);
                    indexed.append(addr, value, Predicate::always(), false, false, cycle, &mut log_i);
                }
                Step::WriteSpec { reg, value, pred, exc } => {
                    if naive.would_overflow(1) || pred.eval(&ccr) != psb_isa::Cond::Unspecified {
                        continue;
                    }
                    let addr = reg as i64;
                    naive.append(addr, value, pred, true, exc, cycle, &mut log_n);
                    indexed.append(addr, value, pred, true, exc, cycle, &mut log_i);
                }
                Step::SetCond { cond, value } => ccr.set(CondReg::new(cond), value),
                Step::ResetCcr => ccr.reset(),
                Step::Tick => {
                    let exc_n = naive.has_exception_commit(&ccr);
                    prop_assert_eq!(exc_n, indexed.has_exception_commit(&ccr));
                    if exc_n {
                        prop_assert_eq!(
                            naive.squash_spec(cycle, &mut log_n),
                            indexed.squash_spec(cycle, &mut log_i)
                        );
                        ccr.reset();
                    } else {
                        prop_assert_eq!(
                            naive.tick(&ccr, cycle, &mut log_n),
                            indexed.tick(&ccr, cycle, &mut log_i)
                        );
                    }
                }
                Step::SquashSpec => {
                    prop_assert_eq!(
                        naive.squash_spec(cycle, &mut log_n),
                        indexed.squash_spec(cycle, &mut log_i)
                    );
                }
                Step::Retire => {
                    prop_assert_eq!(naive.retire(&mut mem_n, 1), indexed.retire(&mut mem_i, 1));
                }
            }
            cycle += 1;
        }
        prop_assert_eq!(log_n.events(), log_i.events());
        let en: Vec<_> = naive.entries().copied().collect();
        let ei: Vec<_> = indexed.entries().copied().collect();
        prop_assert_eq!(en, ei);
        prop_assert_eq!(mem_n.cells(), mem_i.cells());
    }
}

// ---------------------------------------------------------------------------
// Machine-level differential: whole random programs, including faults and
// recovery, must produce identical `VliwResult`s under both strategies.
// ---------------------------------------------------------------------------

fn src_strategy() -> impl Strategy<Value = Src> {
    prop_oneof![
        (1usize..8, any::<bool>()).prop_map(|(r, sh)| Src::Reg {
            reg: Reg::new(r),
            shadow: sh
        }),
        (-4i64..40).prop_map(Src::imm),
    ]
}

fn op_strategy() -> impl Strategy<Value = SlotOp> {
    prop_oneof![
        4 => (0usize..8, src_strategy(), src_strategy()).prop_map(|(rd, a, b)| {
            SlotOp::Op(Op::Alu { op: AluOp::Add, rd: Reg::new(rd), a, b })
        }),
        2 => (0usize..8, src_strategy(), -4i64..44).prop_map(|(rd, base, off)| {
            SlotOp::Op(Op::Load { rd: Reg::new(rd), base, offset: off, tag: MemTag::ANY })
        }),
        2 => (src_strategy(), -4i64..44, src_strategy()).prop_map(|(base, off, v)| {
            SlotOp::Op(Op::Store { base, offset: off, value: v, tag: MemTag::ANY })
        }),
        2 => (0..3usize, src_strategy(), src_strategy()).prop_map(|(c, a, b)| {
            SlotOp::Op(Op::SetCond { c: CondReg::new(c), cmp: CmpOp::Lt, a, b })
        }),
        1 => Just(SlotOp::Jump { target: 0 }),
        1 => Just(SlotOp::Halt),
    ]
}

prop_compose! {
    fn program_strategy()(
        raw in proptest::collection::vec(
            proptest::collection::vec((pred_strategy(), op_strategy()), 1..3),
            2..12,
        ),
        region_picks in proptest::collection::vec(any::<u8>(), 4),
        fault_page in proptest::option::of(1i64..44),
    ) -> (VliwProgram, Option<i64>) {
        let n = raw.len();
        let mut starts: Vec<usize> = vec![0];
        for p in region_picks {
            starts.push(p as usize % n);
        }
        starts.sort_unstable();
        starts.dedup();
        let mut words: Vec<MultiOp> = raw
            .into_iter()
            .map(|slots| {
                MultiOp::new(
                    slots
                        .into_iter()
                        .map(|(pred, op)| {
                            let pred = if matches!(op, SlotOp::Op(Op::SetCond { .. })) {
                                Predicate::always()
                            } else {
                                pred
                            };
                            Slot::new(pred, op)
                        })
                        .collect(),
                )
            })
            .collect();
        for (i, w) in words.iter_mut().enumerate() {
            for s in &mut w.slots {
                if let SlotOp::Jump { target } = &mut s.op {
                    *target = starts[(i + *target) % starts.len()];
                }
            }
        }
        words.push(MultiOp::new(vec![Slot::alw(SlotOp::Halt)]));
        let prog = VliwProgram {
            name: "scan-diff".into(),
            words,
            region_starts: starts,
            num_conds: 3,
            init_regs: vec![(Reg::new(1), 7), (Reg::new(2), 20)],
            memory: MemImage::zeroed(48),
            live_out: vec![],
        };
        (prog, fault_page)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// End-to-end oracle: any validated program — including ones that
    /// fault, recover, and take structured errors — runs identically under
    /// both scan strategies, event log included.
    #[test]
    fn machine_indexed_matches_naive(
        (prog, fault_page) in program_strategy(),
        infinite in any::<bool>(),
    ) {
        prop_assume!(prog.validate().is_ok());
        let mut cfg = MachineConfig::two_issue().with_events();
        cfg.max_cycles = 2_000;
        cfg.shadow_mode = if infinite { ShadowMode::Infinite } else { ShadowMode::Single };
        if let Some(p) = fault_page {
            cfg.fault_once_addrs.insert(p);
            cfg.fault_penalty = 3;
        }
        let naive = VliwMachine::run_program(&prog, cfg.clone().with_commit_scan(CommitScan::Naive));
        let indexed = VliwMachine::run_program(&prog, cfg.with_commit_scan(CommitScan::Indexed));
        match (naive, indexed) {
            (Ok(n), Ok(i)) => prop_assert_eq!(n, i),
            (Err(n), Err(i)) => prop_assert_eq!(format!("{n:?}"), format!("{i:?}")),
            (n, i) => prop_assert!(
                false,
                "strategies disagree: naive={n:?} indexed={i:?}"
            ),
        }
    }
}
