//! Property tests for the predicated state-buffering hardware: the
//! register file and store buffer are driven with random operation
//! sequences and checked against simple reference models.

use proptest::prelude::*;
use psb_core::{EventLog, PredicatedRegFile, PredicatedStoreBuffer, ShadowMode};
use psb_isa::{Ccr, Cond, CondReg, MemImage, Memory, Predicate, Reg};

const K: usize = 4;
const REGS: usize = 8;

#[derive(Clone, Debug)]
enum RfOp {
    WriteSeq {
        reg: usize,
        value: i64,
    },
    WriteSpec {
        reg: usize,
        value: i64,
        cond: usize,
        neg: bool,
    },
    SetCond {
        cond: usize,
        value: bool,
    },
}

fn rf_op_strategy() -> impl Strategy<Value = RfOp> {
    prop_oneof![
        (1..REGS, any::<i16>()).prop_map(|(reg, v)| RfOp::WriteSeq {
            reg,
            value: v as i64
        }),
        (1..REGS, any::<i16>(), 0..K, any::<bool>()).prop_map(|(reg, v, cond, neg)| {
            RfOp::WriteSpec {
                reg,
                value: v as i64,
                cond,
                neg,
            }
        }),
        (0..K, any::<bool>()).prop_map(|(cond, value)| RfOp::SetCond { cond, value }),
    ]
}

/// Reference model: sequential values plus at most one pending
/// speculative value per register (we only generate compatible
/// single-predicate rewrites, so the single-shadow rule never trips).
#[derive(Clone, Debug)]
struct RefModel {
    seq: [i64; REGS],
    spec: [Option<(i64, Predicate)>; REGS],
    ccr: Ccr,
}

proptest! {
    /// The register file's commit hardware agrees with a straightforward
    /// reference: values commit exactly when their predicate becomes
    /// true, squash exactly when it becomes false, and the sequential
    /// state never changes otherwise.
    #[test]
    fn regfile_matches_reference(ops in proptest::collection::vec(rf_op_strategy(), 1..60)) {
        let mut rf = PredicatedRegFile::new(REGS, ShadowMode::Single);
        let mut reference = RefModel {
            seq: [0; REGS],
            spec: [None; REGS],
            ccr: Ccr::new(K),
        };
        let mut log = EventLog::new(false);
        let mut cycle = 1u64;
        for op in ops {
            // Hardware tick (commit pass), then reference tick.
            rf.tick(&reference.ccr.clone(), cycle, &mut log);
            for i in 0..REGS {
                if let Some((v, p)) = reference.spec[i] {
                    match p.eval(&reference.ccr) {
                        Cond::True => {
                            reference.seq[i] = v;
                            reference.spec[i] = None;
                        }
                        Cond::False => reference.spec[i] = None,
                        Cond::Unspecified => {}
                    }
                }
            }
            match op {
                RfOp::WriteSeq { reg, value } => {
                    rf.write_seq(Reg::new(reg), value);
                    reference.seq[reg] = value;
                }
                RfOp::WriteSpec { reg, value, cond, neg } => {
                    let p = if neg {
                        Predicate::always().and_neg(CondReg::new(cond))
                    } else {
                        Predicate::always().and_pos(CondReg::new(cond))
                    };
                    // Skip writes that would legitimately conflict in the
                    // single-shadow design (the scheduler prevents them).
                    let conflict = matches!(
                        reference.spec[reg],
                        Some((_, q)) if q != p
                    );
                    // A predicate already specified at write time never
                    // reaches the speculative state in the real machine.
                    if conflict || p.eval(&reference.ccr) != Cond::Unspecified {
                        continue;
                    }
                    rf.write_spec(Reg::new(reg), value, p, false).unwrap();
                    reference.spec[reg] = Some((value, p));
                }
                RfOp::SetCond { cond, value } => {
                    reference.ccr.set(CondReg::new(cond), value);
                }
            }
            cycle += 1;
        }
        // Final commit pass, then compare architectural state.
        rf.tick(&reference.ccr.clone(), cycle, &mut log);
        for i in 0..REGS {
            if let Some((v, p)) = reference.spec[i] {
                match p.eval(&reference.ccr) {
                    Cond::True => {
                        reference.seq[i] = v;
                        reference.spec[i] = None;
                    }
                    Cond::False => reference.spec[i] = None,
                    Cond::Unspecified => {}
                }
            }
        }
        prop_assert_eq!(&rf.seq_values()[..], &reference.seq[..]);
        // Outstanding speculation agrees too.
        for i in 0..REGS {
            let hw = rf.shadow_entry(Reg::new(i)).map(|(v, p, _)| (v, p));
            prop_assert_eq!(hw, reference.spec[i]);
        }
    }

    /// Store buffer: only committed (non-speculative) values ever reach
    /// memory, retirement preserves FIFO order among surviving stores,
    /// and squashed stores vanish without a trace.
    #[test]
    fn store_buffer_retires_exactly_committed_stores(
        stores in proptest::collection::vec(
            (1i64..31, any::<i16>(), 0..K, any::<bool>(), any::<bool>()),
            1..20
        ),
        conds in proptest::collection::vec(any::<bool>(), K),
    ) {
        let mut sb = PredicatedStoreBuffer::new(64);
        let mut log = EventLog::new(false);
        let mut reference: Vec<(i64, i64)> = Vec::new(); // surviving stores in order
        let mut final_ccr = Ccr::new(K);
        for (i, &v) in conds.iter().enumerate() {
            final_ccr.set(CondReg::new(i), v);
        }
        for (k, &(addr, value, cond, neg, spec)) in stores.iter().enumerate() {
            let pred = if spec {
                if neg {
                    Predicate::always().and_neg(CondReg::new(cond))
                } else {
                    Predicate::always().and_pos(CondReg::new(cond))
                }
            } else {
                Predicate::always()
            };
            sb.append(addr, value as i64, pred, spec, false, k as u64, &mut log);
            if pred.eval(&final_ccr) == Cond::True {
                reference.push((addr, value as i64));
            }
        }
        // Resolve all predicates, then drain.
        sb.tick(&final_ccr, 99, &mut log);
        let mut mem = Memory::from_image(&MemImage::zeroed(32));
        let mut retired = Vec::new();
        loop {
            let before: Vec<(i64, i64)> =
                sb.entries().filter(|e| e.valid && !e.spec).map(|e| (e.addr, e.value)).collect();
            let n = sb.retire(&mut mem, 1);
            if n == 0 {
                break;
            }
            retired.push(before[0]);
        }
        prop_assert_eq!(retired, reference.clone());
        prop_assert!(sb.is_empty() || sb.drained());
        // Memory holds the last committed store per address.
        let mut expect = Memory::from_image(&MemImage::zeroed(32));
        for (a, v) in reference {
            expect.write(a, v).unwrap();
        }
        prop_assert_eq!(mem.cells(), expect.cells());
    }
}
