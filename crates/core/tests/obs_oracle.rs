//! Event-log-oracle property tests for the counters sink.
//!
//! The full [`EventLog`] is the ground truth: this test reconstructs the
//! speculation-lifetime and recovery-duration histograms, the event
//! totals, and the per-region attribution from the recorded event stream
//! — using the same documented FIFO rule as [`CountersSink`] (a `Commit`
//! resolves the oldest pending `SpecWrite` at its location, a `Squash`
//! drains all of them) — and requires the counters sink, which saw the
//! same stream online without storing it, to agree exactly.  The
//! sample-driven counters (stall runs, per-word stalls, occupancy sample
//! counts) are cross-checked against the machine's own [`RunStats`],
//! which are accumulated independently of the sink.

use proptest::prelude::*;
use psb_core::{
    CountersSink, Event, Histogram, MachineConfig, ObsReport, ShadowMode, StateLoc, TraceSink,
    VliwMachine,
};
use psb_isa::{
    AluOp, CmpOp, CondReg, MemImage, MemTag, MultiOp, Op, PredTerm, Predicate, Reg, Slot, SlotOp,
    Src, VliwProgram,
};
use std::collections::{BTreeMap, VecDeque};

const K: usize = 4;

fn pred_strategy() -> impl Strategy<Value = Predicate> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(PredTerm::DontCare),
            1 => Just(PredTerm::Pos),
            1 => Just(PredTerm::Neg),
        ],
        K,
    )
    .prop_map(|terms| {
        let mut p = Predicate::always();
        for (i, t) in terms.into_iter().enumerate() {
            p = p.with_term(CondReg::new(i), t);
        }
        p
    })
}

fn src_strategy() -> impl Strategy<Value = Src> {
    prop_oneof![
        (1usize..8, any::<bool>()).prop_map(|(r, sh)| Src::Reg {
            reg: Reg::new(r),
            shadow: sh
        }),
        (-4i64..40).prop_map(Src::imm),
    ]
}

fn op_strategy() -> impl Strategy<Value = SlotOp> {
    prop_oneof![
        4 => (0usize..8, src_strategy(), src_strategy()).prop_map(|(rd, a, b)| {
            SlotOp::Op(Op::Alu { op: AluOp::Add, rd: Reg::new(rd), a, b })
        }),
        2 => (0usize..8, src_strategy(), -4i64..44).prop_map(|(rd, base, off)| {
            SlotOp::Op(Op::Load { rd: Reg::new(rd), base, offset: off, tag: MemTag::ANY })
        }),
        2 => (src_strategy(), -4i64..44, src_strategy()).prop_map(|(base, off, v)| {
            SlotOp::Op(Op::Store { base, offset: off, value: v, tag: MemTag::ANY })
        }),
        2 => (0..3usize, src_strategy(), src_strategy()).prop_map(|(c, a, b)| {
            SlotOp::Op(Op::SetCond { c: CondReg::new(c), cmp: CmpOp::Lt, a, b })
        }),
        1 => Just(SlotOp::Jump { target: 0 }),
        1 => Just(SlotOp::Halt),
    ]
}

prop_compose! {
    fn program_strategy()(
        raw in proptest::collection::vec(
            proptest::collection::vec((pred_strategy(), op_strategy()), 1..3),
            2..12,
        ),
        region_picks in proptest::collection::vec(any::<u8>(), 4),
        fault_page in proptest::option::of(1i64..44),
    ) -> (VliwProgram, Option<i64>) {
        let n = raw.len();
        let mut starts: Vec<usize> = vec![0];
        for p in region_picks {
            starts.push(p as usize % n);
        }
        starts.sort_unstable();
        starts.dedup();
        let mut words: Vec<MultiOp> = raw
            .into_iter()
            .map(|slots| {
                MultiOp::new(
                    slots
                        .into_iter()
                        .map(|(pred, op)| {
                            let pred = if matches!(op, SlotOp::Op(Op::SetCond { .. })) {
                                Predicate::always()
                            } else {
                                pred
                            };
                            Slot::new(pred, op)
                        })
                        .collect(),
                )
            })
            .collect();
        for (i, w) in words.iter_mut().enumerate() {
            for s in &mut w.slots {
                if let SlotOp::Jump { target } = &mut s.op {
                    *target = starts[(i + *target) % starts.len()];
                }
            }
        }
        words.push(MultiOp::new(vec![Slot::alw(SlotOp::Halt)]));
        let prog = VliwProgram {
            name: "obs-oracle".into(),
            words,
            region_starts: starts,
            num_conds: 3,
            init_regs: vec![(Reg::new(1), 7), (Reg::new(2), 20)],
            memory: MemImage::zeroed(48),
            live_out: vec![],
        };
        (prog, fault_page)
    }
}

/// Map key for a [`StateLoc`], mirroring the sink's internal keying.
fn loc_key(loc: StateLoc) -> (u8, u64) {
    match loc {
        StateLoc::Reg(r) => (0, r.index() as u64),
        StateLoc::Sb(id) => (1, id),
    }
}

/// The oracle: replays the recorded event stream through the documented
/// counting rules, independently of [`CountersSink`]'s implementation.
fn reconstruct(events: &[Event]) -> ObsReport {
    let mut r = ObsReport::default();
    r.regions.entry(0).or_default().entries = 1;
    let mut births: BTreeMap<(u8, u64), VecDeque<u64>> = BTreeMap::new();
    let mut recovery_start = None;
    let mut cur_region = 0usize;
    for e in events {
        match *e {
            Event::SpecWrite { cycle, loc, .. } => {
                births.entry(loc_key(loc)).or_default().push_back(cycle);
            }
            Event::Commit { cycle, loc } => {
                if let Some(birth) = births.get_mut(&loc_key(loc)).and_then(VecDeque::pop_front) {
                    r.lifetime.record(cycle - birth);
                }
                r.commits += 1;
                r.regions.entry(cur_region).or_default().commits += 1;
            }
            Event::Squash { cycle, loc } => {
                if let Some(q) = births.get_mut(&loc_key(loc)) {
                    for birth in q.drain(..) {
                        r.lifetime.record(cycle - birth);
                    }
                }
                r.squashes += 1;
                r.regions.entry(cur_region).or_default().squashes += 1;
            }
            Event::RegionEnter { addr, .. } => {
                cur_region = addr;
                r.regions.entry(addr).or_default().entries += 1;
            }
            Event::RecoveryStart { cycle, epc, .. } => {
                recovery_start = Some(cycle);
                r.recoveries += 1;
                r.regions.entry(cur_region).or_default().recoveries += 1;
                r.words.entry(epc).or_default().recoveries += 1;
            }
            Event::RecoveryEnd { cycle } => {
                if let Some(start) = recovery_start.take() {
                    r.recovery.record(cycle - start);
                }
            }
            Event::FaultHandled { .. } => r.faults_handled += 1,
            Event::ExcLatched { .. } => r.exc_latched += 1,
            Event::SeqWrite { .. } | Event::SeqStore { .. } | Event::CondSet { .. } => {}
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The counters sink agrees with a histogram reconstruction from the
    /// full event log, and its sample-driven counters agree with the
    /// machine's own stall statistics, on arbitrary programs — including
    /// ones that fault and recover.
    #[test]
    fn counters_match_event_log_oracle(
        (prog, fault_page) in program_strategy(),
        infinite in any::<bool>(),
    ) {
        prop_assume!(prog.validate().is_ok());
        let mut cfg = MachineConfig::two_issue().with_events();
        cfg.max_cycles = 2_000;
        cfg.shadow_mode = if infinite { ShadowMode::Infinite } else { ShadowMode::Single };
        if let Some(p) = fault_page {
            cfg.fault_once_addrs.insert(p);
            cfg.fault_penalty = 3;
        }
        let logged = VliwMachine::run_program(&prog, cfg.clone());
        let counted = VliwMachine::run_with_sink(&prog, cfg, CountersSink::new());
        let (logged, counted) = match (logged, counted) {
            (Ok(l), Ok(c)) => (l, c),
            (Err(l), Err(c)) => {
                prop_assert_eq!(format!("{l:?}"), format!("{c:?}"));
                return Ok(());
            }
            (l, c) => {
                return Err(TestCaseError::fail(format!(
                    "sinks change the outcome: log={l:?} counters={c:?}"
                )));
            }
        };
        let (counted_res, sink) = counted;
        // The sink must not perturb execution at all.
        prop_assert_eq!(counted_res.cycles, logged.cycles);
        prop_assert_eq!(counted_res.stats, logged.stats);
        prop_assert_eq!(&counted_res.regs, &logged.regs);

        let report = sink.into_report();
        let oracle = reconstruct(&logged.events);
        prop_assert_eq!(&report.lifetime, &oracle.lifetime);
        prop_assert_eq!(&report.recovery, &oracle.recovery);
        prop_assert_eq!(report.commits, oracle.commits);
        prop_assert_eq!(report.squashes, oracle.squashes);
        prop_assert_eq!(report.recoveries, oracle.recoveries);
        prop_assert_eq!(report.faults_handled, oracle.faults_handled);
        prop_assert_eq!(report.exc_latched, oracle.exc_latched);
        // Region stall_cycles are sample-driven (not reconstructible from
        // events); compare the event-driven region fields.
        let region_events = |r: &ObsReport| -> Vec<(usize, u64, u64, u64, u64)> {
            r.regions
                .iter()
                .map(|(&a, p)| (a, p.entries, p.commits, p.squashes, p.recoveries))
                .collect()
        };
        prop_assert_eq!(region_events(&report), region_events(&oracle));
        // Recovery EPC attribution is the event-driven half of the word
        // profile; compare it alone (stalls are sample-driven).
        let oracle_epcs: Vec<(usize, u64)> =
            oracle.words.iter().map(|(&w, p)| (w, p.recoveries)).collect();
        let report_epcs: Vec<(usize, u64)> = report
            .words
            .iter()
            .filter(|(_, p)| p.recoveries > 0)
            .map(|(&w, p)| (w, p.recoveries))
            .collect();
        prop_assert_eq!(report_epcs, oracle_epcs);

        // Sample-driven counters against the machine's independent stats.
        let s = &logged.stats;
        let total_stalls = s.stall_operand
            + s.stall_sb_full
            + s.stall_busy
            + s.stall_ifetch
            + s.stall_load_miss;
        prop_assert_eq!(report.stall_runs.sum(), total_stalls);
        let by_kind = |f: fn(&psb_core::WordProfile) -> u64| -> u64 {
            report.words.values().map(f).sum()
        };
        prop_assert_eq!(by_kind(|w| w.stall_operand), s.stall_operand);
        prop_assert_eq!(by_kind(|w| w.stall_sb_full), s.stall_sb_full);
        prop_assert_eq!(by_kind(|w| w.stall_busy), s.stall_busy);
        prop_assert_eq!(by_kind(|w| w.stall_ifetch), s.stall_ifetch);
        prop_assert_eq!(by_kind(|w| w.stall_load_miss), s.stall_load_miss);
        prop_assert_eq!(
            report.regions.values().map(|r| r.stall_cycles).sum::<u64>(),
            total_stalls
        );
        // One sample per cycle up to the halt (the drain tail has no PC).
        prop_assert_eq!(report.shadow_occupancy.samples(), report.cycles);
        prop_assert!(report.cycles <= counted_res.cycles);
    }
}

/// A tiny direct check that the trait-object-free generic plumbing works:
/// a custom sink observes the same event count the log records.
#[test]
fn custom_sink_sees_the_event_stream() {
    #[derive(Default)]
    struct CountEvents(u64, u64);
    impl TraceSink for CountEvents {
        fn record(&mut self, _ev: Event) {
            self.0 += 1;
        }
        fn sample(&mut self, _s: &psb_core::CycleSample) {
            self.1 += 1;
        }
    }
    let prog = VliwProgram {
        name: "tiny".into(),
        words: vec![
            MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Alu {
                op: AluOp::Add,
                rd: Reg::new(1),
                a: Src::imm(2),
                b: Src::imm(3),
            }))]),
            MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
        ],
        region_starts: vec![0],
        num_conds: 2,
        init_regs: vec![],
        memory: MemImage::zeroed(8),
        live_out: vec![],
    };
    let cfg = MachineConfig::two_issue().with_events();
    let logged = VliwMachine::run_program(&prog, cfg.clone()).unwrap();
    let (res, sink) = VliwMachine::run_with_sink(&prog, cfg, CountEvents::default()).unwrap();
    assert_eq!(sink.0, logged.events.len() as u64);
    assert_eq!(sink.1, res.cycles, "one sample per pre-drain cycle");
    let _ = Histogram::bucket_of(1);
}
