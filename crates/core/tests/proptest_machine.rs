//! Robustness fuzz: the machine must never panic on *any* program that
//! passes static validation — adversarial code may earn a `VliwError`,
//! but the simulator's internal invariants (exception-detection coverage,
//! retire-time fault freedom, writeback assertions) must hold for every
//! input, not just scheduler output.

use proptest::prelude::*;
use psb_core::{MachineConfig, ShadowMode, VliwMachine};
use psb_isa::{
    AluOp, CmpOp, CondReg, MemImage, MemTag, MultiOp, Op, PredTerm, Predicate, Reg, Slot, SlotOp,
    Src, VliwProgram,
};

const K: usize = 3;

fn pred_strategy() -> impl Strategy<Value = Predicate> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(PredTerm::DontCare),
            1 => Just(PredTerm::Pos),
            1 => Just(PredTerm::Neg),
        ],
        K,
    )
    .prop_map(|terms| {
        let mut p = Predicate::always();
        for (i, t) in terms.into_iter().enumerate() {
            p = p.with_term(CondReg::new(i), t);
        }
        p
    })
}

fn src_strategy() -> impl Strategy<Value = Src> {
    prop_oneof![
        (1usize..8, any::<bool>()).prop_map(|(r, sh)| Src::Reg {
            reg: Reg::new(r),
            shadow: sh
        }),
        (-4i64..40).prop_map(Src::imm),
    ]
}

/// Ops reference conditions < K and words stay within 2 slots; targets
/// are patched to valid region starts afterwards.
fn op_strategy() -> impl Strategy<Value = SlotOp> {
    prop_oneof![
        4 => (0usize..8, src_strategy(), src_strategy()).prop_map(|(rd, a, b)| {
            SlotOp::Op(Op::Alu { op: AluOp::Add, rd: Reg::new(rd), a, b })
        }),
        2 => (0usize..8, src_strategy(), -4i64..44).prop_map(|(rd, base, off)| {
            SlotOp::Op(Op::Load { rd: Reg::new(rd), base, offset: off, tag: MemTag::ANY })
        }),
        2 => (src_strategy(), -4i64..44, src_strategy()).prop_map(|(base, off, v)| {
            SlotOp::Op(Op::Store { base, offset: off, value: v, tag: MemTag::ANY })
        }),
        2 => (0..K, src_strategy(), src_strategy()).prop_map(|(c, a, b)| {
            SlotOp::Op(Op::SetCond { c: CondReg::new(c), cmp: CmpOp::Lt, a, b })
        }),
        1 => Just(SlotOp::Jump { target: 0 }),
        1 => Just(SlotOp::Halt),
    ]
}

prop_compose! {
    fn program_strategy()(
        raw in proptest::collection::vec(
            proptest::collection::vec((pred_strategy(), op_strategy()), 1..3),
            2..12,
        ),
        region_picks in proptest::collection::vec(any::<u8>(), 4),
        fault_page in proptest::option::of(1i64..44),
    ) -> (VliwProgram, Option<i64>) {
        let n = raw.len();
        // Region starts: word 0 plus a few random picks.
        let mut starts: Vec<usize> = vec![0];
        for p in region_picks {
            starts.push(p as usize % n);
        }
        starts.sort_unstable();
        starts.dedup();
        let mut words: Vec<MultiOp> = raw
            .into_iter()
            .map(|slots| {
                MultiOp::new(
                    slots
                        .into_iter()
                        .map(|(pred, op)| {
                            // Condition-sets must be `alw` (validated).
                            let pred = if matches!(op, SlotOp::Op(Op::SetCond { .. })) {
                                Predicate::always()
                            } else {
                                pred
                            };
                            Slot::new(pred, op)
                        })
                        .collect(),
                )
            })
            .collect();
        // Patch jump targets onto real region starts and guarantee the
        // last word halts so runs can end.
        for (i, w) in words.iter_mut().enumerate() {
            for s in &mut w.slots {
                if let SlotOp::Jump { target } = &mut s.op {
                    *target = starts[(i + *target) % starts.len()];
                }
            }
        }
        words.push(MultiOp::new(vec![Slot::alw(SlotOp::Halt)]));
        let prog = VliwProgram {
            name: "fuzz".into(),
            words,
            region_starts: starts,
            num_conds: K,
            init_regs: vec![(Reg::new(1), 7), (Reg::new(2), 20)],
            memory: MemImage::zeroed(48),
            live_out: vec![],
        };
        (prog, fault_page)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn machine_never_panics_on_validated_programs(
        (prog, fault_page) in program_strategy(),
        infinite in any::<bool>(),
    ) {
        prop_assume!(prog.validate().is_ok());
        let mut cfg = MachineConfig::two_issue();
        cfg.max_cycles = 2_000;
        cfg.shadow_mode = if infinite { ShadowMode::Infinite } else { ShadowMode::Single };
        if let Some(p) = fault_page {
            cfg.fault_once_addrs.insert(p);
            cfg.fault_penalty = 3;
        }
        // Ok or a structured error — never a panic, never a hang.
        let _ = VliwMachine::run_program(&prog, cfg);
    }
}
