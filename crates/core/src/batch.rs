//! Batched lockstep execution of many machine configurations over one
//! shared decoded arena.
//!
//! Design-space sweeps run the *same compiled artifact* under many
//! [`MachineConfig`] variants (issue width × store-buffer depth ×
//! commit-scan strategy × …).  Point-at-a-time execution re-pays the
//! per-run fixed costs for every point: program validation, arena
//! dispatch validation, and the cache-miss compile whose key already
//! excludes `MachineConfig` precisely so that one artifact can serve a
//! whole grid.  [`BatchedMachine`] makes that amortization first-class:
//!
//! * **Struct-of-arrays state.**  The batch holds parallel per-lane
//!   columns — each lane owns its predicated register file, store
//!   buffer, CCR and [`RunStats`](crate::RunStats) — while all lanes
//!   share one `Arc<DecodedProgram>` arena and one `&VliwProgram`.  The
//!   decoded words and slots are fetched from the same cache-resident
//!   arena as every other lane's, instead of N cold copies.
//! * **Lockstep stepping.**  One batch cycle calls
//!   [`VliwMachine::step_cycle`] — the *same* single-cycle function the
//!   solo runner loops over — once per live lane.  A lane's trajectory
//!   is therefore byte-equal to its solo run (event logs included) by
//!   construction, not by a re-implementation of the cycle semantics.
//! * **Independent retirement.**  A lane that issues its halt word (or
//!   faults) drains and retires immediately; the batch keeps stepping
//!   the remaining live lanes, so one long-running configuration never
//!   blocks the others' results.
//! * **Grouped admission.**  Construction validates the program once
//!   per *distinct* `(issue_width, resources)` pair instead of once per
//!   lane, and validates the shared arena's dispatch tables exactly
//!   once per batch.
//!
//! Lane failures are per-lane values, never batch failures: a config
//! that fails admission, faults, or exceeds its cycle limit yields the
//! same `Err` its solo run would, in its slot of the report, while the
//! other lanes run to completion.

use crate::config::MachineConfig;
use crate::decoded::DecodedProgram;
use crate::event::EventLog;
use crate::machine::{StepOutcome, VliwError, VliwMachine, VliwResult};
use crate::obs::TraceSink;
use psb_isa::{Resources, VliwProgram};
use std::sync::Arc;

/// Default lockstep granularity (cycles each live lane advances per
/// round).  Large enough that a lane's register file, store buffer and
/// hot decoded words stay cache-resident across a burst; small enough
/// that a retiring lane frees its column promptly and skew between
/// lanes stays bounded.
pub const DEFAULT_STRIDE: u64 = 64;

/// What one lane produced: exactly what the same configuration's solo
/// [`VliwMachine::run_into_sink`] would have returned.
pub type LaneOutcome<S> = Result<(VliwResult, S), VliwError>;

/// The result of running a batch to completion: one outcome per lane
/// (in construction order) plus lockstep accounting.
#[derive(Debug)]
pub struct BatchReport<S> {
    /// Per-lane outcomes, index-aligned with the configurations the
    /// batch was constructed from.
    pub lanes: Vec<LaneOutcome<S>>,
    /// Lockstep iterations driven — the longest live lane's cycle
    /// count, and the batch analogue of a solo run's wall cycles.
    pub batch_cycles: u64,
    /// Total architectural cycles stepped across all lanes (the work
    /// the batch actually did; `sum(lane cycles)`, not `max`).
    pub lane_cycles: u64,
}

/// N configurations of one compiled program stepping in lockstep over a
/// shared decoded arena.  See the [module docs](self) for the layout
/// and equality guarantees.
pub struct BatchedMachine<'p, S: TraceSink = EventLog> {
    /// Lane columns: `Some` while live, `None` once retired into
    /// `results`.
    lanes: Vec<Option<VliwMachine<'p, S>>>,
    /// Retired outcomes, index-aligned with `lanes`.
    results: Vec<Option<LaneOutcome<S>>>,
    /// Indices of live lanes.  Order is irrelevant to correctness
    /// (lanes are independent) but deterministic for a given input.
    live: Vec<usize>,
    /// Cycles each live lane advances per lockstep round (bounded
    /// skew).  See [`with_stride`](Self::with_stride).
    stride: u64,
    /// Lockstep rounds driven so far.
    batch_cycles: u64,
    /// Architectural cycles stepped across all lanes so far.
    lane_cycles: u64,
}

impl<'p> BatchedMachine<'p, EventLog> {
    /// Builds a batch with each lane's default [`EventLog`] sink
    /// (recording iff its config's `record_events` is set), mirroring
    /// [`VliwMachine::new`].
    pub fn new(
        prog: &'p VliwProgram,
        decoded: Arc<DecodedProgram>,
        cfgs: &[MachineConfig],
    ) -> BatchedMachine<'p, EventLog> {
        let lanes = cfgs
            .iter()
            .map(|cfg| (cfg.clone(), EventLog::new(cfg.record_events)))
            .collect();
        BatchedMachine::with_sinks(prog, decoded, lanes)
    }
}

impl<'p, S: TraceSink> BatchedMachine<'p, S> {
    /// Builds a batch of one lane per `(config, sink)` pair over the
    /// shared `decoded` arena (which must be the decoding of `prog`,
    /// as a compiled artifact guarantees).
    ///
    /// Construction itself never fails: a lane whose configuration
    /// fails admission retires immediately with the same
    /// [`VliwError::Malformed`] its solo construction would produce.
    /// Admission is validated once per distinct
    /// `(issue_width, resources)` pair, and the arena's dispatch
    /// lowering once per batch.
    pub fn with_sinks(
        prog: &'p VliwProgram,
        decoded: Arc<DecodedProgram>,
        lane_specs: Vec<(MachineConfig, S)>,
    ) -> BatchedMachine<'p, S> {
        // The arena checks from `with_sink_decoded`, hoisted out of the
        // per-lane loop: one batch shares one arena.
        let arena_err: Option<VliwError> = if decoded.words.len() != prog.words.len() {
            Some(VliwError::Malformed(
                "pre-decoded arena does not match the program".to_string(),
            ))
        } else {
            decoded
                .validate_dispatch()
                .err()
                .map(|e| VliwError::Malformed(format!("pre-decoded arena rejected: {e}")))
        };
        let n = lane_specs.len();
        let mut lanes: Vec<Option<VliwMachine<'p, S>>> = Vec::with_capacity(n);
        let mut results: Vec<Option<LaneOutcome<S>>> = Vec::with_capacity(n);
        let mut live = Vec::with_capacity(n);
        // Admission memo: sweeps draw lanes from small grids, so the
        // distinct-pair count is tiny and a linear scan beats hashing.
        let mut admitted: Vec<((usize, Resources), Result<(), VliwError>)> = Vec::new();
        for (i, (cfg, sink)) in lane_specs.into_iter().enumerate() {
            if let Some(e) = &arena_err {
                lanes.push(None);
                results.push(Some(Err(e.clone())));
                continue;
            }
            // Memory-model validation is per-lane: the admission memo
            // below keys on (width, resources) only, and two lanes that
            // share those may still differ in (and mis-specify) caches.
            if let Err(e) = cfg.memory.validate() {
                lanes.push(None);
                results.push(Some(Err(VliwError::Malformed(format!(
                    "memory model: {e}"
                )))));
                continue;
            }
            let key = (cfg.issue_width, cfg.resources);
            let verdict = match admitted.iter().find(|(k, _)| *k == key) {
                Some((_, v)) => v.clone(),
                None => {
                    let v = VliwMachine::<S>::validate_for(prog, &cfg);
                    admitted.push((key, v.clone()));
                    v
                }
            };
            match verdict {
                Ok(()) => {
                    lanes.push(Some(VliwMachine::build(prog, decoded.clone(), cfg, sink)));
                    results.push(None);
                    live.push(i);
                }
                Err(e) => {
                    lanes.push(None);
                    results.push(Some(Err(e)));
                }
            }
        }
        BatchedMachine {
            lanes,
            results,
            live,
            stride: DEFAULT_STRIDE,
            batch_cycles: 0,
            lane_cycles: 0,
        }
    }

    /// Sets the lockstep granularity: each live lane advances up to
    /// `stride` architectural cycles per round, so inter-lane skew is
    /// bounded by `stride` instead of zero.  Configurations diverge in
    /// PC after their first differing stall anyway, so a strict
    /// one-cycle round buys no sharing — it only thrashes the host's
    /// caches and branch predictors by switching lane state every
    /// simulated cycle.  Per-lane results are identical for every
    /// stride (each lane runs the same `step_cycle` sequence); only
    /// host-side locality changes.  `stride` 0 is clamped to 1.
    pub fn with_stride(mut self, stride: u64) -> BatchedMachine<'p, S> {
        self.stride = stride.max(1);
        self
    }

    /// The number of lanes (live or retired) in the batch.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when the batch has no lanes at all.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// The number of lanes still stepping.
    pub fn live_lanes(&self) -> usize {
        self.live.len()
    }

    /// Takes one lockstep round: every live lane steps up to `stride`
    /// architectural cycles (fewer if it halts or fails mid-round, in
    /// which case it retires in place).  Returns the number of lanes
    /// still live afterwards.
    pub fn step_batch_cycle(&mut self) -> usize {
        if self.live.is_empty() {
            return 0;
        }
        self.batch_cycles += 1;
        let mut i = 0;
        'lanes: while i < self.live.len() {
            let lane = self.live[i];
            let m = self.lanes[lane]
                .as_mut()
                .expect("live lane has a machine column");
            for _ in 0..self.stride {
                self.lane_cycles += 1;
                match m.step_cycle() {
                    Ok(StepOutcome::Running) => {}
                    Ok(StepOutcome::Halted) => {
                        let m = self.lanes[lane].take().expect("halted lane column");
                        self.results[lane] = Some(m.finish());
                        self.live.swap_remove(i);
                        continue 'lanes;
                    }
                    Err(e) => {
                        self.lanes[lane] = None;
                        self.results[lane] = Some(Err(e));
                        self.live.swap_remove(i);
                        continue 'lanes;
                    }
                }
            }
            i += 1;
        }
        self.live.len()
    }

    /// Steps the batch until every lane has retired, returning the
    /// per-lane outcomes in construction order.
    pub fn run(mut self) -> BatchReport<S> {
        while self.step_batch_cycle() > 0 {}
        let lanes = self
            .results
            .into_iter()
            .map(|r| r.expect("every lane retired"))
            .collect();
        BatchReport {
            lanes,
            batch_cycles: self.batch_cycles,
            lane_cycles: self.lane_cycles,
        }
    }
}
