//! The predicated store buffer (Section 3.2).
//!
//! A FIFO in which both speculative and non-speculative stores wait before
//! the D-cache write.  Each entry carries the data, its predicate, and the
//! W (speculative), V (valid) and E (outstanding exception) flags; per-entry
//! hardware evaluates the predicate every cycle.  Only a valid,
//! non-speculative head entry may be written to the D-cache.

use crate::event::{Event, EventLog, StateLoc};
use psb_isa::{Ccr, Cond, Memory, Predicate};
use std::collections::VecDeque;

/// One store-buffer entry.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SbEntry {
    /// Target address.
    pub addr: i64,
    /// The value to store.
    pub value: i64,
    /// Commit condition of the store.
    pub pred: Predicate,
    /// W flag: the data is speculative.
    pub spec: bool,
    /// V flag: the data is valid (not squashed).
    pub valid: bool,
    /// E flag: the store is an outstanding speculative exception (its
    /// address translation faulted).
    pub exc: bool,
    /// Append sequence number within the run (1-based; `sb1` in Table 1).
    pub id: u64,
}

/// The predicated store buffer.
#[derive(Clone, PartialEq, Debug)]
pub struct PredicatedStoreBuffer {
    entries: VecDeque<SbEntry>,
    capacity: usize,
    appended: u64,
}

impl PredicatedStoreBuffer {
    /// Creates a buffer with room for `capacity` entries.
    pub fn new(capacity: usize) -> PredicatedStoreBuffer {
        PredicatedStoreBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            appended: 0,
        }
    }

    /// Current occupancy (squashed entries occupy space until they reach
    /// the head, as in hardware).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether appending `n` more entries would overflow.
    pub fn would_overflow(&self, n: usize) -> bool {
        self.entries.len() + n > self.capacity
    }

    /// Appends a store at the tail.
    ///
    /// `spec` is the W flag (predicate unspecified at issue); `exc` is the
    /// E flag (speculative address fault).
    ///
    /// # Panics
    ///
    /// Panics on overflow — the machine checks
    /// [`PredicatedStoreBuffer::would_overflow`] and stalls instead.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware port list
    pub fn append(
        &mut self,
        addr: i64,
        value: i64,
        pred: Predicate,
        spec: bool,
        exc: bool,
        cycle: u64,
        log: &mut EventLog,
    ) {
        assert!(
            !self.would_overflow(1),
            "store buffer overflow (machine must stall)"
        );
        self.appended += 1;
        let id = self.appended;
        self.entries.push_back(SbEntry {
            addr,
            value,
            pred,
            spec,
            valid: true,
            exc,
            id,
        });
        if spec {
            log.push(|| Event::SpecWrite {
                cycle,
                loc: StateLoc::Sb(id),
                pred,
                exc,
            });
        } else {
            log.push(|| Event::SeqStore {
                cycle,
                loc: StateLoc::Sb(id),
            });
        }
    }

    /// The per-cycle commit hardware: evaluates each speculative entry's
    /// predicate, committing (clear W) on true and squashing (clear V) on
    /// false.
    ///
    /// # Panics
    ///
    /// Panics if an entry with the E flag commits — detection must happen
    /// at CCR-update time via
    /// [`PredicatedStoreBuffer::has_exception_commit`].
    pub fn tick(&mut self, ccr: &Ccr, cycle: u64, log: &mut EventLog) {
        for e in &mut self.entries {
            if !e.valid || !e.spec {
                continue;
            }
            match e.pred.eval(ccr) {
                Cond::True => {
                    assert!(
                        !e.exc,
                        "outstanding speculative exception in store buffer committed \
                         outside the detection path"
                    );
                    e.spec = false;
                    e.pred = Predicate::always();
                    let id = e.id;
                    log.push(|| Event::Commit {
                        cycle,
                        loc: StateLoc::Sb(id),
                    });
                }
                Cond::False => {
                    e.valid = false;
                    let id = e.id;
                    log.push(|| Event::Squash {
                        cycle,
                        loc: StateLoc::Sb(id),
                    });
                }
                Cond::Unspecified => {}
            }
        }
    }

    /// Retires up to `budget` valid non-speculative head entries to the
    /// D-cache; squashed heads are discarded for free.  Returns the number
    /// of D-cache writes performed.
    ///
    /// # Panics
    ///
    /// Panics if a retiring store faults — non-speculative store addresses
    /// are checked at execute time, so a fault here is a simulator bug.
    pub fn retire(&mut self, memory: &mut Memory, budget: usize) -> usize {
        let mut written = 0;
        while let Some(head) = self.entries.front() {
            if !head.valid {
                self.entries.pop_front();
                continue;
            }
            if head.spec || written >= budget {
                break;
            }
            let head = self.entries.pop_front().expect("head exists");
            memory
                .write(head.addr, head.value)
                .expect("non-speculative store faulted at retire (checked at execute)");
            written += 1;
        }
        written
    }

    /// Store-to-load forwarding: the newest valid entry matching `addr`
    /// whose predicate is not disjoint with the reading load's predicate.
    pub fn forward(&self, addr: i64, reader_pred: &Predicate) -> Option<i64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.valid && !e.exc && e.addr == addr && !e.pred.disjoint(reader_pred))
            .map(|e| e.value)
    }

    /// Whether any valid E-flagged entry would commit under `candidate`.
    pub fn has_exception_commit(&self, candidate: &Ccr) -> bool {
        self.entries
            .iter()
            .any(|e| e.valid && e.spec && e.exc && e.pred.eval(candidate) == Cond::True)
    }

    /// Squashes all valid speculative entries (recovery entry, region
    /// exit).
    pub fn squash_spec(&mut self, cycle: u64, log: &mut EventLog) {
        for e in &mut self.entries {
            if e.valid && e.spec {
                e.valid = false;
                let id = e.id;
                log.push(|| Event::Squash {
                    cycle,
                    loc: StateLoc::Sb(id),
                });
            }
        }
    }

    /// Whether all remaining entries are invalid (nothing left to retire
    /// or resolve) — the halt-drain condition together with `is_empty`.
    pub fn drained(&self) -> bool {
        self.entries.iter().all(|e| !e.valid)
    }

    /// The entries, head first (for tests and debugging).
    pub fn entries(&self) -> impl Iterator<Item = &SbEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{CondReg, MemImage};

    fn pred(c: usize) -> Predicate {
        Predicate::always().and_pos(CondReg::new(c))
    }

    fn log() -> EventLog {
        EventLog::new(true)
    }

    fn mem() -> Memory {
        Memory::from_image(&MemImage::zeroed(32))
    }

    #[test]
    fn nonspec_store_retires_fifo() {
        let mut sb = PredicatedStoreBuffer::new(4);
        let mut m = mem();
        sb.append(4, 11, Predicate::always(), false, false, 1, &mut log());
        sb.append(5, 22, Predicate::always(), false, false, 1, &mut log());
        assert_eq!(sb.retire(&mut m, 1), 1);
        assert_eq!(m.read(4).unwrap(), 11);
        assert_eq!(m.read(5).unwrap(), 0);
        assert_eq!(sb.retire(&mut m, 1), 1);
        assert_eq!(m.read(5).unwrap(), 22);
        assert!(sb.is_empty());
    }

    #[test]
    fn speculative_head_blocks_retirement() {
        let mut sb = PredicatedStoreBuffer::new(4);
        let mut m = mem();
        sb.append(4, 11, pred(0), true, false, 1, &mut log());
        sb.append(5, 22, Predicate::always(), false, false, 1, &mut log());
        assert_eq!(sb.retire(&mut m, 2), 0); // spec head blocks

        let mut ccr = Ccr::new(2);
        ccr.set(CondReg::new(0), true);
        sb.tick(&ccr, 2, &mut log());
        assert_eq!(sb.retire(&mut m, 2), 2); // committed, both retire in order
        assert_eq!(m.read(4).unwrap(), 11);
        assert_eq!(m.read(5).unwrap(), 22);
    }

    #[test]
    fn squashed_entries_never_reach_memory() {
        let mut sb = PredicatedStoreBuffer::new(4);
        let mut m = mem();
        sb.append(4, 11, pred(0), true, false, 1, &mut log());
        let mut ccr = Ccr::new(2);
        ccr.set(CondReg::new(0), false);
        sb.tick(&ccr, 2, &mut log());
        assert_eq!(sb.retire(&mut m, 4), 0);
        assert!(sb.is_empty()); // squashed head discarded for free
        assert_eq!(m.read(4).unwrap(), 0);
    }

    #[test]
    fn forwarding_prefers_newest_compatible() {
        let mut sb = PredicatedStoreBuffer::new(4);
        sb.append(4, 1, Predicate::always(), false, false, 1, &mut log());
        sb.append(4, 2, pred(0), true, false, 2, &mut log());
        // Reader on c0's path: newest wins.
        assert_eq!(sb.forward(4, &pred(0)), Some(2));
        // Reader on the !c0 path: the speculative store is disjoint.
        let not0 = Predicate::always().and_neg(CondReg::new(0));
        assert_eq!(sb.forward(4, &not0), Some(1));
        // Other address: nothing.
        assert_eq!(sb.forward(5, &Predicate::always()), None);
    }

    #[test]
    fn forwarding_skips_squashed() {
        let mut sb = PredicatedStoreBuffer::new(4);
        sb.append(4, 9, pred(0), true, false, 1, &mut log());
        let mut ccr = Ccr::new(2);
        ccr.set(CondReg::new(0), false);
        sb.tick(&ccr, 2, &mut log());
        assert_eq!(sb.forward(4, &Predicate::always()), None);
    }

    #[test]
    fn exception_commit_detection() {
        let mut sb = PredicatedStoreBuffer::new(4);
        sb.append(-3, 0, pred(1), true, true, 1, &mut log());
        let mut candidate = Ccr::new(2);
        assert!(!sb.has_exception_commit(&candidate));
        candidate.set(CondReg::new(1), true);
        assert!(sb.has_exception_commit(&candidate));
    }

    #[test]
    fn capacity_accounting() {
        let mut sb = PredicatedStoreBuffer::new(2);
        assert!(!sb.would_overflow(2));
        assert!(sb.would_overflow(3));
        sb.append(4, 1, Predicate::always(), false, false, 1, &mut log());
        assert!(sb.would_overflow(2));
    }

    #[test]
    fn squash_spec_only_touches_speculative() {
        let mut sb = PredicatedStoreBuffer::new(4);
        sb.append(4, 1, Predicate::always(), false, false, 1, &mut log());
        sb.append(5, 2, pred(0), true, false, 1, &mut log());
        sb.squash_spec(3, &mut log());
        let flags: Vec<bool> = sb.entries().map(|e| e.valid).collect();
        assert_eq!(flags, vec![true, false]);
        assert!(!sb.drained());
        let mut m = mem();
        sb.retire(&mut m, 4);
        assert!(sb.is_empty() && sb.drained());
    }
}
