//! The predicated store buffer (Section 3.2).
//!
//! A FIFO in which both speculative and non-speculative stores wait before
//! the D-cache write.  Each entry carries the data, its predicate, and the
//! W (speculative), V (valid) and E (outstanding exception) flags; per-entry
//! hardware evaluates the predicate every cycle.  Only a valid,
//! non-speculative head entry may be written to the D-cache.
//!
//! Like the register file, the buffer supports two commit-pass strategies
//! ([`CommitScan`]): the naive full scan of the paper's per-entry hardware,
//! and condition-indexed wakeup lists that evaluate only entries subscribed
//! to a condition that changed since the previous pass.  Entry ids are
//! contiguous (appends take the next id, removals only pop the head), so a
//! subscribed id maps to its slot in O(1).

use crate::config::CommitScan;
use crate::event::{Event, StateLoc};
use crate::obs::TraceSink;
use psb_isa::{Ccr, Cond, Memory, Predicate, MAX_CONDS};
use std::collections::{BTreeSet, VecDeque};

/// One store-buffer entry.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SbEntry {
    /// Target address.
    pub addr: i64,
    /// The value to store.
    pub value: i64,
    /// Commit condition of the store.
    pub pred: Predicate,
    /// W flag: the data is speculative.
    pub spec: bool,
    /// V flag: the data is valid (not squashed).
    pub valid: bool,
    /// E flag: the store is an outstanding speculative exception (its
    /// address translation faulted).
    pub exc: bool,
    /// Append sequence number within the run (1-based; `sb1` in Table 1).
    pub id: u64,
}

/// The predicated store buffer.
#[derive(Clone, PartialEq, Debug)]
pub struct PredicatedStoreBuffer {
    entries: VecDeque<SbEntry>,
    capacity: usize,
    appended: u64,
    scan: CommitScan,
    /// CCR snapshot at the end of the previous commit pass (Indexed only).
    last_ccr: Option<Ccr>,
    /// Per-condition wakeup lists: ids of speculative entries whose
    /// predicate mentions that condition (Indexed only).
    subs: Vec<BTreeSet<u64>>,
    /// Entry ids to evaluate at the next pass: appended since the last
    /// pass, or woken by a condition change.
    pending: BTreeSet<u64>,
    /// Valid speculative entries with the E flag set.
    exc_count: usize,
}

impl PredicatedStoreBuffer {
    /// Creates a buffer with room for `capacity` entries, using the
    /// [`CommitScan::Naive`] reference strategy.
    pub fn new(capacity: usize) -> PredicatedStoreBuffer {
        PredicatedStoreBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            appended: 0,
            scan: CommitScan::Naive,
            last_ccr: None,
            subs: vec![BTreeSet::new(); MAX_CONDS],
            pending: BTreeSet::new(),
            exc_count: 0,
        }
    }

    /// Selects the commit-pass strategy.  Must be called before any append
    /// (the machine sets it at construction).
    #[must_use]
    pub fn with_commit_scan(mut self, scan: CommitScan) -> PredicatedStoreBuffer {
        assert!(self.entries.is_empty(), "cannot switch scan mid-flight");
        self.scan = scan;
        self
    }

    /// Current occupancy (squashed entries occupy space until they reach
    /// the head, as in hardware).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether appending `n` more entries would overflow.
    pub fn would_overflow(&self, n: usize) -> bool {
        self.entries.len() + n > self.capacity
    }

    /// The buffer slot currently holding `id`, exploiting id contiguity.
    #[inline]
    fn slot_of(&self, id: u64) -> Option<usize> {
        let front = self.entries.front()?.id;
        if id < front {
            return None;
        }
        let idx = (id - front) as usize;
        (idx < self.entries.len()).then_some(idx)
    }

    /// Appends a store at the tail.
    ///
    /// `spec` is the W flag (predicate unspecified at issue); `exc` is the
    /// E flag (speculative address fault).
    ///
    /// # Panics
    ///
    /// Panics on overflow — the machine checks
    /// [`PredicatedStoreBuffer::would_overflow`] and stalls instead.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware port list
    pub fn append(
        &mut self,
        addr: i64,
        value: i64,
        pred: Predicate,
        spec: bool,
        exc: bool,
        cycle: u64,
        sink: &mut impl TraceSink,
    ) {
        assert!(
            !self.would_overflow(1),
            "store buffer overflow (machine must stall)"
        );
        self.appended += 1;
        let id = self.appended;
        self.entries.push_back(SbEntry {
            addr,
            value,
            pred,
            spec,
            valid: true,
            exc,
            id,
        });
        if spec {
            self.exc_count += exc as usize;
            if self.scan == CommitScan::Indexed {
                let mut conds = pred.cond_mask();
                while conds != 0 {
                    let c = conds.trailing_zeros() as usize;
                    conds &= conds - 1;
                    self.subs[c].insert(id);
                }
                self.pending.insert(id);
            }
            sink.push(|| Event::SpecWrite {
                cycle,
                loc: StateLoc::Sb(id),
                pred,
                exc,
            });
        } else {
            sink.push(|| Event::SeqStore {
                cycle,
                loc: StateLoc::Sb(id),
            });
        }
    }

    /// The per-cycle commit hardware: evaluates speculative entries'
    /// predicates, committing (clear W) on true and squashing (clear V) on
    /// false.  Returns `(commits, squashes)`.
    ///
    /// Under [`CommitScan::Naive`] every speculative entry is evaluated;
    /// under [`CommitScan::Indexed`] only entries woken by a condition
    /// change (or appended since the previous pass) are — with identical
    /// outcomes and event order.
    ///
    /// # Panics
    ///
    /// Panics if an entry with the E flag commits — detection must happen
    /// at CCR-update time via
    /// [`PredicatedStoreBuffer::has_exception_commit`].
    pub fn tick(&mut self, ccr: &Ccr, cycle: u64, sink: &mut impl TraceSink) -> (u64, u64) {
        match self.scan {
            CommitScan::Naive => {
                let mut commits = 0;
                let mut squashes = 0;
                for e in &mut self.entries {
                    let (c, s) = resolve_entry(e, ccr, cycle, sink, &mut self.exc_count);
                    commits += c;
                    squashes += s;
                }
                (commits, squashes)
            }
            CommitScan::Indexed => self.tick_indexed(ccr, cycle, sink),
        }
    }

    fn tick_indexed(&mut self, ccr: &Ccr, cycle: u64, sink: &mut impl TraceSink) -> (u64, u64) {
        match &self.last_ccr {
            Some(prev) if prev.len() == ccr.len() => {
                let mut changed = prev.changed_mask(ccr);
                while changed != 0 {
                    let c = changed.trailing_zeros() as usize;
                    changed &= changed - 1;
                    if !self.subs[c].is_empty() {
                        self.pending.extend(self.subs[c].iter().copied());
                    }
                }
            }
            _ => {
                for e in &self.entries {
                    if e.valid && e.spec {
                        self.pending.insert(e.id);
                    }
                }
            }
        }
        self.last_ccr = Some(*ccr);

        let mut commits = 0;
        let mut squashes = 0;
        // Ascending id order is FIFO order, reproducing the naive scan's
        // event order.
        let pending = std::mem::take(&mut self.pending);
        for id in pending {
            let Some(idx) = self.slot_of(id) else {
                continue;
            };
            let e = &mut self.entries[idx];
            let before = e.pred;
            let (c, s) = resolve_entry(e, ccr, cycle, sink, &mut self.exc_count);
            commits += c;
            squashes += s;
            if c > 0 || s > 0 {
                let mut conds = before.cond_mask();
                while conds != 0 {
                    let cnd = conds.trailing_zeros() as usize;
                    conds &= conds - 1;
                    self.subs[cnd].remove(&id);
                }
            }
        }
        (commits, squashes)
    }

    /// Retires up to `budget` valid non-speculative head entries to the
    /// D-cache; squashed heads are discarded for free.  Returns the number
    /// of D-cache writes performed.
    ///
    /// # Panics
    ///
    /// Panics if a retiring store faults — non-speculative store addresses
    /// are checked at execute time, so a fault here is a simulator bug.
    pub fn retire(&mut self, memory: &mut Memory, budget: usize) -> usize {
        let mut written = 0;
        while let Some(head) = self.entries.front() {
            if !head.valid {
                self.entries.pop_front();
                continue;
            }
            if head.spec || written >= budget {
                break;
            }
            let head = self.entries.pop_front().expect("head exists");
            memory
                .write(head.addr, head.value)
                .expect("non-speculative store faulted at retire (checked at execute)");
            written += 1;
        }
        written
    }

    /// Store-to-load forwarding: the newest valid entry matching `addr`
    /// whose predicate is not disjoint with the reading load's predicate.
    /// E-flagged entries are never forwarded (they carry a fault, not data).
    pub fn forward(&self, addr: i64, reader_pred: &Predicate) -> Option<i64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.valid && !e.exc && e.addr == addr && !e.pred.disjoint(reader_pred))
            .map(|e| e.value)
    }

    /// Whether any valid E-flagged entry would commit under `candidate`.
    pub fn has_exception_commit(&self, candidate: &Ccr) -> bool {
        if self.exc_count == 0 {
            return false;
        }
        self.entries
            .iter()
            .any(|e| e.valid && e.spec && e.exc && e.pred.eval(candidate) == Cond::True)
    }

    /// Squashes all valid speculative entries (recovery entry, region
    /// exit).  Returns the number of squashed entries.
    pub fn squash_spec(&mut self, cycle: u64, sink: &mut impl TraceSink) -> u64 {
        let mut squashes = 0;
        for e in &mut self.entries {
            if e.valid && e.spec {
                e.valid = false;
                squashes += 1;
                let id = e.id;
                sink.push(|| Event::Squash {
                    cycle,
                    loc: StateLoc::Sb(id),
                });
            }
        }
        self.exc_count = 0;
        if self.scan == CommitScan::Indexed {
            for set in &mut self.subs {
                set.clear();
            }
            self.pending.clear();
        }
        squashes
    }

    /// Whether all remaining entries are invalid (nothing left to retire
    /// or resolve) — the halt-drain condition together with `is_empty`.
    pub fn drained(&self) -> bool {
        self.entries.iter().all(|e| !e.valid)
    }

    /// The entries, head first (for tests and debugging).
    pub fn entries(&self) -> impl Iterator<Item = &SbEntry> {
        self.entries.iter()
    }
}

/// Resolves one entry against `ccr`, exactly as the paper's per-entry
/// commit hardware.  Shared by both scan strategies so their behaviour
/// cannot drift.
fn resolve_entry(
    e: &mut SbEntry,
    ccr: &Ccr,
    cycle: u64,
    sink: &mut impl TraceSink,
    exc_count: &mut usize,
) -> (u64, u64) {
    if !e.valid || !e.spec {
        return (0, 0);
    }
    match e.pred.eval(ccr) {
        Cond::True => {
            assert!(
                !e.exc,
                "outstanding speculative exception in store buffer committed \
                 outside the detection path"
            );
            e.spec = false;
            e.pred = Predicate::always();
            let id = e.id;
            sink.push(|| Event::Commit {
                cycle,
                loc: StateLoc::Sb(id),
            });
            (1, 0)
        }
        Cond::False => {
            e.valid = false;
            *exc_count -= e.exc as usize;
            let id = e.id;
            sink.push(|| Event::Squash {
                cycle,
                loc: StateLoc::Sb(id),
            });
            (0, 1)
        }
        Cond::Unspecified => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventLog;
    use psb_isa::{CondReg, MemImage};

    fn pred(c: usize) -> Predicate {
        Predicate::always().and_pos(CondReg::new(c))
    }

    fn log() -> EventLog {
        EventLog::new(true)
    }

    fn mem() -> Memory {
        Memory::from_image(&MemImage::zeroed(32))
    }

    #[test]
    fn nonspec_store_retires_fifo() {
        let mut sb = PredicatedStoreBuffer::new(4);
        let mut m = mem();
        sb.append(4, 11, Predicate::always(), false, false, 1, &mut log());
        sb.append(5, 22, Predicate::always(), false, false, 1, &mut log());
        assert_eq!(sb.retire(&mut m, 1), 1);
        assert_eq!(m.read(4).unwrap(), 11);
        assert_eq!(m.read(5).unwrap(), 0);
        assert_eq!(sb.retire(&mut m, 1), 1);
        assert_eq!(m.read(5).unwrap(), 22);
        assert!(sb.is_empty());
    }

    #[test]
    fn speculative_head_blocks_retirement() {
        let mut sb = PredicatedStoreBuffer::new(4);
        let mut m = mem();
        sb.append(4, 11, pred(0), true, false, 1, &mut log());
        sb.append(5, 22, Predicate::always(), false, false, 1, &mut log());
        assert_eq!(sb.retire(&mut m, 2), 0); // spec head blocks

        let mut ccr = Ccr::new(2);
        ccr.set(CondReg::new(0), true);
        assert_eq!(sb.tick(&ccr, 2, &mut log()), (1, 0));
        assert_eq!(sb.retire(&mut m, 2), 2); // committed, both retire in order
        assert_eq!(m.read(4).unwrap(), 11);
        assert_eq!(m.read(5).unwrap(), 22);
    }

    #[test]
    fn squashed_entries_never_reach_memory() {
        let mut sb = PredicatedStoreBuffer::new(4);
        let mut m = mem();
        sb.append(4, 11, pred(0), true, false, 1, &mut log());
        let mut ccr = Ccr::new(2);
        ccr.set(CondReg::new(0), false);
        assert_eq!(sb.tick(&ccr, 2, &mut log()), (0, 1));
        assert_eq!(sb.retire(&mut m, 4), 0);
        assert!(sb.is_empty()); // squashed head discarded for free
        assert_eq!(m.read(4).unwrap(), 0);
    }

    #[test]
    fn forwarding_prefers_newest_compatible() {
        let mut sb = PredicatedStoreBuffer::new(4);
        sb.append(4, 1, Predicate::always(), false, false, 1, &mut log());
        sb.append(4, 2, pred(0), true, false, 2, &mut log());
        // Reader on c0's path: newest wins.
        assert_eq!(sb.forward(4, &pred(0)), Some(2));
        // Reader on the !c0 path: the speculative store is disjoint.
        let not0 = Predicate::always().and_neg(CondReg::new(0));
        assert_eq!(sb.forward(4, &not0), Some(1));
        // Other address: nothing.
        assert_eq!(sb.forward(5, &Predicate::always()), None);
    }

    #[test]
    fn forwarding_skips_squashed() {
        let mut sb = PredicatedStoreBuffer::new(4);
        sb.append(4, 9, pred(0), true, false, 1, &mut log());
        let mut ccr = Ccr::new(2);
        ccr.set(CondReg::new(0), false);
        sb.tick(&ccr, 2, &mut log());
        assert_eq!(sb.forward(4, &Predicate::always()), None);
    }

    #[test]
    fn forwarding_refuses_exception_entries() {
        let mut sb = PredicatedStoreBuffer::new(4);
        sb.append(4, 9, pred(0), true, true, 1, &mut log());
        assert_eq!(sb.forward(4, &pred(0)), None);
    }

    #[test]
    fn forwarding_skips_exception_to_older_entry() {
        // An E-flagged store has no data; a newer E entry must not shadow
        // an older valid one — the reader falls through to it.
        let mut sb = PredicatedStoreBuffer::new(4);
        sb.append(4, 1, pred(0), true, false, 1, &mut log());
        sb.append(4, 9, pred(0), true, true, 2, &mut log());
        assert_eq!(sb.forward(4, &pred(0)), Some(1));
    }

    #[test]
    fn exception_commit_detection() {
        let mut sb = PredicatedStoreBuffer::new(4);
        sb.append(-3, 0, pred(1), true, true, 1, &mut log());
        let mut candidate = Ccr::new(2);
        assert!(!sb.has_exception_commit(&candidate));
        candidate.set(CondReg::new(1), true);
        assert!(sb.has_exception_commit(&candidate));
    }

    #[test]
    fn capacity_accounting() {
        let mut sb = PredicatedStoreBuffer::new(2);
        assert!(!sb.would_overflow(2));
        assert!(sb.would_overflow(3));
        sb.append(4, 1, Predicate::always(), false, false, 1, &mut log());
        assert!(sb.would_overflow(2));
    }

    #[test]
    fn squash_spec_only_touches_speculative() {
        let mut sb = PredicatedStoreBuffer::new(4);
        sb.append(4, 1, Predicate::always(), false, false, 1, &mut log());
        sb.append(5, 2, pred(0), true, false, 1, &mut log());
        assert_eq!(sb.squash_spec(3, &mut log()), 1);
        let flags: Vec<bool> = sb.entries().map(|e| e.valid).collect();
        assert_eq!(flags, vec![true, false]);
        assert!(!sb.drained());
        let mut m = mem();
        sb.retire(&mut m, 4);
        assert!(sb.is_empty() && sb.drained());
    }

    #[test]
    fn indexed_scan_matches_naive() {
        let stimulus = |sb: &mut PredicatedStoreBuffer, l: &mut EventLog| {
            sb.append(4, 1, pred(0), true, false, 1, l);
            sb.append(5, 2, pred(1), true, false, 1, l);
            sb.append(6, 3, Predicate::always(), false, false, 1, l);
            let mut ccr = Ccr::new(4);
            sb.tick(&ccr, 2, l); // nothing specified
            sb.tick(&ccr, 3, l); // idle: indexed does no work
            ccr.set(CondReg::new(0), true);
            sb.tick(&ccr, 4, l); // sb1 commits
            ccr.set(CondReg::new(1), false);
            sb.tick(&ccr, 5, l); // sb2 squashes
            let mut m = mem();
            sb.retire(&mut m, 4);
        };
        let mut naive = PredicatedStoreBuffer::new(8);
        let mut ln = log();
        stimulus(&mut naive, &mut ln);
        let mut indexed = PredicatedStoreBuffer::new(8).with_commit_scan(CommitScan::Indexed);
        let mut li = log();
        stimulus(&mut indexed, &mut li);
        assert_eq!(ln.events(), li.events());
        assert!(naive.is_empty() && indexed.is_empty());
    }

    #[test]
    fn indexed_survives_retirement_id_shift() {
        // Retire non-speculative heads between passes so subscribed ids no
        // longer start at slot 0; the id→slot mapping must stay exact.
        let mut sb = PredicatedStoreBuffer::new(8).with_commit_scan(CommitScan::Indexed);
        let mut m = mem();
        sb.append(4, 1, Predicate::always(), false, false, 1, &mut log());
        sb.append(5, 2, Predicate::always(), false, false, 1, &mut log());
        sb.append(6, 3, pred(2), true, false, 1, &mut log());
        assert_eq!(sb.retire(&mut m, 2), 2);
        let mut ccr = Ccr::new(4);
        sb.tick(&ccr, 2, &mut log());
        ccr.set(CondReg::new(2), true);
        assert_eq!(sb.tick(&ccr, 3, &mut log()), (1, 0));
        assert_eq!(sb.retire(&mut m, 1), 1);
        assert_eq!(m.read(6).unwrap(), 3);
    }
}
