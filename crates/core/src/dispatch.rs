//! Generated dispatch tables for [`Engine::Tabled`](crate::Engine::Tabled).
//!
//! The table layout lives in `build.rs`: it emits the op-kind constants,
//! the `slot_handler_index` / `word_class_index` lowering functions, and
//! the `macro_rules!` table macros into `$OUT_DIR/dispatch_tables.rs`,
//! which this module includes. Decode (`decoded.rs`) lowers every slot to
//! a handler index and every word to a class index with these functions;
//! the machine (`machine.rs`) expands the table macros into associated
//! consts of fused handlers. Because both sides derive from the same
//! generated source, the lowering and the tables cannot drift — and
//! [`DecodedProgram::validate_dispatch`](crate::DecodedProgram::validate_dispatch)
//! re-derives the indices at machine construction so a corrupted arena is
//! rejected before the issue loop ever indexes a function-pointer table.

use psb_isa::{Op, SlotOp};

include!(concat!(env!("OUT_DIR"), "/dispatch_tables.rs"));

/// The dispatch kind of a slot operation (one of the generated `K_*`
/// constants).
pub(crate) fn op_kind(op: &SlotOp) -> u8 {
    match op {
        SlotOp::Op(Op::Nop) => K_NOP,
        SlotOp::Op(Op::Alu { .. }) => K_ALU,
        SlotOp::Op(Op::Copy { .. }) => K_COPY,
        SlotOp::Op(Op::SetCond { .. }) => K_SET_COND,
        SlotOp::Op(Op::Load { .. }) => K_LOAD,
        SlotOp::Op(Op::Store { .. }) => K_STORE,
        SlotOp::Jump { .. } => K_JUMP,
        SlotOp::CmpBr { .. } => K_CMP_BR,
        SlotOp::Halt => K_HALT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_indices_are_dense_and_in_range() {
        for kind in 0..NUM_OP_KINDS as u8 {
            for always in [false, true] {
                let idx = slot_handler_index(kind, always);
                assert_eq!(idx as usize, kind as usize * 2 + always as usize);
                assert!((idx as usize) < NUM_SLOT_HANDLERS);
            }
        }
    }

    #[test]
    fn word_classes_cover_all_axes() {
        let mut seen = [false; NUM_WORD_CLASSES];
        for cond in [false, true] {
            for store in [false, true] {
                for control in [false, true] {
                    seen[word_class_index(cond, store, control) as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
