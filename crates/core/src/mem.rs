//! The pluggable memory system.
//!
//! The paper's evaluation assumes a perfect memory system: every load
//! completes in a fixed `load_latency` and instruction fetch is free.
//! This module makes that assumption a *configuration* instead of a
//! hard-coded fact.  [`MemoryModel`] on
//! [`MachineConfig`](crate::MachineConfig) selects the timing model:
//!
//! - [`MemoryModel::Perfect`] — the paper's machine, bit-identical to
//!   the pre-refactor behavior by construction (it reads
//!   `cfg.load_latency` and touches no cache state).
//! - [`MemoryModel::FixedLatency`] — uniform load and fetch latencies
//!   without miss modeling (an uncached memory bus).
//! - [`MemoryModel::Cache`] — parameterized set-associative I$/D$
//!   models ([`CacheConfig`]) with LRU replacement and per-access
//!   hit/miss latencies.
//!
//! Every issue engine funnels loads through the same two
//! [`VliwMachine`](crate::VliwMachine) execution helpers and fetch
//! through the same cycle-driver gate, so one [`MemorySystem`] instance
//! per machine covers all engines uniformly — and per-lane instances in
//! [`BatchedMachine`](crate::BatchedMachine) fall out for free because
//! each lane owns a whole machine.
//!
//! Modeling simplifications (documented, deliberate): stores retire
//! through the store buffer and do not touch the D$ (no
//! write-allocate); store-buffer-forwarded loads and faulting/latched
//! accesses bypass the D$ at hit latency; fetch brings one word at a
//! time and a word stays fetched while the front end stalls on it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One parameterized set-associative cache level.
///
/// Addresses are word-granular (the guest ISA addresses words, and the
/// fetch path addresses VLIW word indices); `line_words` is the line
/// size in those units.  Replacement is LRU within a set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Number of sets (≥ 1; indexed by `line % sets`).
    pub sets: usize,
    /// Associativity (ways per set, ≥ 1).
    pub ways: usize,
    /// Line size in words (≥ 1).
    pub line_words: usize,
    /// Latency of a hit, in cycles (≥ 1; 1 = no stall on the fetch
    /// path, same-cycle semantics as the pre-refactor load pipeline).
    pub hit_latency: u64,
    /// Latency of a miss, in cycles (≥ `hit_latency`).
    pub miss_latency: u64,
}

impl CacheConfig {
    /// A small default level: 64 sets × 2 ways × 4-word lines,
    /// 1-cycle hits, 10-cycle misses.
    pub fn small() -> CacheConfig {
        CacheConfig {
            sets: 64,
            ways: 2,
            line_words: 4,
            hit_latency: 1,
            miss_latency: 10,
        }
    }

    /// Validates structural and latency parameters, with upper bounds
    /// so an untrusted config (e.g. a serve request) cannot demand an
    /// absurd allocation.
    pub fn validate(&self) -> Result<(), String> {
        if self.sets == 0 || self.sets > 65_536 {
            return Err(format!(
                "cache sets must be in 1..=65536, got {}",
                self.sets
            ));
        }
        if self.ways == 0 || self.ways > 64 {
            return Err(format!("cache ways must be in 1..=64, got {}", self.ways));
        }
        if self.line_words == 0 || self.line_words > 1024 {
            return Err(format!(
                "cache line_words must be in 1..=1024, got {}",
                self.line_words
            ));
        }
        if self.hit_latency == 0 {
            return Err("cache hit_latency must be >= 1".into());
        }
        if self.miss_latency < self.hit_latency {
            return Err(format!(
                "cache miss_latency ({}) must be >= hit_latency ({})",
                self.miss_latency, self.hit_latency
            ));
        }
        Ok(())
    }

    /// Parses the compact `SETSxWAYSxLINExHITxMISS` spec used by CLI
    /// flags and sweep grids, e.g. `64x2x4x1x10`.
    pub fn parse(s: &str) -> Result<CacheConfig, String> {
        let parts: Vec<&str> = s.split('x').collect();
        if parts.len() != 5 {
            return Err(format!(
                "cache spec must be SETSxWAYSxLINExHITxMISS (e.g. 64x2x4x1x10), got {s:?}"
            ));
        }
        let num = |part: &str, what: &str| -> Result<u64, String> {
            part.parse::<u64>()
                .map_err(|_| format!("bad cache {what} {part:?} in {s:?}"))
        };
        let cfg = CacheConfig {
            sets: num(parts[0], "sets")? as usize,
            ways: num(parts[1], "ways")? as usize,
            line_words: num(parts[2], "line_words")? as usize,
            hit_latency: num(parts[3], "hit_latency")?,
            miss_latency: num(parts[4], "miss_latency")?,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}x{}x{}",
            self.sets, self.ways, self.line_words, self.hit_latency, self.miss_latency
        )
    }
}

/// The machine's memory timing model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemoryModel {
    /// The paper's perfect memory: loads complete in
    /// `cfg.load_latency`, fetch is free.  Bit-identical to the
    /// pre-refactor machine by construction.
    #[default]
    Perfect,
    /// Uniform latencies without miss modeling: every real load takes
    /// `load` cycles and every word fetch takes `fetch` cycles
    /// (1 = no stall).
    FixedLatency {
        /// Load-to-use latency in cycles (≥ 1).
        load: u64,
        /// Per-word fetch latency in cycles (≥ 1; 1 = free).
        fetch: u64,
    },
    /// Set-associative instruction and data caches.  `None` on a side
    /// leaves that side perfect (free fetch / `cfg.load_latency`
    /// loads), so I$-only and D$-only studies are single-axis.
    Cache {
        /// Instruction cache over VLIW word indices.
        icache: Option<CacheConfig>,
        /// Data cache over guest word addresses.
        dcache: Option<CacheConfig>,
    },
}

impl MemoryModel {
    /// Validates the model's parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            MemoryModel::Perfect => Ok(()),
            MemoryModel::FixedLatency { load, fetch } => {
                if *load == 0 {
                    return Err("fixed-latency load must be >= 1".into());
                }
                if *fetch == 0 {
                    return Err("fixed-latency fetch must be >= 1".into());
                }
                Ok(())
            }
            MemoryModel::Cache { icache, dcache } => {
                if let Some(c) = icache {
                    c.validate().map_err(|e| format!("icache: {e}"))?;
                }
                if let Some(c) = dcache {
                    c.validate().map_err(|e| format!("dcache: {e}"))?;
                }
                Ok(())
            }
        }
    }

    /// Parses the CLI spelling: `perfect`, `fixed:<load>:<fetch>`, or
    /// `cache:<icache>:<dcache>` where each side is `off` or a
    /// [`CacheConfig`] spec (`64x2x4x1x10`).  `cache` alone means a
    /// small default D$ with the I$ off.
    pub fn parse(s: &str) -> Result<MemoryModel, String> {
        if s == "perfect" {
            return Ok(MemoryModel::Perfect);
        }
        if s == "cache" {
            return Ok(MemoryModel::Cache {
                icache: None,
                dcache: Some(CacheConfig::small()),
            });
        }
        if let Some(rest) = s.strip_prefix("fixed:") {
            let (load, fetch) = rest
                .split_once(':')
                .ok_or_else(|| format!("fixed memory spec must be fixed:LOAD:FETCH, got {s:?}"))?;
            let model = MemoryModel::FixedLatency {
                load: load
                    .parse()
                    .map_err(|_| format!("bad fixed load latency {load:?}"))?,
                fetch: fetch
                    .parse()
                    .map_err(|_| format!("bad fixed fetch latency {fetch:?}"))?,
            };
            model.validate()?;
            return Ok(model);
        }
        if let Some(rest) = s.strip_prefix("cache:") {
            let (i, d) = rest
                .split_once(':')
                .ok_or_else(|| format!("cache memory spec must be cache:I:D, got {s:?}"))?;
            let side = |spec: &str| -> Result<Option<CacheConfig>, String> {
                if spec == "off" {
                    Ok(None)
                } else {
                    CacheConfig::parse(spec).map(Some)
                }
            };
            return Ok(MemoryModel::Cache {
                icache: side(i)?,
                dcache: side(d)?,
            });
        }
        Err(format!(
            "unknown memory model {s:?} (want perfect | fixed:LOAD:FETCH | cache[:I:D])"
        ))
    }
}

impl fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryModel::Perfect => write!(f, "perfect"),
            MemoryModel::FixedLatency { load, fetch } => write!(f, "fixed:{load}:{fetch}"),
            MemoryModel::Cache { icache, dcache } => {
                write!(f, "cache:")?;
                match icache {
                    Some(c) => write!(f, "{c}")?,
                    None => write!(f, "off")?,
                }
                write!(f, ":")?;
                match dcache {
                    Some(c) => write!(f, "{c}"),
                    None => write!(f, "off"),
                }
            }
        }
    }
}

/// Why a cache miss missed, per the classic "three Cs".
///
/// Classification runs against two auxiliary structures fed the same
/// access stream: a seen-lines set (first touch ⇒ [`MissKind::Cold`])
/// and a fully-associative LRU shadow of equal total capacity (shadow
/// hit ⇒ the direct-mapped/set-associative geometry is at fault ⇒
/// [`MissKind::Conflict`]; shadow miss ⇒ the working set simply
/// doesn't fit ⇒ [`MissKind::Capacity`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MissKind {
    /// First-ever access to the line.
    Cold,
    /// A fully-associative cache of the same capacity would have hit.
    Conflict,
    /// The working set exceeds total capacity.
    Capacity,
}

/// Outcome of one cache probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheProbe {
    /// The line was resident.
    Hit,
    /// The line was not resident; it is now (LRU fill).
    Miss(MissKind),
}

/// One set-associative LRU cache with miss classification.
#[derive(Clone, Debug)]
pub struct CacheModel {
    cfg: CacheConfig,
    /// `tags[set * ways + way]` holds the resident line number.
    tags: Vec<Option<u64>>,
    /// Last-touch stamp per way, for LRU victim selection.
    lru: Vec<u64>,
    stamp: u64,
    /// Every line ever touched (cold-miss detection).
    seen: BTreeSet<u64>,
    /// Fully-associative LRU shadow of equal total capacity
    /// (conflict-vs-capacity classification); line → last-touch stamp.
    shadow: BTreeMap<u64, u64>,
    /// Total probes.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
    /// Misses classified [`MissKind::Cold`].
    pub cold_misses: u64,
    /// Misses classified [`MissKind::Conflict`].
    pub conflict_misses: u64,
    /// Misses classified [`MissKind::Capacity`].
    pub capacity_misses: u64,
}

impl CacheModel {
    /// Builds an empty cache.  The config must already be validated.
    pub fn new(cfg: CacheConfig) -> CacheModel {
        let slots = cfg.sets * cfg.ways;
        CacheModel {
            cfg,
            tags: vec![None; slots],
            lru: vec![0; slots],
            stamp: 0,
            seen: BTreeSet::new(),
            shadow: BTreeMap::new(),
            accesses: 0,
            misses: 0,
            cold_misses: 0,
            conflict_misses: 0,
            capacity_misses: 0,
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Maps a word address to its line number.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_words as u64
    }

    /// Probes (and on miss, fills) the given line, updating LRU state
    /// and counters.
    pub fn probe(&mut self, line: u64) -> CacheProbe {
        self.accesses += 1;
        self.stamp += 1;
        let set = (line % self.cfg.sets as u64) as usize;
        let base = set * self.cfg.ways;
        for way in 0..self.cfg.ways {
            if self.tags[base + way] == Some(line) {
                self.lru[base + way] = self.stamp;
                self.shadow_touch(line);
                return CacheProbe::Hit;
            }
        }
        self.misses += 1;
        let kind = if !self.seen.contains(&line) {
            self.cold_misses += 1;
            MissKind::Cold
        } else if self.shadow.contains_key(&line) {
            self.conflict_misses += 1;
            MissKind::Conflict
        } else {
            self.capacity_misses += 1;
            MissKind::Capacity
        };
        self.seen.insert(line);
        self.shadow_touch(line);
        // LRU fill: an empty way if one exists, else the least
        // recently touched.
        let victim = (0..self.cfg.ways)
            .min_by_key(|&w| match self.tags[base + w] {
                None => (0, 0),
                Some(_) => (1, self.lru[base + w]),
            })
            .expect("ways >= 1");
        self.tags[base + victim] = Some(line);
        self.lru[base + victim] = self.stamp;
        CacheProbe::Miss(kind)
    }

    /// Feeds the fully-associative shadow the same access stream the
    /// real cache sees, evicting its LRU line past capacity.
    fn shadow_touch(&mut self, line: u64) {
        self.shadow.insert(line, self.stamp);
        let capacity = self.cfg.sets * self.cfg.ways;
        if self.shadow.len() > capacity {
            let evict = self
                .shadow
                .iter()
                .min_by_key(|&(_, stamp)| *stamp)
                .map(|(&l, _)| l)
                .expect("shadow non-empty");
            self.shadow.remove(&evict);
        }
    }
}

/// Per-cache access/miss totals, folded into
/// [`RunStats`](crate::RunStats) when a run finishes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemCounters {
    /// I$ probes (one per word fetch started).
    pub icache_accesses: u64,
    /// I$ misses.
    pub icache_misses: u64,
    /// D$ probes (one per load that reached memory).
    pub dcache_accesses: u64,
    /// D$ misses.
    pub dcache_misses: u64,
}

#[derive(Clone, Debug)]
enum MemKind {
    Perfect,
    Fixed {
        load: u64,
        fetch: u64,
    },
    // Boxed: a CacheModel carries its LRU arrays, and the enum would
    // otherwise dwarf the Perfect/Fixed variants every machine clones.
    Cache {
        icache: Option<Box<CacheModel>>,
        dcache: Option<Box<CacheModel>>,
    },
}

/// One machine's (or one batched lane's) memory timing state: the
/// model, its cache contents, and the in-progress word fetch.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    base_load: u64,
    kind: MemKind,
    /// The word index the fetch state below describes.
    fetch_pc: usize,
    /// Cycle at which that word's fetch completes.
    fetch_ready_at: u64,
}

impl MemorySystem {
    /// Builds the memory system for one machine.  `base_load` is
    /// `cfg.load_latency`, which the perfect model (and any `None`
    /// cache side) reproduces exactly.
    pub fn new(model: &MemoryModel, base_load: u64) -> MemorySystem {
        let kind = match model {
            MemoryModel::Perfect => MemKind::Perfect,
            MemoryModel::FixedLatency { load, fetch } => MemKind::Fixed {
                load: *load,
                fetch: *fetch,
            },
            MemoryModel::Cache { icache, dcache } => MemKind::Cache {
                icache: icache.map(|c| Box::new(CacheModel::new(c))),
                dcache: dcache.map(|c| Box::new(CacheModel::new(c))),
            },
        };
        MemorySystem {
            base_load,
            kind,
            fetch_pc: usize::MAX,
            fetch_ready_at: 0,
        }
    }

    /// Returns true if the front end must stall this cycle waiting for
    /// the word at `pc` to arrive.  The first call for a given `pc`
    /// starts the fetch (probing the I$ once); subsequent calls while
    /// the machine stalls on the same word do not re-fetch.
    ///
    /// Under [`MemoryModel::Perfect`] this touches no state and never
    /// stalls — bit-identity with the pre-refactor front end.
    pub fn fetch_stalls(&mut self, pc: usize, cycle: u64) -> bool {
        let latency = match &mut self.kind {
            MemKind::Perfect => return false,
            MemKind::Cache { icache: None, .. } => return false,
            MemKind::Fixed { fetch, .. } => {
                if *fetch <= 1 {
                    return false;
                }
                *fetch
            }
            MemKind::Cache {
                icache: Some(cache),
                ..
            } => {
                if self.fetch_pc == pc {
                    return self.fetch_ready_at > cycle;
                }
                let line = cache.line_of(pc as u64);
                match cache.probe(line) {
                    CacheProbe::Hit => cache.cfg.hit_latency,
                    CacheProbe::Miss(_) => cache.cfg.miss_latency,
                }
            }
        };
        if self.fetch_pc == pc {
            return self.fetch_ready_at > cycle;
        }
        self.fetch_pc = pc;
        self.fetch_ready_at = cycle + latency - 1;
        self.fetch_ready_at > cycle
    }

    /// Latency of a load that reaches real memory, probing the D$
    /// under a cache model.  Returns `(latency, missed)`.
    pub fn load_latency(&mut self, addr: i64) -> (u64, bool) {
        match &mut self.kind {
            MemKind::Perfect => (self.base_load, false),
            MemKind::Fixed { load, .. } => (*load, false),
            MemKind::Cache { dcache: None, .. } => (self.base_load, false),
            MemKind::Cache {
                dcache: Some(cache),
                ..
            } => {
                let line = cache.line_of(addr.max(0) as u64);
                match cache.probe(line) {
                    CacheProbe::Hit => (cache.cfg.hit_latency, false),
                    CacheProbe::Miss(_) => (cache.cfg.miss_latency, true),
                }
            }
        }
    }

    /// Latency of a load that bypasses memory: store-buffer forwards
    /// and faulting/latched accesses.  These never probe the D$.
    pub fn bypass_latency(&self) -> u64 {
        match &self.kind {
            MemKind::Perfect => self.base_load,
            MemKind::Fixed { load, .. } => *load,
            MemKind::Cache { dcache: None, .. } => self.base_load,
            MemKind::Cache {
                dcache: Some(cache),
                ..
            } => cache.cfg.hit_latency,
        }
    }

    /// Snapshot of the access/miss totals (zero under non-cache
    /// models).
    pub fn counters(&self) -> MemCounters {
        match &self.kind {
            MemKind::Perfect | MemKind::Fixed { .. } => MemCounters::default(),
            MemKind::Cache { icache, dcache } => MemCounters {
                icache_accesses: icache.as_ref().map_or(0, |c| c.accesses),
                icache_misses: icache.as_ref().map_or(0, |c| c.misses),
                dcache_accesses: dcache.as_ref().map_or(0, |c| c.accesses),
                dcache_misses: dcache.as_ref().map_or(0, |c| c.misses),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_spec_round_trips() {
        let cfg = CacheConfig::parse("64x2x4x1x10").unwrap();
        assert_eq!(cfg, CacheConfig::small());
        assert_eq!(cfg.to_string(), "64x2x4x1x10");
        assert!(CacheConfig::parse("64x2x4x1").is_err());
        assert!(CacheConfig::parse("0x2x4x1x10").is_err());
        assert!(CacheConfig::parse("64x2x4x2x1").is_err(), "miss < hit");
    }

    #[test]
    fn memory_model_specs_round_trip() {
        for s in [
            "perfect",
            "fixed:4:2",
            "cache:off:64x2x4x1x10",
            "cache:8x1x2x1x5:off",
        ] {
            let m = MemoryModel::parse(s).unwrap();
            assert_eq!(m.to_string(), s, "round trip of {s:?}");
        }
        assert_eq!(
            MemoryModel::parse("cache").unwrap(),
            MemoryModel::Cache {
                icache: None,
                dcache: Some(CacheConfig::small())
            }
        );
        assert!(MemoryModel::parse("fixed:0:1").is_err());
        assert!(MemoryModel::parse("dram").is_err());
    }

    /// Hand-computed trace on a direct-mapped 2-set, 1-way, 1-word-line
    /// cache (capacity 2 lines) exercising all three miss classes.
    ///
    /// Accesses: 0, 2, 0, 1, 3, 1, 2 (even lines → set 0, odd → set 1;
    /// the shadow is a 2-line fully-associative LRU)
    /// - 0: cold miss              set0=0,       shadow {0}
    /// - 2: cold miss, evicts 0    set0=2,       shadow {0,2}
    /// - 0: shadow holds 0 → CONFLICT  set0=0,   shadow {2,0}→{2,0}
    /// - 1: cold miss              set1=1,       shadow {0,1} (2 out)
    /// - 3: cold miss, evicts 1    set1=3,       shadow {1,3} (0 out)
    /// - 1: shadow holds 1 → CONFLICT  set1=1,   shadow {3,1}
    /// - 2: seen, shadow {3,1} → CAPACITY
    #[test]
    fn miss_classification_matches_hand_computed_trace() {
        let mut c = CacheModel::new(CacheConfig {
            sets: 2,
            ways: 1,
            line_words: 1,
            hit_latency: 1,
            miss_latency: 10,
        });
        let outcomes: Vec<CacheProbe> = [0u64, 2, 0, 1, 3, 1, 2]
            .iter()
            .map(|&a| c.probe(a))
            .collect();
        assert_eq!(
            outcomes,
            vec![
                CacheProbe::Miss(MissKind::Cold),
                CacheProbe::Miss(MissKind::Cold),
                CacheProbe::Miss(MissKind::Conflict),
                CacheProbe::Miss(MissKind::Cold),
                CacheProbe::Miss(MissKind::Cold),
                CacheProbe::Miss(MissKind::Conflict),
                CacheProbe::Miss(MissKind::Capacity),
            ]
        );
        assert_eq!(c.accesses, 7);
        assert_eq!(c.misses, 7);
        assert_eq!(c.cold_misses, 4);
        assert_eq!(c.conflict_misses, 2);
        assert_eq!(c.capacity_misses, 1);
    }

    /// Same trace on a fully-associative cache of the same capacity:
    /// the conflicts become hits, the capacity miss stays a miss.
    #[test]
    fn fully_associative_turns_conflicts_into_hits() {
        let mut c = CacheModel::new(CacheConfig {
            sets: 1,
            ways: 2,
            line_words: 1,
            hit_latency: 1,
            miss_latency: 10,
        });
        let outcomes: Vec<CacheProbe> = [0u64, 2, 0, 1, 3, 1, 2]
            .iter()
            .map(|&a| c.probe(a))
            .collect();
        assert_eq!(
            outcomes,
            vec![
                CacheProbe::Miss(MissKind::Cold),
                CacheProbe::Miss(MissKind::Cold),
                CacheProbe::Hit,
                CacheProbe::Miss(MissKind::Cold),
                CacheProbe::Miss(MissKind::Cold),
                CacheProbe::Hit,
                CacheProbe::Miss(MissKind::Capacity),
            ]
        );
        assert_eq!(c.conflict_misses, 0);
        assert_eq!(c.capacity_misses, 1);
    }

    #[test]
    fn lru_hits_within_a_set() {
        // 1 set × 2 ways: 0, 1 fill; touching 0 makes 1 the LRU
        // victim for 2; then 1 misses but 0 still hits.
        let mut c = CacheModel::new(CacheConfig {
            sets: 1,
            ways: 2,
            line_words: 1,
            hit_latency: 1,
            miss_latency: 10,
        });
        assert_eq!(c.probe(0), CacheProbe::Miss(MissKind::Cold));
        assert_eq!(c.probe(1), CacheProbe::Miss(MissKind::Cold));
        assert_eq!(c.probe(0), CacheProbe::Hit);
        assert_eq!(c.probe(2), CacheProbe::Miss(MissKind::Cold));
        assert_eq!(c.probe(0), CacheProbe::Hit, "0 was MRU, must survive");
        // The shadow has the same geometry here (fully associative, 2
        // lines), so it evicted 1 too — a capacity miss, not conflict.
        assert_eq!(c.probe(1), CacheProbe::Miss(MissKind::Capacity));
    }

    #[test]
    fn lines_group_words() {
        let mut c = CacheModel::new(CacheConfig {
            sets: 4,
            ways: 1,
            line_words: 4,
            hit_latency: 1,
            miss_latency: 10,
        });
        assert_eq!(c.probe(c.line_of(0)), CacheProbe::Miss(MissKind::Cold));
        assert_eq!(c.probe(c.line_of(3)), CacheProbe::Hit, "same 4-word line");
        assert_eq!(c.probe(c.line_of(4)), CacheProbe::Miss(MissKind::Cold));
    }

    #[test]
    fn fetch_state_fetches_a_word_once() {
        let model = MemoryModel::Cache {
            icache: Some(CacheConfig {
                sets: 2,
                ways: 1,
                line_words: 1,
                hit_latency: 1,
                miss_latency: 3,
            }),
            dcache: None,
        };
        let mut mem = MemorySystem::new(&model, 2);
        // Cold miss at pc 0: 3-cycle fetch started at cycle 1 is ready
        // at cycle 3 — two stall cycles, no re-probe while waiting.
        assert!(mem.fetch_stalls(0, 1));
        assert!(mem.fetch_stalls(0, 2));
        assert!(!mem.fetch_stalls(0, 3));
        // Staying on the same word (operand stall, say) stays free.
        assert!(!mem.fetch_stalls(0, 4));
        // Next word: new cold miss.
        assert!(mem.fetch_stalls(1, 5));
        assert!(!mem.fetch_stalls(1, 7));
        // Looping back to word 0: I$ hit, no stall.
        assert!(!mem.fetch_stalls(0, 8));
        let c = mem.counters();
        assert_eq!(c.icache_accesses, 3);
        assert_eq!(c.icache_misses, 2);
        assert_eq!(c.dcache_accesses, 0);
    }

    #[test]
    fn perfect_and_fixed_latencies() {
        let mut perfect = MemorySystem::new(&MemoryModel::Perfect, 2);
        assert_eq!(perfect.load_latency(7), (2, false));
        assert_eq!(perfect.bypass_latency(), 2);
        assert!(!perfect.fetch_stalls(0, 1));

        let mut fixed = MemorySystem::new(&MemoryModel::FixedLatency { load: 5, fetch: 2 }, 2);
        assert_eq!(fixed.load_latency(7), (5, false));
        assert_eq!(fixed.bypass_latency(), 5);
        assert!(fixed.fetch_stalls(0, 1), "2-cycle fetch stalls one cycle");
        assert!(!fixed.fetch_stalls(0, 2));

        let mut dcache = MemorySystem::new(
            &MemoryModel::Cache {
                icache: None,
                dcache: Some(CacheConfig {
                    sets: 2,
                    ways: 1,
                    line_words: 1,
                    hit_latency: 2,
                    miss_latency: 9,
                }),
            },
            3,
        );
        assert_eq!(dcache.load_latency(7), (9, true), "cold miss");
        assert_eq!(dcache.load_latency(7), (2, false), "now resident");
        assert_eq!(dcache.bypass_latency(), 2, "SB forward at hit latency");
        assert!(!dcache.fetch_stalls(0, 1), "icache off");
        let c = dcache.counters();
        assert_eq!((c.dcache_accesses, c.dcache_misses), (2, 1));
    }
}
