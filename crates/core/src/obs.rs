//! Observability: trace sinks, hardware-style performance counters, and
//! hot-spot attribution.
//!
//! The machine emits two streams while it runs:
//!
//! * **events** — the architecturally visible actions already defined by
//!   [`Event`] (speculative writes, commits, squashes, recoveries, …);
//! * **cycle samples** — one [`CycleSample`] per simulated cycle carrying
//!   the PC, the active region, the buffered-state occupancies, and
//!   whether (and why) the cycle stalled.
//!
//! Both streams flow into a [`TraceSink`].  The machine is generic over
//! the sink type, so the disabled path ([`NullSink`]) monomorphizes to
//! nothing: `event_enabled`/`sample_enabled` are constant `false`, the
//! event-construction closures are never called, and the occupancy reads
//! that feed samples are skipped entirely.  [`EventLog`] is the
//! record-everything sink (unchanged behaviour); [`CountersSink`] models a
//! bank of hardware performance counters and builds an [`ObsReport`]
//! without ever storing the event stream.

use crate::event::{Event, EventLog, StateLoc};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

/// Why a cycle failed to issue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StallKind {
    /// An operand of a live slot is still in flight (load latency).
    Operand,
    /// The store buffer has no room for this word's stores.
    SbFull,
    /// The front end is busy: fault handler, rollback refill, or a taken
    /// jump penalty.
    Busy,
    /// Instruction fetch has not delivered the word at PC yet (I$ miss
    /// or a multi-cycle fixed fetch latency).  Never occurs under
    /// perfect memory.
    IFetch,
    /// An operand stall whose blocking in-flight load missed the D$ —
    /// the memory system's share of what would otherwise be
    /// [`StallKind::Operand`].  Never occurs under a perfect D$.
    LoadMiss,
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallKind::Operand => write!(f, "operand"),
            StallKind::SbFull => write!(f, "sb-full"),
            StallKind::Busy => write!(f, "busy"),
            StallKind::IFetch => write!(f, "ifetch"),
            StallKind::LoadMiss => write!(f, "load-miss"),
        }
    }
}

/// One per-cycle observation, taken at the end of the cycle after all of
/// its architectural effects have landed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CycleSample {
    /// The cycle number.
    pub cycle: u64,
    /// The word the machine issued this cycle — or was waiting to issue,
    /// if the cycle stalled.
    pub pc: usize,
    /// The active region's entry word (the RPC).
    pub region: usize,
    /// Buffered speculative values across all shadow registers.
    pub shadow_occupancy: usize,
    /// Store-buffer entries occupied (squashed entries included — they
    /// hold their slot until they reach the head, as in hardware).
    pub sb_occupancy: usize,
    /// CCR entries still unspecified.
    pub unspec_conds: usize,
    /// Why the cycle stalled, if it did.
    pub stall: Option<StallKind>,
}

/// A consumer of the machine's observability streams.
///
/// The machine is generic over its sink, so every method call
/// monomorphizes; a sink that reports `false` from the two `*_enabled`
/// methods costs nothing (the compiler folds the guards away).
pub trait TraceSink {
    /// Whether events should be constructed and recorded.
    fn event_enabled(&self) -> bool {
        true
    }

    /// Whether per-cycle samples should be taken.  When this is `false`
    /// the machine also skips the occupancy reads that would feed them.
    fn sample_enabled(&self) -> bool {
        true
    }

    /// Consumes one event.  Only called when [`TraceSink::event_enabled`]
    /// is true (via [`TraceSink::push`]).
    fn record(&mut self, ev: Event);

    /// Consumes one end-of-cycle sample.  Only called when
    /// [`TraceSink::sample_enabled`] is true.
    fn sample(&mut self, s: &CycleSample);

    /// Records the event produced by `f` if event recording is enabled —
    /// the lazy-construction entry point every emitter uses.
    #[inline]
    fn push(&mut self, f: impl FnOnce() -> Event)
    where
        Self: Sized,
    {
        if self.event_enabled() {
            self.record(f());
        }
    }

    /// The recorded events, if this sink stores them (the [`EventLog`]
    /// does; counters and the null sink return nothing).
    fn take_events(&mut self) -> Vec<Event> {
        Vec::new()
    }
}

/// The zero-cost disabled sink: both streams off, every call a no-op.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn event_enabled(&self) -> bool {
        false
    }

    #[inline]
    fn sample_enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _ev: Event) {}

    #[inline]
    fn sample(&mut self, _s: &CycleSample) {}
}

impl TraceSink for EventLog {
    #[inline]
    fn event_enabled(&self) -> bool {
        self.is_enabled()
    }

    /// The event log keeps no per-cycle state; samples are skipped so the
    /// default `record_events = false` run stays as fast as before.
    #[inline]
    fn sample_enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, ev: Event) {
        self.push_event(ev);
    }

    #[inline]
    fn sample(&mut self, _s: &CycleSample) {}

    fn take_events(&mut self) -> Vec<Event> {
        self.drain_events()
    }
}

/// A power-of-two-bucketed histogram of `u64` values, as a hardware
/// counter bank would implement it.
///
/// Value `v` lands in bucket `ceil(log2(v + 1))`: bucket 0 holds the value
/// 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds 4–7, and so on.
/// Alongside the buckets the histogram tracks count, sum, min and max, so
/// means are exact even though the buckets are coarse.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index for `v`.
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The inclusive value range `[lo, hi]` covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            (1 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let b = Histogram::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket counts, lowest bucket first (no trailing zeros).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

/// Per-cycle occupancy statistics for one buffered resource: running mean
/// plus the high-water mark.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OccupancyStats {
    samples: u64,
    sum: u64,
    high_water: usize,
}

impl OccupancyStats {
    /// Records one per-cycle occupancy observation.
    pub fn record(&mut self, occupancy: usize) {
        self.samples += 1;
        self.sum += occupancy as u64;
        self.high_water = self.high_water.max(occupancy);
    }

    /// Number of samples taken (the sampled cycles).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The highest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Mean occupancy across all samples (0.0 when no samples).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }
}

/// Hot-spot profile of one static word: where issue cycles were lost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WordProfile {
    /// Stall cycles waiting on an in-flight operand at this word.
    pub stall_operand: u64,
    /// Stall cycles waiting for store-buffer space at this word.
    pub stall_sb_full: u64,
    /// Stall cycles with the front end busy while this word was next.
    pub stall_busy: u64,
    /// Stall cycles waiting for instruction fetch at this word.
    pub stall_ifetch: u64,
    /// Operand-stall cycles at this word blocked on a D$-missing load.
    pub stall_load_miss: u64,
    /// Recoveries whose exception commit point (EPC) was this word.
    pub recoveries: u64,
}

impl WordProfile {
    /// Total stall cycles attributed to this word.
    pub fn stall_total(&self) -> u64 {
        self.stall_operand
            + self.stall_sb_full
            + self.stall_busy
            + self.stall_ifetch
            + self.stall_load_miss
    }
}

/// Hot-spot profile of one region (keyed by its entry word, the RPC).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegionProfile {
    /// Times control entered this region.
    pub entries: u64,
    /// Buffered speculative entries committed while this region was
    /// active.
    pub commits: u64,
    /// Buffered speculative entries squashed while this region was
    /// active (region-exit and recovery-entry squashes included).
    pub squashes: u64,
    /// Recoveries that rolled back to this region.
    pub recoveries: u64,
    /// Stall cycles spent while this region was active.
    pub stall_cycles: u64,
}

/// The counters sink's final output: everything a `repro profile` report
/// needs, with no per-event storage behind it.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ObsReport {
    /// Cycles sampled (the run length as the sink saw it).
    pub cycles: u64,
    /// Occupancy of the shadow (speculative) register entries.
    pub shadow_occupancy: OccupancyStats,
    /// Occupancy of the store buffer.
    pub sb_occupancy: OccupancyStats,
    /// Unspecified CCR conditions per cycle.
    pub unspec_conds: OccupancyStats,
    /// Speculation lifetime: cycles from a `SpecWrite` to the `Commit` or
    /// `Squash` that resolved it.
    pub lifetime: Histogram,
    /// Recovery duration: cycles from `RecoveryStart` to `RecoveryEnd`.
    pub recovery: Histogram,
    /// Lengths of maximal runs of consecutive stall cycles.
    pub stall_runs: Histogram,
    /// Per-static-word stall and recovery attribution, keyed by word
    /// address.
    pub words: BTreeMap<usize, WordProfile>,
    /// Per-region speculation attribution, keyed by region entry word.
    pub regions: BTreeMap<usize, RegionProfile>,
    /// Total commits observed.
    pub commits: u64,
    /// Total squashes observed.
    pub squashes: u64,
    /// Total recoveries observed.
    pub recoveries: u64,
    /// Non-fatal faults handled.
    pub faults_handled: u64,
    /// Speculative exceptions latched at issue.
    pub exc_latched: u64,
}

impl ObsReport {
    /// The `n` words losing the most issue cycles to stalls, hottest
    /// first; ties break toward the lower address.
    pub fn hottest_words(&self, n: usize) -> Vec<(usize, WordProfile)> {
        let mut v: Vec<(usize, WordProfile)> = self
            .words
            .iter()
            .map(|(&w, &p)| (w, p))
            .filter(|(_, p)| p.stall_total() > 0 || p.recoveries > 0)
            .collect();
        v.sort_by(|a, b| {
            b.1.stall_total()
                .cmp(&a.1.stall_total())
                .then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }
}

/// A sink that models a bank of hardware performance counters.
///
/// Events update lifetime/recovery histograms and per-region attribution;
/// cycle samples update the occupancy statistics, the stall-run histogram
/// and per-word stall attribution.  Nothing is stored per event, so the
/// memory footprint is bounded by the static program size regardless of
/// how long the run is.
///
/// **Lifetime accounting rule.**  The event stream identifies buffered
/// state only by location (a register or a store-buffer id), not by slot,
/// so the sink keeps a FIFO of `SpecWrite` birth cycles per location: a
/// `Commit` resolves the oldest pending birth, a `Squash` resolves *all*
/// pending births at its location (bulk squashes — region exit, recovery
/// entry, halt — emit a single event per location however many values
/// were buffered).  The event-log oracle test reconstructs histograms
/// from the recorded log under the same rule.
#[derive(Clone, PartialEq, Debug)]
pub struct CountersSink {
    report: ObsReport,
    /// `SpecWrite` cycles not yet resolved, FIFO per location.
    births: BTreeMap<BirthKey, VecDeque<u64>>,
    /// An open recovery's start cycle.
    recovery_start: Option<u64>,
    /// Length of the current run of consecutive stall cycles.
    stall_run: u64,
    /// The region currently charged for speculation events.
    cur_region: usize,
}

/// Map key for a [`StateLoc`] (registers before store-buffer entries).
type BirthKey = (u8, u64);

fn birth_key(loc: StateLoc) -> BirthKey {
    match loc {
        StateLoc::Reg(r) => (0, r.index() as u64),
        StateLoc::Sb(id) => (1, id),
    }
}

impl Default for CountersSink {
    fn default() -> CountersSink {
        CountersSink::new()
    }
}

impl CountersSink {
    /// A fresh counter bank.  The initial region is word 0 (the machine
    /// starts there without an explicit `RegionEnter`).
    pub fn new() -> CountersSink {
        let mut report = ObsReport::default();
        report.regions.entry(0).or_default().entries = 1;
        CountersSink {
            report,
            births: BTreeMap::new(),
            recovery_start: None,
            stall_run: 0,
            cur_region: 0,
        }
    }

    /// Finalizes and returns the report (flushes an open stall run).
    pub fn into_report(mut self) -> ObsReport {
        if self.stall_run > 0 {
            self.report.stall_runs.record(self.stall_run);
        }
        self.report
    }

    fn region(&mut self) -> &mut RegionProfile {
        self.report.regions.entry(self.cur_region).or_default()
    }
}

impl TraceSink for CountersSink {
    fn record(&mut self, ev: Event) {
        match ev {
            Event::SpecWrite { cycle, loc, .. } => {
                self.births
                    .entry(birth_key(loc))
                    .or_default()
                    .push_back(cycle);
            }
            Event::Commit { cycle, loc } => {
                if let Some(birth) = self
                    .births
                    .get_mut(&birth_key(loc))
                    .and_then(VecDeque::pop_front)
                {
                    self.report.lifetime.record(cycle - birth);
                }
                self.report.commits += 1;
                self.region().commits += 1;
            }
            Event::Squash { cycle, loc } => {
                if let Some(q) = self.births.get_mut(&birth_key(loc)) {
                    for birth in q.drain(..) {
                        self.report.lifetime.record(cycle - birth);
                    }
                }
                self.report.squashes += 1;
                self.region().squashes += 1;
            }
            Event::RegionEnter { addr, .. } => {
                self.cur_region = addr;
                self.region().entries += 1;
            }
            Event::RecoveryStart { cycle, epc, .. } => {
                self.recovery_start = Some(cycle);
                self.report.recoveries += 1;
                self.region().recoveries += 1;
                self.report.words.entry(epc).or_default().recoveries += 1;
            }
            Event::RecoveryEnd { cycle } => {
                if let Some(start) = self.recovery_start.take() {
                    self.report.recovery.record(cycle - start);
                }
            }
            Event::FaultHandled { .. } => self.report.faults_handled += 1,
            Event::ExcLatched { .. } => self.report.exc_latched += 1,
            Event::SeqWrite { .. } | Event::SeqStore { .. } | Event::CondSet { .. } => {}
        }
    }

    fn sample(&mut self, s: &CycleSample) {
        self.report.cycles = self.report.cycles.max(s.cycle);
        self.report.shadow_occupancy.record(s.shadow_occupancy);
        self.report.sb_occupancy.record(s.sb_occupancy);
        self.report.unspec_conds.record(s.unspec_conds);
        match s.stall {
            Some(kind) => {
                self.stall_run += 1;
                let w = self.report.words.entry(s.pc).or_default();
                match kind {
                    StallKind::Operand => w.stall_operand += 1,
                    StallKind::SbFull => w.stall_sb_full += 1,
                    StallKind::Busy => w.stall_busy += 1,
                    StallKind::IFetch => w.stall_ifetch += 1,
                    StallKind::LoadMiss => w.stall_load_miss += 1,
                }
                self.report
                    .regions
                    .entry(s.region)
                    .or_default()
                    .stall_cycles += 1;
            }
            None => {
                if self.stall_run > 0 {
                    self.report.stall_runs.record(self.stall_run);
                    self.stall_run = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{CondReg, Predicate, Reg};

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(1), (1, 1));
        assert_eq!(Histogram::bucket_range(3), (4, 7));
        let mut h = Histogram::new();
        for v in [0, 1, 3, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.buckets(), &[1, 1, 2, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn occupancy_tracks_mean_and_high_water() {
        let mut o = OccupancyStats::default();
        assert_eq!(o.mean(), 0.0);
        for v in [0, 2, 4] {
            o.record(v);
        }
        assert_eq!(o.samples(), 3);
        assert_eq!(o.high_water(), 4);
        assert!((o.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn null_sink_reports_disabled() {
        let s = NullSink;
        assert!(!s.event_enabled());
        assert!(!s.sample_enabled());
    }

    #[test]
    fn counters_lifetime_fifo_and_bulk_squash() {
        let mut c = CountersSink::new();
        let loc = StateLoc::Reg(Reg::new(3));
        let pred = Predicate::always().and_pos(CondReg::new(0));
        // Two births; a commit resolves the oldest, a squash drains the rest.
        c.push(|| Event::SpecWrite {
            cycle: 10,
            loc,
            pred,
            exc: false,
        });
        c.push(|| Event::SpecWrite {
            cycle: 12,
            loc,
            pred,
            exc: false,
        });
        c.push(|| Event::Commit { cycle: 15, loc });
        c.push(|| Event::Squash { cycle: 20, loc });
        let r = c.into_report();
        assert_eq!(r.lifetime.count(), 2);
        assert_eq!(r.lifetime.sum(), 5 + 8);
        assert_eq!(r.commits, 1);
        assert_eq!(r.squashes, 1);
    }

    #[test]
    fn counters_recovery_duration_and_attribution() {
        let mut c = CountersSink::new();
        c.push(|| Event::RegionEnter { cycle: 1, addr: 4 });
        c.push(|| Event::RecoveryStart {
            cycle: 8,
            epc: 6,
            rpc: 4,
        });
        c.push(|| Event::RecoveryEnd { cycle: 13 });
        let r = c.into_report();
        assert_eq!(r.recovery.count(), 1);
        assert_eq!(r.recovery.sum(), 5);
        assert_eq!(r.regions[&4].recoveries, 1);
        assert_eq!(r.words[&6].recoveries, 1);
    }

    #[test]
    fn counters_stall_runs_split_on_issue() {
        let mut c = CountersSink::new();
        let mk = |cycle, stall| CycleSample {
            cycle,
            pc: 2,
            region: 0,
            shadow_occupancy: 1,
            sb_occupancy: 0,
            unspec_conds: 2,
            stall,
        };
        c.sample(&mk(1, Some(StallKind::Operand)));
        c.sample(&mk(2, Some(StallKind::Operand)));
        c.sample(&mk(3, None));
        c.sample(&mk(4, Some(StallKind::Busy)));
        let r = c.into_report();
        // Runs: [1,2] closed at cycle 3, and the open run of length 1
        // flushed by into_report.
        assert_eq!(r.stall_runs.count(), 2);
        assert_eq!(r.stall_runs.sum(), 3);
        assert_eq!(r.words[&2].stall_operand, 2);
        assert_eq!(r.words[&2].stall_busy, 1);
        assert_eq!(r.regions[&0].stall_cycles, 3);
        assert_eq!(r.shadow_occupancy.high_water(), 1);
        assert_eq!(r.unspec_conds.high_water(), 2);
        assert_eq!(r.cycles, 4);
    }

    #[test]
    fn hottest_words_rank_by_total_stall() {
        let mut r = ObsReport::default();
        r.words.insert(
            3,
            WordProfile {
                stall_operand: 5,
                ..WordProfile::default()
            },
        );
        r.words.insert(
            1,
            WordProfile {
                stall_busy: 9,
                ..WordProfile::default()
            },
        );
        r.words.insert(7, WordProfile::default());
        let hot = r.hottest_words(10);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, 1);
        assert_eq!(hot[1].0, 3);
    }
}
