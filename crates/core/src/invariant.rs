//! Online invariant checking over the machine event stream.
//!
//! [`InvariantSink`] is a [`TraceSink`] that replays the buffering
//! discipline of Sections 3.2–3.5 *while the machine runs*, instead of
//! auditing a recorded log afterwards (`audit_events`).  It mirrors the
//! CCR from [`Event::CondSet`] / [`Event::RegionEnter`] records and keeps
//! a model of every outstanding buffered entry, which lets it catch
//! violations the end-state differential cannot see:
//!
//! * **V/W discipline** — every commit or squash must resolve an entry
//!   that was actually buffered, a commit must resolve an entry whose
//!   predicate is true, and (single-shadow mode) no second speculative
//!   write with a different predicate may land on a buffered register.
//! * **No lost latched exception** — an E-flagged entry whose predicate
//!   becomes true at a condition-set must have triggered recovery; the
//!   machine setting the condition instead means the exception was lost.
//!   An E-flagged entry must never commit.
//! * **Recovery discipline** — recovery must start with a buffered or
//!   latched exception as evidence, no condition may be specified while
//!   it runs, and every window must end (reaching the EPC) before the
//!   run completes.
//! * **No stale shadows past a recovery exit** — when the future
//!   condition is installed at the EPC, every entry rebuffered during
//!   recovery whose predicate the future specifies must resolve *in that
//!   same cycle*, before the EPC word re-executes.  An entry still
//!   buffered when the EPC word's condition-sets arrive is exactly the
//!   stale shadow that clobbers the word's sequential writes one cycle
//!   later (the seed-suite bug pinned by `recovery_scenarios.rs`).
//!
//! The sink is used by the `psb-fuzz` differential driver, which runs it
//! alongside the golden-model comparison on every generated program.

use crate::event::{Event, StateLoc};
use crate::obs::{CycleSample, TraceSink};
use psb_isa::{Ccr, Cond, Predicate};
use std::collections::BTreeMap;
use std::fmt;

/// One invariant violation, stamped with the cycle it was detected in.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InvariantViolation {
    /// Cycle of the offending event (0 for end-of-run checks).
    pub cycle: u64,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.message)
    }
}

/// One tracked buffered entry (a shadow register or speculative
/// store-buffer occupancy).
#[derive(Clone, Copy, Debug)]
struct Tracked {
    pred: Predicate,
    exc: bool,
    /// Buffered between `RecoveryStart` and `RecoveryEnd`: subject to the
    /// stale-shadow check when the post-recovery condition-sets arrive.
    born_in_recovery: bool,
}

/// Sort- and hash-friendly key for a [`StateLoc`].
fn key(loc: StateLoc) -> (u8, u64) {
    match loc {
        StateLoc::Reg(r) => (0, r.index() as u64),
        StateLoc::Sb(n) => (1, n),
    }
}

/// An online invariant checker over the machine event stream.
///
/// Attach with [`VliwMachine::with_sink`](crate::VliwMachine::with_sink),
/// call [`InvariantSink::finalize`] after the run, and inspect
/// [`InvariantSink::violations`].
#[derive(Clone, Debug)]
pub struct InvariantSink {
    ccr: Ccr,
    single_shadow: bool,
    outstanding: BTreeMap<(u8, u64), Vec<Tracked>>,
    exc_latched: bool,
    in_recovery: bool,
    /// Between `RecoveryEnd` and the first subsequent `CondSet` the mirror
    /// CCR is stale (the machine installed the future condition, whose
    /// values only become visible when the EPC word re-emits them), so
    /// commit-predicate validation is suspended.
    awaiting_future_conds: bool,
    violations: Vec<InvariantViolation>,
    finalized: bool,
}

impl InvariantSink {
    /// Creates a checker for a machine with `num_conds` CCR entries;
    /// `single_shadow` enables the one-shadow-per-register write conflict
    /// check ([`ShadowMode::Single`](crate::ShadowMode)).
    pub fn new(num_conds: usize, single_shadow: bool) -> InvariantSink {
        InvariantSink {
            ccr: Ccr::new(num_conds),
            single_shadow,
            outstanding: BTreeMap::new(),
            exc_latched: false,
            in_recovery: false,
            awaiting_future_conds: false,
            violations: Vec::new(),
            finalized: false,
        }
    }

    /// The violations detected so far.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Runs the end-of-run checks (unfinished recovery, unresolved
    /// buffered state) and returns all violations.  Idempotent.
    pub fn finalize(&mut self) -> &[InvariantViolation] {
        if !self.finalized {
            self.finalized = true;
            if self.in_recovery {
                self.flag(0, "recovery window never reached the EPC".into());
            }
            let leftover: usize = self.outstanding.values().map(Vec::len).sum();
            if leftover > 0 {
                self.flag(
                    0,
                    format!("{leftover} buffered entries unresolved at end of run"),
                );
            }
        }
        &self.violations
    }

    fn flag(&mut self, cycle: u64, message: String) {
        self.violations.push(InvariantViolation { cycle, message });
    }

    fn on_spec_write(&mut self, cycle: u64, loc: StateLoc, pred: Predicate, exc: bool) {
        let born_in_recovery = self.in_recovery;
        let single_shadow = self.single_shadow;
        let entries = self.outstanding.entry(key(loc)).or_default();
        if let Some(slot) = entries.iter_mut().find(|t| t.pred == pred) {
            // Same-predicate rewrite (WAW on one path) replaces in place.
            *slot = Tracked {
                pred,
                exc,
                born_in_recovery,
            };
            return;
        }
        let conflict = single_shadow && matches!(loc, StateLoc::Reg(_)) && !entries.is_empty();
        entries.push(Tracked {
            pred,
            exc,
            born_in_recovery,
        });
        if conflict {
            self.flag(
                cycle,
                format!(
                    "second speculative write to {loc} with a different predicate \
                     while one is buffered (single-shadow V discipline)"
                ),
            );
        }
    }

    fn on_commit(&mut self, cycle: u64, loc: StateLoc) {
        let k = key(loc);
        let stale = self.awaiting_future_conds;
        let ccr = self.ccr;
        let mut message = None;
        let mut now_empty = false;
        if let Some(entries) = self.outstanding.get_mut(&k) {
            // Resolve the entry the commit hardware picked: predicate true
            // under the mirror CCR.  While the mirror is stale after a
            // recovery exit, accept the oldest entry instead.
            let idx = if stale {
                Some(0)
            } else {
                entries.iter().position(|t| t.pred.eval(&ccr) == Cond::True)
            };
            match idx {
                Some(i) => {
                    let t = entries.remove(i);
                    if t.exc {
                        message = Some(format!(
                            "latched exception on {loc} committed without recovery"
                        ));
                    }
                }
                None => {
                    entries.remove(0);
                    message = Some(format!(
                        "commit of {loc} whose buffered predicate is not true"
                    ));
                }
            }
            now_empty = entries.is_empty();
        } else {
            message = Some(format!("commit of {loc} with nothing buffered"));
        }
        if now_empty {
            self.outstanding.remove(&k);
        }
        if let Some(m) = message {
            self.flag(cycle, m);
        }
    }

    fn on_squash(&mut self, cycle: u64, loc: StateLoc) {
        let k = key(loc);
        let ccr = self.ccr;
        let mut missing = false;
        let mut now_empty = false;
        if let Some(entries) = self.outstanding.get_mut(&k) {
            // The pass squashes false predicates; region exits, recovery
            // entry and the final drain squash unspecified ones wholesale.
            // Remove a false-evaluating entry if one exists, else the
            // oldest.
            let i = entries
                .iter()
                .position(|t| t.pred.eval(&ccr) == Cond::False)
                .unwrap_or(0);
            entries.remove(i);
            now_empty = entries.is_empty();
        } else {
            missing = true;
        }
        if now_empty {
            self.outstanding.remove(&k);
        }
        if missing {
            self.flag(cycle, format!("squash of {loc} with nothing buffered"));
        }
    }

    fn on_cond_set(&mut self, cycle: u64, c: psb_isa::CondReg, value: Cond) {
        if self.in_recovery {
            self.flag(
                cycle,
                format!("condition c{} specified during recovery", c.index()),
            );
        }
        if let Cond::True | Cond::False = value {
            self.ccr.set(c, value == Cond::True);
        }
        if self.awaiting_future_conds {
            // The EPC word re-emitted the triggering condition: the mirror
            // CCR now equals the installed future.  Every entry rebuffered
            // during recovery that the future specifies had to resolve at
            // the exit pass, *before* this word issued.
            self.awaiting_future_conds = false;
            let mut stale = Vec::new();
            for (&k, entries) in &mut self.outstanding {
                for t in entries.iter_mut() {
                    if t.born_in_recovery {
                        if t.pred.eval(&self.ccr).is_specified() {
                            stale.push(k);
                        }
                        t.born_in_recovery = false;
                    }
                }
            }
            for (tag, n) in stale {
                let desc = if tag == 0 { "r" } else { "sb" };
                self.flag(
                    cycle,
                    format!(
                        "stale shadow {desc}{n} survived the recovery exit: its predicate \
                         is specified under the installed future condition, so it must \
                         have resolved before the EPC word issued"
                    ),
                );
            }
        }
        // An E-flagged entry whose predicate just became true is a lost
        // exception: the machine must have entered recovery instead of
        // updating the CCR.
        let lost: Vec<String> = self
            .outstanding
            .values()
            .flatten()
            .filter(|t| t.exc && t.pred.eval(&self.ccr) == Cond::True)
            .map(|t| format!("{}", t.pred))
            .collect();
        for pred in lost {
            self.flag(
                cycle,
                format!(
                    "latched exception under predicate {pred} commits at this \
                     condition-set but no recovery started"
                ),
            );
        }
    }

    fn on_event(&mut self, ev: Event) {
        match ev {
            Event::SeqWrite { .. } | Event::SeqStore { .. } | Event::FaultHandled { .. } => {}
            Event::SpecWrite {
                cycle,
                loc,
                pred,
                exc,
            } => self.on_spec_write(cycle, loc, pred, exc),
            Event::Commit { cycle, loc } => self.on_commit(cycle, loc),
            Event::Squash { cycle, loc } => self.on_squash(cycle, loc),
            Event::CondSet { cycle, c, value } => self.on_cond_set(cycle, c, value),
            Event::RegionEnter { cycle, .. } => {
                self.ccr.reset();
                self.exc_latched = false;
                let leftover: usize = self.outstanding.values().map(Vec::len).sum();
                if leftover > 0 {
                    self.flag(
                        cycle,
                        format!("{leftover} buffered entries leaked across a region boundary"),
                    );
                    self.outstanding.clear();
                }
            }
            Event::ExcLatched { .. } => self.exc_latched = true,
            Event::RecoveryStart { cycle, .. } => {
                if self.in_recovery {
                    self.flag(cycle, "recovery started inside a recovery window".into());
                }
                let evidence =
                    self.exc_latched || self.outstanding.values().flatten().any(|t| t.exc);
                if !evidence {
                    self.flag(
                        cycle,
                        "recovery started without a buffered or latched exception".into(),
                    );
                }
                self.in_recovery = true;
                self.exc_latched = false;
            }
            Event::RecoveryEnd { cycle } => {
                if !self.in_recovery {
                    self.flag(cycle, "recovery ended without a matching start".into());
                }
                self.in_recovery = false;
                self.awaiting_future_conds = true;
            }
        }
    }
}

impl TraceSink for InvariantSink {
    fn event_enabled(&self) -> bool {
        true
    }

    fn sample_enabled(&self) -> bool {
        false
    }

    fn record(&mut self, ev: Event) {
        self.on_event(ev);
    }

    fn sample(&mut self, _s: &CycleSample) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{CondReg, Reg};

    fn pred(c: usize) -> Predicate {
        Predicate::always().and_pos(CondReg::new(c))
    }

    fn reg(i: usize) -> StateLoc {
        StateLoc::Reg(Reg::new(i))
    }

    #[test]
    fn clean_commit_sequence_passes() {
        let mut s = InvariantSink::new(4, true);
        s.record(Event::SpecWrite {
            cycle: 1,
            loc: reg(1),
            pred: pred(0),
            exc: false,
        });
        s.record(Event::CondSet {
            cycle: 2,
            c: CondReg::new(0),
            value: Cond::True,
        });
        s.record(Event::Commit {
            cycle: 3,
            loc: reg(1),
        });
        assert!(s.finalize().is_empty(), "{:?}", s.violations());
    }

    #[test]
    fn commit_without_write_is_flagged() {
        let mut s = InvariantSink::new(4, true);
        s.record(Event::Commit {
            cycle: 3,
            loc: reg(1),
        });
        assert!(s.violations()[0].message.contains("nothing buffered"));
    }

    #[test]
    fn conflicting_single_shadow_write_is_flagged() {
        let mut s = InvariantSink::new(4, true);
        s.record(Event::SpecWrite {
            cycle: 1,
            loc: reg(1),
            pred: pred(0),
            exc: false,
        });
        s.record(Event::SpecWrite {
            cycle: 1,
            loc: reg(1),
            pred: pred(1),
            exc: false,
        });
        assert!(s.violations()[0]
            .message
            .contains("second speculative write"));
    }

    #[test]
    fn lost_latched_exception_is_flagged() {
        let mut s = InvariantSink::new(4, true);
        s.record(Event::SpecWrite {
            cycle: 1,
            loc: reg(1),
            pred: pred(0),
            exc: true,
        });
        // The machine sets c0 true without entering recovery: lost.
        s.record(Event::CondSet {
            cycle: 2,
            c: CondReg::new(0),
            value: Cond::True,
        });
        assert!(s
            .violations()
            .iter()
            .any(|v| v.message.contains("no recovery started")));
    }

    #[test]
    fn stale_shadow_after_recovery_exit_is_flagged() {
        let mut s = InvariantSink::new(4, true);
        s.record(Event::SpecWrite {
            cycle: 1,
            loc: reg(1),
            pred: pred(0),
            exc: true,
        });
        s.record(Event::RecoveryStart {
            cycle: 2,
            epc: 2,
            rpc: 0,
        });
        s.record(Event::Squash {
            cycle: 2,
            loc: reg(1),
        });
        // Rebuffered during recovery under the recovery condition.
        s.record(Event::SpecWrite {
            cycle: 3,
            loc: reg(1),
            pred: pred(0),
            exc: false,
        });
        s.record(Event::RecoveryEnd { cycle: 4 });
        // No exit-pass commit for r1 before the EPC word re-emits c0.
        s.record(Event::CondSet {
            cycle: 4,
            c: CondReg::new(0),
            value: Cond::True,
        });
        assert!(
            s.violations()
                .iter()
                .any(|v| v.message.contains("stale shadow")),
            "{:?}",
            s.violations()
        );
    }

    #[test]
    fn resolved_recovery_exit_passes() {
        let mut s = InvariantSink::new(4, true);
        s.record(Event::SpecWrite {
            cycle: 1,
            loc: reg(1),
            pred: pred(0),
            exc: true,
        });
        s.record(Event::RecoveryStart {
            cycle: 2,
            epc: 2,
            rpc: 0,
        });
        s.record(Event::Squash {
            cycle: 2,
            loc: reg(1),
        });
        s.record(Event::SpecWrite {
            cycle: 3,
            loc: reg(1),
            pred: pred(0),
            exc: false,
        });
        s.record(Event::RecoveryEnd { cycle: 4 });
        // The exit pass resolves the rebuffered entry in the same cycle.
        s.record(Event::Commit {
            cycle: 4,
            loc: reg(1),
        });
        s.record(Event::CondSet {
            cycle: 4,
            c: CondReg::new(0),
            value: Cond::True,
        });
        assert!(s.finalize().is_empty(), "{:?}", s.violations());
    }

    #[test]
    fn unfinished_recovery_is_flagged_at_finalize() {
        let mut s = InvariantSink::new(4, true);
        s.record(Event::ExcLatched { cycle: 1, addr: 4 });
        s.record(Event::RecoveryStart {
            cycle: 2,
            epc: 2,
            rpc: 0,
        });
        assert!(s
            .finalize()
            .iter()
            .any(|v| v.message.contains("never reached the EPC")));
    }

    #[test]
    fn recovery_without_evidence_is_flagged() {
        let mut s = InvariantSink::new(4, true);
        s.record(Event::RecoveryStart {
            cycle: 2,
            epc: 2,
            rpc: 0,
        });
        assert!(s.violations()[0].message.contains("without a buffered"));
    }
}
