use super::*;
use crate::config::ShadowMode;
use psb_isa::{AluOp, CmpOp, MemImage, MemTag, Slot};

fn r(i: usize) -> Reg {
    Reg::new(i)
}

fn c(i: usize) -> CondReg {
    CondReg::new(i)
}

fn p() -> Predicate {
    Predicate::always()
}

fn alu(rd: Reg, a: Src, op: AluOp, b: Src) -> SlotOp {
    SlotOp::Op(Op::Alu { op, rd, a, b })
}

fn load(rd: Reg, base: Src, offset: i64) -> SlotOp {
    SlotOp::Op(Op::Load {
        rd,
        base,
        offset,
        tag: MemTag::ANY,
    })
}

fn store(base: Src, offset: i64, value: Src) -> SlotOp {
    SlotOp::Op(Op::Store {
        base,
        offset,
        value,
        tag: MemTag::ANY,
    })
}

fn setc(cr: CondReg, cmp: CmpOp, a: Src, b: Src) -> SlotOp {
    SlotOp::Op(Op::SetCond { c: cr, cmp, a, b })
}

fn word(slots: Vec<Slot>) -> MultiOp {
    MultiOp::new(slots)
}

fn prog(words: Vec<MultiOp>, regions: Vec<usize>) -> VliwProgram {
    VliwProgram {
        name: "test".into(),
        words,
        region_starts: regions,
        num_conds: 4,
        init_regs: vec![],
        memory: MemImage::zeroed(64),
        live_out: vec![],
    }
}

fn run(p: &VliwProgram) -> VliwResult {
    VliwMachine::run_program(p, MachineConfig::two_issue().with_events()).unwrap()
}

#[test]
fn straight_line_alu() {
    let pr = prog(
        vec![
            word(vec![Slot::alw(alu(
                r(1),
                Src::imm(2),
                AluOp::Add,
                Src::imm(3),
            ))]),
            word(vec![Slot::alw(alu(
                r(2),
                Src::reg(r(1)),
                AluOp::Mul,
                Src::imm(10),
            ))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let res = run(&pr);
    assert_eq!(res.regs[1], 5);
    assert_eq!(res.regs[2], 50);
    assert_eq!(res.cycles, 3);
    assert_eq!(res.words_issued, 3);
}

#[test]
fn speculative_write_commits_on_true() {
    // W0: spec write r1 under c0; W1: set c0 true; W2/W3: pad; W4: halt.
    let pr = prog(
        vec![
            word(vec![Slot::new(
                p().and_pos(c(0)),
                alu(r(1), Src::imm(7), AluOp::Add, Src::imm(0)),
            )]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(1),
                Src::imm(1),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let res = run(&pr);
    assert_eq!(res.regs[1], 7);
    assert!(res
        .events
        .iter()
        .any(|e| matches!(e, Event::Commit { cycle: 3, .. })));
}

#[test]
fn speculative_write_squashes_on_false() {
    let pr = prog(
        vec![
            word(vec![Slot::new(
                p().and_pos(c(0)),
                alu(r(1), Src::imm(7), AluOp::Add, Src::imm(0)),
            )]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(1),
                Src::imm(2),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let res = run(&pr);
    assert_eq!(res.regs[1], 0);
    assert!(res
        .events
        .iter()
        .any(|e| matches!(e, Event::Squash { cycle: 3, .. })));
}

#[test]
fn false_predicate_squashed_at_issue() {
    // c0 := false, then a c0-predicated op: squashed at issue, no state.
    let pr = prog(
        vec![
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(1),
            ))]),
            word(vec![Slot::new(
                p().and_pos(c(0)),
                alu(r(1), Src::imm(9), AluOp::Add, Src::imm(0)),
            )]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let res = run(&pr);
    assert_eq!(res.regs[1], 0);
    assert_eq!(res.ops_squashed, 1);
    assert!(!res
        .events
        .iter()
        .any(|e| matches!(e, Event::SpecWrite { .. })));
}

#[test]
fn load_latency_and_interlock() {
    let mut pr = prog(
        vec![
            word(vec![Slot::alw(load(r(1), Src::imm(4), 0))]),
            word(vec![Slot::alw(alu(
                r(2),
                Src::reg(r(1)),
                AluOp::Add,
                Src::imm(1),
            ))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    pr.memory.set(4, 41);
    let res = run(&pr);
    assert_eq!(res.regs[2], 42);
    // cycle 1: load; cycle 2: stall (r1 in flight, lands end of 2);
    // cycle 3: add; cycle 4: halt.
    assert_eq!(res.cycles, 4);
    assert_eq!(res.stall_operand, 1);
}

#[test]
fn jump_with_unspecified_predicate_stalls() {
    // Jump predicated on c0 which is set in the same region one word
    // earlier by a 1-cycle op; jump issues next cycle without stalling.
    // Then a jump issued *before* its condition resolves must stall.
    let pr = prog(
        vec![
            // W0: long-latency producer for the condition source.
            word(vec![Slot::alw(load(r(1), Src::imm(4), 0))]),
            // W1: set c0 from r1 (stalls one cycle on the interlock).
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::reg(r(1)),
                Src::imm(0),
            ))]),
            // W2: jump on c0 — c0 lands end of previous cycle, no stall.
            word(vec![Slot::new(
                p().and_pos(c(0)),
                SlotOp::Jump { target: 4 },
            )]),
            word(vec![Slot::alw(SlotOp::Halt)]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0, 3, 4],
    );
    let res = run(&pr);
    // mem[4] == 0 so c0 true: jump taken to W4.
    assert_eq!(res.region_transfers, 1);
    assert!(res
        .events
        .iter()
        .any(|e| matches!(e, Event::RegionEnter { addr: 4, .. })));
}

#[test]
fn unresolvable_jump_predicate_is_malformed() {
    // The condition for the jump is set by the *same* word: in an in-order
    // machine it can never be specified at the jump's issue, so this is a
    // scheduling error, not a stall.
    let pr = prog(
        vec![
            word(vec![
                Slot::alw(setc(c(0), CmpOp::Eq, Src::imm(0), Src::imm(0))),
                Slot::new(p().and_pos(c(0)), SlotOp::Jump { target: 1 }),
            ]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0, 1],
    );
    let err = VliwMachine::run_program(&pr, MachineConfig::two_issue()).unwrap_err();
    assert!(matches!(err, VliwError::Malformed(m) if m.contains("unspecified at issue")));
}

#[test]
fn region_exit_resets_ccr_and_squashes_spec() {
    let pr = prog(
        vec![
            // W0: set c0 true; buffer a spec value under c1 (never set).
            word(vec![
                Slot::alw(setc(c(0), CmpOp::Eq, Src::imm(0), Src::imm(0))),
                Slot::new(
                    p().and_pos(c(1)),
                    alu(r(1), Src::imm(5), AluOp::Add, Src::imm(0)),
                ),
            ]),
            // W1: exit under c0.
            word(vec![Slot::new(
                p().and_pos(c(0)),
                SlotOp::Jump { target: 2 },
            )]),
            // W2 (new region): an op under !c0 — CCR was reset, so this is
            // *unspecified*, not false: it executes speculatively and is
            // never resolved before halt... so predicate it on nothing.
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0, 2],
    );
    let res = run(&pr);
    assert_eq!(
        res.regs[1], 0,
        "speculative r1 must be squashed at region exit"
    );
    let squashes: Vec<_> = res
        .events
        .iter()
        .filter(|e| matches!(e, Event::Squash { .. }))
        .collect();
    assert_eq!(squashes.len(), 1);
}

#[test]
fn store_buffer_commit_and_retire() {
    let pr = prog(
        vec![
            word(vec![Slot::new(
                p().and_pos(c(0)),
                store(Src::imm(8), 0, Src::imm(77)),
            )]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(0),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let res = run(&pr);
    assert_eq!(res.memory.read(8).unwrap(), 77);
}

#[test]
fn squashed_store_never_reaches_memory() {
    let pr = prog(
        vec![
            word(vec![Slot::new(
                p().and_pos(c(0)),
                store(Src::imm(8), 0, Src::imm(77)),
            )]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(1),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let res = run(&pr);
    assert_eq!(res.memory.read(8).unwrap(), 0);
}

#[test]
fn store_to_load_forwarding() {
    // A store sits in the buffer (unretired, speculative-committed later);
    // a load from the same address must see it.
    let pr = prog(
        vec![
            word(vec![Slot::alw(store(Src::imm(8), 0, Src::imm(55)))]),
            word(vec![Slot::alw(load(r(1), Src::imm(8), 0))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let res = run(&pr);
    assert_eq!(res.regs[1], 55);
}

#[test]
fn commit_during_execution() {
    // A speculative load whose predicate resolves true before writeback
    // writes the sequential state directly (the paper's i6).
    let mut pr = prog(
        vec![
            word(vec![
                Slot::new(p().and_pos(c(0)), load(r(1), Src::imm(4), 0)),
                Slot::alw(setc(c(0), CmpOp::Eq, Src::imm(0), Src::imm(0))),
            ]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    pr.memory.set(4, 9);
    let res = run(&pr);
    assert_eq!(res.regs[1], 9);
    // The write must be sequential (no spec-write/commit pair for r1).
    assert!(res
        .events
        .iter()
        .any(|e| matches!(e, Event::SeqWrite { cycle: 2, reg } if *reg == r(1))));
    assert!(!res
        .events
        .iter()
        .any(|e| matches!(e, Event::SpecWrite { loc: StateLoc::Reg(reg), .. } if *reg == r(1))));
}

#[test]
fn shadow_source_reads_speculative_state() {
    let pr = prog(
        vec![
            word(vec![Slot::new(
                p().and_pos(c(0)),
                alu(r(1), Src::imm(3), AluOp::Add, Src::imm(0)),
            )]),
            word(vec![Slot::new(
                p().and_pos(c(0)),
                alu(r(2), Src::shadow(r(1)), AluOp::Mul, Src::imm(2)),
            )]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(0),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let res = run(&pr);
    assert_eq!(res.regs[1], 3);
    assert_eq!(res.regs[2], 6);
}

#[test]
fn shadow_fallback_after_commit() {
    // Producer commits before the shadow-reading consumer issues; the
    // operand fetch falls back to the sequential storage (Section 3.5).
    let pr = prog(
        vec![
            word(vec![Slot::new(
                p().and_pos(c(0)),
                alu(r(1), Src::imm(3), AluOp::Add, Src::imm(0)),
            )]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(0),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            // r1 committed at cycle 3; this issues at cycle 4 with a shadow
            // source and must still see 3.
            word(vec![Slot::new(
                p().and_pos(c(0)),
                alu(r(2), Src::shadow(r(1)), AluOp::Mul, Src::imm(2)),
            )]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let res = run(&pr);
    assert_eq!(res.regs[2], 6);
}

#[test]
fn shadow_conflict_detected_in_single_mode() {
    let pr = prog(
        vec![
            word(vec![Slot::new(
                p().and_pos(c(0)),
                alu(r(1), Src::imm(1), AluOp::Add, Src::imm(0)),
            )]),
            word(vec![Slot::new(
                p().and_pos(c(1)),
                alu(r(1), Src::imm(2), AluOp::Add, Src::imm(0)),
            )]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let err = VliwMachine::run_program(&pr, MachineConfig::two_issue()).unwrap_err();
    assert!(matches!(err, VliwError::ShadowConflict { reg, .. } if reg == r(1)));
    // The infinite-shadow configuration accepts the same program.
    let mut cfg = MachineConfig::two_issue();
    cfg.shadow_mode = ShadowMode::Infinite;
    VliwMachine::run_program(&pr, cfg).unwrap();
}

#[test]
fn fatal_fault_on_nonspeculative_access() {
    let pr = prog(
        vec![
            word(vec![Slot::alw(load(r(1), Src::imm(0), 0))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let err = VliwMachine::run_program(&pr, MachineConfig::two_issue()).unwrap_err();
    assert!(matches!(
        err,
        VliwError::Fault {
            word: 0,
            fault: MemFault::Null
        }
    ));
}

#[test]
fn fault_once_nonspeculative_pays_penalty() {
    let pr = prog(
        vec![
            word(vec![Slot::alw(load(r(1), Src::imm(4), 0))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let mut cfg = MachineConfig::two_issue();
    cfg.fault_once_addrs.insert(4);
    cfg.fault_penalty = 10;
    let res = VliwMachine::run_program(&pr, cfg).unwrap();
    assert_eq!(res.faults_handled, 1);
    assert!(
        res.cycles >= 13,
        "penalty cycles must be charged, got {}",
        res.cycles
    );
}

#[test]
fn squashed_speculative_fault_costs_nothing() {
    // A speculative load from a fault-once page whose predicate resolves
    // false: the exception is squashed, no handler runs.
    let pr = prog(
        vec![
            word(vec![Slot::new(
                p().and_pos(c(0)),
                load(r(1), Src::imm(4), 0),
            )]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(1),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let mut cfg = MachineConfig::two_issue();
    cfg.fault_once_addrs.insert(4);
    cfg.fault_penalty = 1000;
    let res = VliwMachine::run_program(&pr, cfg).unwrap();
    assert_eq!(res.faults_handled, 0);
    assert_eq!(res.recoveries, 0);
    assert!(res.cycles < 20);
}

/// The paper's Section 3.4 example: Figure 4's 2-issue schedule must
/// reproduce the machine state transition of Table 1 cycle by cycle.
#[test]
fn table1_state_transition() {
    // Conditions: c0 = r3 < r4, c1 = r5 < r6, c2 = r2 < 0.
    // Initial: r2 = 4 (pointer), mem[4] = 10, r4 = 100, r5 = 5,
    // mem[11] = 50, mem[6] = 77 ("array"), r7 = 20.
    let array = Src::imm(6);
    let mut pr = prog(
        vec![
            // (1) i1: alw r1 = load(r2)        i15: c0&c1 r2 = r2 - 1
            word(vec![
                Slot::alw(load(r(1), Src::reg(r(2)), 0)),
                Slot::new(
                    p().and_pos(c(0)).and_pos(c(1)),
                    alu(r(2), Src::reg(r(2)), AluOp::Sub, Src::imm(1)),
                ),
            ]),
            // (2) i10: !c0 r5 = load array     i14: c0&c1 store(r7) = r5
            word(vec![
                Slot::new(p().and_neg(c(0)), load(r(5), array, 0)),
                Slot::new(
                    p().and_pos(c(0)).and_pos(c(1)),
                    store(Src::reg(r(7)), 0, Src::reg(r(5))),
                ),
            ]),
            // (3) i2: alw r3 = r1 + 1          i16: c0&c1 r7 = r2.s << 1
            word(vec![
                Slot::alw(alu(r(3), Src::reg(r(1)), AluOp::Add, Src::imm(1))),
                Slot::new(
                    p().and_pos(c(0)).and_pos(c(1)),
                    alu(r(7), Src::shadow(r(2)), AluOp::Sll, Src::imm(1)),
                ),
            ]),
            // (4) i6: c0 r6 = load(r3)         i3: alw c0 = r3 < r4
            word(vec![
                Slot::new(p().and_pos(c(0)), load(r(6), Src::reg(r(3)), 0)),
                Slot::alw(setc(c(0), CmpOp::Lt, Src::reg(r(3)), Src::reg(r(4)))),
            ]),
            // (5) i11: alw c2 = r2 < 0         nop
            word(vec![
                Slot::alw(setc(c(2), CmpOp::Lt, Src::reg(r(2)), Src::imm(0))),
                Slot::alw(SlotOp::Op(Op::Nop)),
            ]),
            // (6) i7: alw c1 = r5 < r6         i12: !c0&c2 j L6
            word(vec![
                Slot::alw(setc(c(1), CmpOp::Lt, Src::reg(r(5)), Src::reg(r(6)))),
                Slot::new(p().and_neg(c(0)).and_pos(c(2)), SlotOp::Jump { target: 8 }),
            ]),
            // (7) i9: c0&!c1 j L5              i17: c0&c1 j L8
            word(vec![
                Slot::new(p().and_pos(c(0)).and_neg(c(1)), SlotOp::Jump { target: 8 }),
                Slot::new(p().and_pos(c(0)).and_pos(c(1)), SlotOp::Jump { target: 8 }),
            ]),
            // (8) i13: !c0&!c2 j L7            nop
            word(vec![
                Slot::new(p().and_neg(c(0)).and_neg(c(2)), SlotOp::Jump { target: 8 }),
                Slot::alw(SlotOp::Op(Op::Nop)),
            ]),
            // L8: the next region.
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0, 8],
    );
    pr.init_regs = vec![(r(2), 4), (r(4), 100), (r(5), 5), (r(7), 20)];
    pr.memory.set(4, 10);
    pr.memory.set(11, 50);
    pr.memory.set(6, 77);
    let res = run(&pr);

    // Final architectural state.
    assert_eq!(res.regs[1], 10); // i1
    assert_eq!(res.regs[3], 11); // i2
    assert_eq!(res.regs[6], 50); // i6 (committed during execution)
    assert_eq!(res.regs[2], 3); // i15 committed
    assert_eq!(res.regs[7], 6); // i16 committed: (4-1) << 1
    assert_eq!(res.regs[5], 5); // i10 squashed
    assert_eq!(res.memory.read(20).unwrap(), 5); // i14 committed & retired

    // Table 1, row by row.
    let ev = &res.events;
    let has = |pat: &dyn Fn(&Event) -> bool| ev.iter().any(pat);
    // cycle 1: speculative write r2 with predicate c0&c1.
    assert!(has(
        &|e| matches!(e, Event::SpecWrite { cycle: 1, loc: StateLoc::Reg(reg), .. } if *reg == r(2))
    ));
    // cycle 2: sequential write r1; speculative store sb1.
    assert!(has(
        &|e| matches!(e, Event::SeqWrite { cycle: 2, reg } if *reg == r(1))
    ));
    assert!(has(&|e| matches!(
        e,
        Event::SpecWrite {
            cycle: 2,
            loc: StateLoc::Sb(1),
            ..
        }
    )));
    // cycle 3: seq write r3; spec writes r5 (!c0) and r7 (c0&c1).
    assert!(has(
        &|e| matches!(e, Event::SeqWrite { cycle: 3, reg } if *reg == r(3))
    ));
    assert!(has(
        &|e| matches!(e, Event::SpecWrite { cycle: 3, loc: StateLoc::Reg(reg), .. } if *reg == r(5))
    ));
    assert!(has(
        &|e| matches!(e, Event::SpecWrite { cycle: 3, loc: StateLoc::Reg(reg), .. } if *reg == r(7))
    ));
    // cycle 4: c0 := T.
    assert!(has(
        &|e| matches!(e, Event::CondSet { cycle: 4, c: cc, value: Cond::True } if cc.index() == 0)
    ));
    // cycle 5: seq write r6 (commit during execution); squash r5; c2 := F.
    assert!(has(
        &|e| matches!(e, Event::SeqWrite { cycle: 5, reg } if *reg == r(6))
    ));
    assert!(has(
        &|e| matches!(e, Event::Squash { cycle: 5, loc: StateLoc::Reg(reg) } if *reg == r(5))
    ));
    assert!(has(
        &|e| matches!(e, Event::CondSet { cycle: 5, c: cc, value: Cond::False } if cc.index() == 2)
    ));
    // cycle 6: c1 := T.
    assert!(has(
        &|e| matches!(e, Event::CondSet { cycle: 6, c: cc, value: Cond::True } if cc.index() == 1)
    ));
    // cycle 7: commits of r2, r7 and sb1; transfer to L8.
    assert!(has(
        &|e| matches!(e, Event::Commit { cycle: 7, loc: StateLoc::Reg(reg) } if *reg == r(2))
    ));
    assert!(has(
        &|e| matches!(e, Event::Commit { cycle: 7, loc: StateLoc::Reg(reg) } if *reg == r(7))
    ));
    assert!(has(&|e| matches!(
        e,
        Event::Commit {
            cycle: 7,
            loc: StateLoc::Sb(1)
        }
    )));
    assert!(has(&|e| matches!(
        e,
        Event::RegionEnter { cycle: 7, addr: 8 }
    )));
    // The transfer happens in cycle 7, so word (8) never issues: 8 cycles
    // total (7 in the region + the halt).
    assert_eq!(res.cycles, 8);
}

/// Figure 5's future-condition recovery: two speculative exceptions are
/// buffered; the committed one is handled during re-execution, the one
/// false under the future condition is ignored.
#[test]
fn figure5_future_condition_recovery() {
    let mut pr = prog(
        vec![
            // i1: alw r1 = r2
            word(vec![Slot::alw(SlotOp::Op(Op::Copy {
                rd: r(1),
                src: Src::reg(r(2)),
            }))]),
            // i2: alw c0 = r3 < 0
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Lt,
                Src::reg(r(3)),
                Src::imm(0),
            ))]),
            // i3: c0 r2 = load(r2)
            word(vec![Slot::new(
                p().and_pos(c(0)),
                load(r(2), Src::reg(r(2)), 0),
            )]),
            // i4: c0&c1 r3 = load(r4)   — faults (fault-once page)
            word(vec![Slot::new(
                p().and_pos(c(0)).and_pos(c(1)),
                load(r(3), Src::reg(r(4)), 0),
            )]),
            // i5: c0&!c1 r5 = load(r6)  — faults (fault-once page)
            word(vec![Slot::new(
                p().and_pos(c(0)).and_neg(c(1)),
                load(r(5), Src::reg(r(6)), 0),
            )]),
            // i6: c0&c1 r7 = r7 + r3.s
            word(vec![Slot::new(
                p().and_pos(c(0)).and_pos(c(1)),
                alu(r(7), Src::reg(r(7)), AluOp::Add, Src::shadow(r(3))),
            )]),
            // i7: alw c1 = r2 > r8      — commits the exception on r3
            word(vec![Slot::alw(setc(
                c(1),
                CmpOp::Gt,
                Src::reg(r(2)),
                Src::reg(r(8)),
            ))]),
            word(vec![Slot::alw(SlotOp::Jump { target: 8 })]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0, 8],
    );
    pr.init_regs = vec![
        (r(2), 10),
        (r(3), -1), // c0 true
        (r(4), 12), // faulting page
        (r(6), 14), // faulting page
        (r(7), 100),
        (r(8), 20),
    ];
    pr.memory.set(10, 30); // i3 loads 30 into r2 => c1 = 30 > 20 = true
    pr.memory.set(12, 42); // i4's eventual value
    pr.memory.set(14, 7); // i5's value, never read
    let mut cfg = MachineConfig::two_issue().with_events();
    cfg.fault_once_addrs.insert(12);
    cfg.fault_once_addrs.insert(14);
    cfg.fault_penalty = 5;
    let res = VliwMachine::run_program(&pr, cfg).unwrap();

    assert_eq!(res.recoveries, 1);
    // Only the committed exception (i4) is handled; i5's is ignored under
    // the future condition.
    assert_eq!(res.faults_handled, 1);
    assert_eq!(res.regs[3], 42, "i4 re-executed and committed");
    assert_eq!(
        res.regs[7], 142,
        "i6 re-executed with the recovered operand"
    );
    assert_eq!(res.regs[5], 0, "i5 squashed: sequential r5 untouched");
    assert_eq!(res.regs[2], 30);
    assert!(res
        .events
        .iter()
        .any(|e| matches!(e, Event::RecoveryStart { epc: 6, rpc: 0, .. })));
    assert!(res
        .events
        .iter()
        .any(|e| matches!(e, Event::RecoveryEnd { .. })));
    assert!(res
        .events
        .iter()
        .any(|e| matches!(e, Event::FaultHandled { addr: 12, .. })));
    assert!(!res
        .events
        .iter()
        .any(|e| matches!(e, Event::FaultHandled { addr: 14, .. })));
}

#[test]
fn fatal_speculative_fault_detected_through_recovery() {
    // A NULL-dereferencing speculative load whose predicate commits: the
    // recovery re-raises the fault, which is fatal.
    let pr = prog(
        vec![
            word(vec![Slot::new(
                p().and_pos(c(0)),
                load(r(1), Src::imm(0), 0),
            )]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(0),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let err = VliwMachine::run_program(&pr, MachineConfig::two_issue()).unwrap_err();
    assert!(matches!(
        err,
        VliwError::Fault {
            fault: MemFault::Null,
            ..
        }
    ));
}

#[test]
fn squashed_null_dereference_is_free() {
    // The classic linked-list case: the speculative NULL dereference in
    // the exit iteration is squashed and the program completes.
    let pr = prog(
        vec![
            word(vec![Slot::new(
                p().and_pos(c(0)),
                load(r(1), Src::imm(0), 0),
            )]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(1),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let res = VliwMachine::run_program(&pr, MachineConfig::two_issue()).unwrap();
    assert_eq!(res.recoveries, 0);
    assert_eq!(res.regs[1], 0);
}

#[test]
fn validation_rejects_wide_words() {
    let pr = prog(
        vec![word(vec![
            Slot::alw(SlotOp::Op(Op::Nop)),
            Slot::alw(SlotOp::Op(Op::Nop)),
            Slot::alw(SlotOp::Op(Op::Nop)),
        ])],
        vec![0],
    );
    let err = VliwMachine::run_program(&pr, MachineConfig::two_issue()).unwrap_err();
    assert!(matches!(err, VliwError::Malformed(_)));
}

#[test]
fn validation_rejects_resource_overflow() {
    // Two loads per word on a machine with one load unit.
    let pr = prog(
        vec![
            word(vec![
                Slot::alw(load(r(1), Src::imm(4), 0)),
                Slot::alw(load(r(2), Src::imm(5), 0)),
            ]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let err = VliwMachine::run_program(&pr, MachineConfig::two_issue()).unwrap_err();
    assert!(matches!(err, VliwError::Malformed(m) if m.contains("function-unit")));
}

#[test]
fn falling_off_the_end_is_malformed() {
    let pr = prog(vec![word(vec![Slot::alw(SlotOp::Op(Op::Nop))])], vec![0]);
    let err = VliwMachine::run_program(&pr, MachineConfig::two_issue()).unwrap_err();
    assert!(matches!(err, VliwError::Malformed(m) if m.contains("fell off")));
}

#[test]
fn cycle_limit_enforced() {
    let pr = prog(
        vec![word(vec![Slot::alw(SlotOp::Jump { target: 0 })])],
        vec![0],
    );
    let mut cfg = MachineConfig::two_issue();
    cfg.max_cycles = 50;
    let err = VliwMachine::run_program(&pr, cfg).unwrap_err();
    assert_eq!(err, VliwError::CycleLimit(50));
}

#[test]
fn fallthrough_region_entry_resets_state() {
    let pr = prog(
        vec![
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(0),
            ))]),
            // W1 starts a new region by fall-through: CCR must be reset, so
            // a c0-predicated op here is speculative, not committed.
            word(vec![Slot::new(
                p().and_pos(c(0)),
                alu(r(1), Src::imm(9), AluOp::Add, Src::imm(0)),
            )]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0, 1],
    );
    let res = run(&pr);
    assert_eq!(res.regs[1], 0, "c0 was reset at the region boundary");
    assert_eq!(res.region_transfers, 1);
}

#[test]
fn store_buffer_full_stalls() {
    // Two store units but a single D-cache port: a burst of four stores in
    // two words overflows a two-entry buffer and must stall, then drain.
    let pr = prog(
        vec![
            word(vec![
                Slot::alw(store(Src::imm(8), 0, Src::imm(1))),
                Slot::alw(store(Src::imm(9), 0, Src::imm(2))),
            ]),
            word(vec![
                Slot::alw(store(Src::imm(10), 0, Src::imm(3))),
                Slot::alw(store(Src::imm(11), 0, Src::imm(4))),
            ]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let mut cfg = MachineConfig::two_issue();
    cfg.resources.store = 2;
    cfg.store_buffer_size = 2;
    cfg.retire_per_cycle = 1;
    let res = VliwMachine::run_program(&pr, cfg).unwrap();
    assert!(res.stall_sb_full > 0);
    for (addr, v) in [(8, 1), (9, 2), (10, 3), (11, 4)] {
        assert_eq!(res.memory.read(addr).unwrap(), v);
    }
}

#[test]
fn inflight_load_survives_region_exit_when_committed() {
    // A non-speculative load issued right before a taken region exit must
    // still land in the next region (the paper's in-order pipeline does
    // not flush committed work).
    let mut pr = prog(
        vec![
            word(vec![
                Slot::alw(load(r(1), Src::imm(4), 0)),
                Slot::alw(setc(c(0), CmpOp::Eq, Src::imm(0), Src::imm(0))),
            ]),
            word(vec![Slot::new(
                p().and_pos(c(0)),
                SlotOp::Jump { target: 2 },
            )]),
            // New region: consume r1 (the machine interlocks if needed).
            word(vec![Slot::alw(alu(
                r(2),
                Src::reg(r(1)),
                AluOp::Add,
                Src::imm(1),
            ))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0, 2],
    );
    pr.memory.set(4, 41);
    let res = run(&pr);
    assert_eq!(res.regs[1], 41);
    assert_eq!(res.regs[2], 42);
}

#[test]
fn speculative_inflight_dropped_at_region_exit() {
    // A speculative load in flight when the region exits is dead on the
    // exit path and must be squashed, not landed.
    let mut pr = prog(
        vec![
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(0),
            ))]),
            word(vec![
                Slot::new(p().and_pos(c(1)), load(r(1), Src::imm(4), 0)), // c1 never set
                Slot::new(p().and_pos(c(0)), SlotOp::Jump { target: 2 }),
            ]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0, 2],
    );
    pr.memory.set(4, 99);
    let res = run(&pr);
    assert_eq!(res.regs[1], 0, "speculative in-flight value must not land");
}

#[test]
fn halt_drain_charges_store_retirement_cycles() {
    // Three committed stores are still in the buffer at halt; with one
    // D-cache port the drain costs extra cycles.
    let pr = prog(
        vec![
            word(vec![Slot::alw(store(Src::imm(8), 0, Src::imm(1)))]),
            word(vec![Slot::alw(store(Src::imm(9), 0, Src::imm(2)))]),
            word(vec![
                Slot::alw(store(Src::imm(10), 0, Src::imm(3))),
                Slot::alw(SlotOp::Halt),
            ]),
        ],
        vec![0],
    );
    let res = VliwMachine::run_program(&pr, MachineConfig::two_issue()).unwrap();
    // 3 issue cycles; store 1 retires during cycle 2, store 2 during
    // cycle 3; the halt then drains the last store.
    assert_eq!(res.cycles, 4);
    for (a, v) in [(8, 1), (9, 2), (10, 3)] {
        assert_eq!(res.memory.read(a).unwrap(), v);
    }
}

#[test]
fn two_successive_recoveries() {
    // Two speculative exceptions committing at *different* points trigger
    // two independent recoveries within one region.
    let mut pr = prog(
        vec![
            // W0: spec load faults (cold page), pred c0.
            word(vec![Slot::new(
                p().and_pos(c(0)),
                load(r(1), Src::imm(4), 0),
            )]),
            // W1: spec load faults (another cold page), pred c0&c1.
            word(vec![Slot::new(
                p().and_pos(c(0)).and_pos(c(1)),
                load(r(2), Src::imm(5), 0),
            )]),
            // W2: commit the first exception.
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(0),
            ))]),
            // W3: commit the second.
            word(vec![Slot::alw(setc(
                c(1),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(0),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    pr.memory.set(4, 44);
    pr.memory.set(5, 55);
    let mut cfg = MachineConfig::two_issue();
    cfg.fault_once_addrs.insert(4);
    cfg.fault_once_addrs.insert(5);
    cfg.fault_penalty = 3;
    let res = VliwMachine::run_program(&pr, cfg).unwrap();
    assert_eq!(res.recoveries, 2);
    assert_eq!(res.faults_handled, 2);
    assert_eq!(res.regs[1], 44);
    assert_eq!(res.regs[2], 55);
}

#[test]
fn speculative_store_exception_recovers() {
    // A speculative store whose *address* page is cold: the E flag lives
    // in the store buffer; on commit the recovery re-executes the store,
    // handles the fault, and the value reaches memory.
    let pr = prog(
        vec![
            word(vec![Slot::new(
                p().and_pos(c(0)),
                store(Src::imm(12), 0, Src::imm(77)),
            )]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(0),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let mut cfg = MachineConfig::two_issue();
    cfg.fault_once_addrs.insert(12);
    cfg.fault_penalty = 3;
    let res = VliwMachine::run_program(&pr, cfg).unwrap();
    assert_eq!(res.recoveries, 1);
    assert_eq!(res.faults_handled, 1);
    assert_eq!(res.memory.read(12).unwrap(), 77);
}

#[test]
fn infinite_shadow_serves_multiple_buffered_values() {
    // Disjoint-path writers buffer simultaneously; readers with each
    // path's predicate see their own value, and the committing one wins.
    let pr = prog(
        vec![
            word(vec![
                Slot::new(
                    p().and_pos(c(0)),
                    alu(r(1), Src::imm(10), AluOp::Add, Src::imm(0)),
                ),
                Slot::new(
                    p().and_neg(c(0)),
                    alu(r(1), Src::imm(20), AluOp::Add, Src::imm(0)),
                ),
            ]),
            word(vec![
                Slot::new(
                    p().and_pos(c(0)),
                    alu(r(2), Src::shadow(r(1)), AluOp::Add, Src::imm(1)),
                ),
                Slot::new(
                    p().and_neg(c(0)),
                    alu(r(3), Src::shadow(r(1)), AluOp::Add, Src::imm(2)),
                ),
            ]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(1),
            ))]), // c0 = false
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    let mut cfg = MachineConfig::two_issue();
    cfg.shadow_mode = ShadowMode::Infinite;
    let res = VliwMachine::run_program(&pr, cfg).unwrap();
    assert_eq!(res.regs[1], 20, "!c0 path committed");
    assert_eq!(res.regs[2], 0, "c0 reader squashed");
    assert_eq!(res.regs[3], 22, "!c0 reader saw its own path's value");
}

#[test]
fn event_log_covers_every_architectural_action() {
    // Every committed register has a write event; every speculative write
    // has exactly one commit or squash.
    let mut pr = prog(
        vec![
            word(vec![
                Slot::new(
                    p().and_pos(c(0)),
                    alu(r(1), Src::imm(1), AluOp::Add, Src::imm(0)),
                ),
                Slot::new(
                    p().and_neg(c(0)),
                    alu(r(2), Src::imm(2), AluOp::Add, Src::imm(0)),
                ),
            ]),
            word(vec![Slot::alw(setc(
                c(0),
                CmpOp::Eq,
                Src::imm(0),
                Src::imm(0),
            ))]),
            word(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
            word(vec![Slot::alw(SlotOp::Halt)]),
        ],
        vec![0],
    );
    pr.live_out = vec![r(1), r(2)];
    let res = run(&pr);
    let spec_writes = res
        .events
        .iter()
        .filter(|e| matches!(e, Event::SpecWrite { .. }))
        .count();
    let resolutions = res
        .events
        .iter()
        .filter(|e| matches!(e, Event::Commit { .. } | Event::Squash { .. }))
        .count();
    assert_eq!(spec_writes, 2);
    assert_eq!(resolutions, 2, "every buffered value resolves exactly once");
    assert!(res
        .events
        .iter()
        .any(|e| matches!(e, Event::CondSet { .. })));
}

#[test]
fn retire_bandwidth_respected() {
    // Four committed stores, one D-cache port: at most one store reaches
    // memory per cycle.
    let mut words: Vec<MultiOp> = (0..4)
        .map(|i| word(vec![Slot::alw(store(Src::imm(8 + i), 0, Src::imm(i)))]))
        .collect();
    words.push(word(vec![Slot::alw(SlotOp::Halt)]));
    let pr = prog(words, vec![0]);
    let res = VliwMachine::run_program(&pr, MachineConfig::two_issue()).unwrap();
    // Stores issue in cycles 1-4; one retires at the start of each of
    // cycles 2-5, so the buffer is already empty when the halt drains.
    assert_eq!(res.cycles, 5);
}
