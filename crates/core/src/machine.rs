//! The in-order predicating pipeline.
//!
//! # Cycle structure
//!
//! Each simulated cycle runs:
//!
//! 1. **commit pass** — the per-entry predicate hardware of the register
//!    file and store buffer evaluates against the CCR (as updated at the
//!    end of the previous cycle), committing and squashing buffered state;
//! 2. **store retire** — valid non-speculative head entries go to the
//!    D-cache;
//! 3. **recovery exit check** — if recovery has reached the EPC, the future
//!    condition is copied into the CCR and normal mode resumes;
//! 4. **issue** — the word at PC issues unless stalled (operand in flight,
//!    jump with unspecified predicate, store buffer full, fault handler
//!    busy);
//! 5. **end of cycle** — single-cycle results and matured loads write back
//!    (destination chosen by the predicate *at writeback*, so a result can
//!    commit during execution as in Table 1), stores append, condition-set
//!    results form the CCR *candidate*; if a buffered speculative exception
//!    would commit under the candidate, the CCR update is suppressed, the
//!    candidate is saved as the future CCR, all speculative state is
//!    invalidated, and the machine rolls back to the RPC in recovery mode;
//!    otherwise the candidate becomes the CCR and control advances.

use crate::config::{Engine, MachineConfig};
use crate::decoded::{DecodedProgram, DecodedSlot};
use crate::dispatch;
use crate::event::{Event, EventLog, StateLoc};
use crate::mem::MemorySystem;
use crate::obs::{CycleSample, StallKind, TraceSink};
use crate::regfile::PredicatedRegFile;
use crate::storebuf::PredicatedStoreBuffer;
use psb_isa::{
    AluOp, Ccr, CmpOp, Cond, CondReg, FuClass, MemFault, Memory, MultiOp, Op, Predicate, Reg,
    SlotOp, Src, VliwProgram, NUM_REGS,
};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A failed VLIW run.
#[derive(Clone, PartialEq, Debug)]
pub enum VliwError {
    /// A fatal memory fault was committed (non-speculative access, or a
    /// speculative exception whose predicate committed and whose recovery
    /// re-raised a fatal fault).
    Fault {
        /// The faulting word address.
        word: usize,
        /// The fault.
        fault: MemFault,
    },
    /// The configured cycle limit was exceeded.
    CycleLimit(u64),
    /// Two speculative values with different predicates collided in one
    /// shadow register under [`ShadowMode::Single`](crate::ShadowMode::Single) —
    /// a scheduler bug.
    ShadowConflict {
        /// The conflicted register.
        reg: Reg,
        /// The cycle of the conflicting write.
        cycle: u64,
    },
    /// The program violated a machine invariant (e.g. a word wider than the
    /// issue width, too few function units, execution fell off the end, or
    /// an impossible predicate state during recovery).
    Malformed(String),
}

impl fmt::Display for VliwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VliwError::Fault { word, fault } => write!(f, "fatal {fault} committed at W{word}"),
            VliwError::CycleLimit(n) => write!(f, "cycle limit {n} exceeded"),
            VliwError::ShadowConflict { reg, cycle } => {
                write!(f, "shadow storage conflict on {reg} at cycle {cycle}")
            }
            VliwError::Malformed(m) => write!(f, "malformed program: {m}"),
        }
    }
}

impl std::error::Error for VliwError {}

/// The machine's execution counters — the single definition shared by the
/// private accumulation during a run and the public [`VliwResult`]
/// (which [`Deref`](std::ops::Deref)s to it).  A new counter added here
/// appears in both automatically.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunStats {
    /// Words issued (excluding stall cycles).
    pub words_issued: u64,
    /// Slot operations executed (predicate true or unspecified at issue).
    pub ops_executed: u64,
    /// Slot operations squashed at issue (predicate false).
    pub ops_squashed: u64,
    /// Stall cycles waiting on operands still in flight.
    pub stall_operand: u64,
    /// Stall cycles waiting for store-buffer space.
    pub stall_sb_full: u64,
    /// Stall cycles in fault handlers and pipeline refill.
    pub stall_busy: u64,
    /// Speculative-exception recoveries taken.
    pub recoveries: u64,
    /// Non-fatal faults handled.
    pub faults_handled: u64,
    /// Region transfers (taken exits plus fall-through entries).
    pub region_transfers: u64,
    /// Buffered speculative entries (register shadows and stores) whose
    /// predicate resolved true and committed into sequential state.
    pub commits: u64,
    /// Buffered speculative entries squashed — by a false predicate, a
    /// region exit, recovery entry, or the final drain.
    pub squashes: u64,
    /// Stall cycles waiting for instruction fetch (I$ miss or a
    /// multi-cycle fixed fetch latency).  Always 0 under
    /// [`MemoryModel::Perfect`](crate::MemoryModel::Perfect).
    pub stall_ifetch: u64,
    /// Operand-stall cycles attributable to an in-flight load that
    /// missed the D$ (carved out of what would otherwise count as
    /// `stall_operand`).  Always 0 under a perfect D$.
    pub stall_load_miss: u64,
    /// I$ probes (one per word fetch started).
    pub icache_accesses: u64,
    /// I$ misses.
    pub icache_misses: u64,
    /// D$ probes (one per load reaching memory).
    pub dcache_accesses: u64,
    /// D$ misses.
    pub dcache_misses: u64,
}

/// The result of a completed VLIW run.
#[derive(Clone, PartialEq, Debug)]
pub struct VliwResult {
    /// Total cycles.
    pub cycles: u64,
    /// The execution counters.  [`VliwResult`] derefs here, so
    /// `result.recoveries` and friends read through unchanged.
    pub stats: RunStats,
    /// Final sequential register values.
    pub regs: Vec<i64>,
    /// Final memory.
    pub memory: Memory,
    /// The event log (empty unless the sink records events).
    pub events: Vec<Event>,
}

impl std::ops::Deref for VliwResult {
    type Target = RunStats;

    fn deref(&self) -> &RunStats {
        &self.stats
    }
}

impl VliwResult {
    /// The observable architectural result: `live_out` register values plus
    /// final memory cells — directly comparable with
    /// `psb_scalar::RunResult::observable`.
    pub fn observable(&self, live_out: &[Reg]) -> (Vec<i64>, Vec<i64>) {
        (
            live_out.iter().map(|r| self.regs[r.index()]).collect(),
            self.memory.cells().to_vec(),
        )
    }
}

#[derive(Clone, PartialEq, Debug)]
enum Mode {
    Normal,
    Recovery { epc: usize, future: Ccr },
}

/// A register write still in the pipeline (a load's two-cycle latency).
#[derive(Clone, Copy, PartialEq, Debug)]
struct InFlight {
    /// End-of-cycle time at which the write lands.
    ready_end: u64,
    /// The word that issued it (for rollback bookkeeping).
    word: usize,
    dest: Reg,
    value: i64,
    pred: Predicate,
    exc: bool,
    /// True if this load missed the D$ — operand stalls blocked on it
    /// are charged to memory ([`StallKind::LoadMiss`]).
    missed: bool,
}

#[derive(Clone, Copy, PartialEq, Debug)]
struct PendingWrite {
    dest: Reg,
    value: i64,
    pred: Predicate,
    /// Predicate value observed at issue (`True` → sequential write).
    nonspec: bool,
    exc: bool,
}

#[derive(Clone, Copy, PartialEq, Debug)]
struct PendingStore {
    addr: i64,
    value: i64,
    pred: Predicate,
    spec: bool,
    exc: bool,
}

/// The predicating VLIW machine, generic over its [`TraceSink`].
///
/// The default sink is the [`EventLog`] (recording only when
/// [`MachineConfig::record_events`] is set); [`NullSink`](crate::NullSink)
/// monomorphizes every observability hook away, and
/// [`CountersSink`](crate::CountersSink) builds a profile without storing
/// events.
#[derive(Clone, Debug)]
pub struct VliwMachine<'p, S: TraceSink = EventLog> {
    prog: &'p VliwProgram,
    /// The program decoded once into dense `Copy` arenas; read every cycle
    /// by [`Engine::Predecoded`], ignored by [`Engine::Legacy`].  Shared
    /// (`Arc`) so a compiled artifact's arena is borrowed by every machine
    /// built over it instead of being re-lowered per construction.
    decoded: Arc<DecodedProgram>,
    cfg: MachineConfig,
    regs: PredicatedRegFile,
    sb: PredicatedStoreBuffer,
    memory: Memory,
    ccr: Ccr,
    pc: usize,
    rpc: usize,
    mode: Mode,
    cycle: u64,
    busy_until: u64,
    inflight: Vec<InFlight>,
    /// The memory timing model's per-machine state (cache contents and
    /// the in-progress word fetch).
    mem: MemorySystem,
    /// Ready time of the most recently issued in-flight write — loads
    /// return in order (a hit behind a miss waits; see
    /// [`VliwMachine::push_inflight`]).
    last_load_ready: u64,
    touched_faults: BTreeSet<i64>,
    sink: S,
    stats: RunStats,
    /// Reusable issue buffer for the tabled engine: taken at issue,
    /// recycled (cleared, allocations kept) at end of cycle, so
    /// steady-state issue never touches the allocator.
    scratch: CycleOut,
}

/// What `issue` decided for the end of the cycle.
#[derive(Clone, Debug, Default)]
struct CycleOut {
    writes: Vec<PendingWrite>,
    stores: Vec<PendingStore>,
    conds: Vec<(CondReg, bool)>,
    jump: Option<usize>,
    halt: bool,
}

/// What `issue` produced: a word's effects, or the reason it stalled.
enum IssueOutcome {
    Issued(CycleOut),
    Stalled(StallKind),
}

/// What one call to [`VliwMachine::step_cycle`] did.
///
/// Lockstep drivers (the batched sweep engine in [`crate::batch`]) use
/// this to decide whether a lane takes another cycle or retires; the
/// solo [`VliwMachine::run_into_sink`] loop is the canonical consumer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// The machine took one architectural cycle (issue, stall or
    /// recovery entry) and can step again.
    Running,
    /// The machine issued its halt word this cycle.  No further cycles
    /// may be stepped; the caller must finish with
    /// [`VliwMachine::finish`] to drain buffered state into a
    /// [`VliwResult`].
    Halted,
}

/// A fused normal-mode slot handler from the generated dispatch table
/// (predicate evaluation + execution in one call).
type SlotNormalFn<'p, S> =
    fn(&mut VliwMachine<'p, S>, DecodedSlot, &mut CycleOut) -> Result<(), VliwError>;

/// A fused recovery-mode slot handler from the generated dispatch table.
type SlotRecoveryFn<'p, S> =
    fn(&mut VliwMachine<'p, S>, DecodedSlot, &Ccr, &mut CycleOut) -> Result<(), VliwError>;

/// A per-class specialised word-issue path from the generated dispatch
/// table.
type WordIssueFn<'p, S> = fn(&mut VliwMachine<'p, S>) -> Result<IssueOutcome, VliwError>;

impl<'p> VliwMachine<'p> {
    /// Creates a machine over `prog` with the default [`EventLog`] sink
    /// (recording iff [`MachineConfig::record_events`]).
    ///
    /// # Errors
    ///
    /// [`VliwError::Malformed`] if the program fails validation or exceeds
    /// the configured issue width or function-unit counts.
    pub fn new(prog: &'p VliwProgram, cfg: MachineConfig) -> Result<VliwMachine<'p>, VliwError> {
        let sink = EventLog::new(cfg.record_events);
        VliwMachine::with_sink(prog, cfg, sink)
    }

    /// Creates a machine and runs the program to completion.
    ///
    /// # Errors
    ///
    /// See [`VliwMachine::run`].
    pub fn run_program(prog: &VliwProgram, cfg: MachineConfig) -> Result<VliwResult, VliwError> {
        VliwMachine::new(prog, cfg)?.run()
    }

    /// Like [`VliwMachine::run_program`], but borrows a pre-decoded arena
    /// (e.g. a compiled artifact's) instead of re-lowering `prog`.
    ///
    /// # Errors
    ///
    /// See [`VliwMachine::run`]; additionally [`VliwError::Malformed`] if
    /// `decoded` does not match `prog`.
    pub fn run_program_decoded(
        prog: &VliwProgram,
        decoded: Arc<DecodedProgram>,
        cfg: MachineConfig,
    ) -> Result<VliwResult, VliwError> {
        let sink = EventLog::new(cfg.record_events);
        VliwMachine::with_sink_decoded(prog, decoded, cfg, sink)?.run()
    }
}

impl<'p, S: TraceSink> VliwMachine<'p, S> {
    /// Creates a machine over `prog` feeding the given [`TraceSink`].
    ///
    /// # Errors
    ///
    /// [`VliwError::Malformed`] if the program fails validation or exceeds
    /// the configured issue width or function-unit counts.
    pub fn with_sink(
        prog: &'p VliwProgram,
        cfg: MachineConfig,
        sink: S,
    ) -> Result<VliwMachine<'p, S>, VliwError> {
        Self::validate_for(prog, &cfg)?;
        let decoded = Arc::new(DecodedProgram::decode(prog));
        Ok(Self::build(prog, decoded, cfg, sink))
    }

    /// Creates a machine over `prog` that shares a pre-decoded arena
    /// instead of re-lowering the program at construction.  `decoded`
    /// must be the decoding of `prog` (a compiled artifact guarantees
    /// this by construction).
    ///
    /// # Errors
    ///
    /// [`VliwError::Malformed`] if the program fails validation, exceeds
    /// the configured issue width or function-unit counts, the arena's
    /// word count does not match the program's, or the arena's generated
    /// dispatch lowering fails
    /// [`DecodedProgram::validate_dispatch`] — a corrupted table index is
    /// rejected here, at construction, never at issue time.
    pub fn with_sink_decoded(
        prog: &'p VliwProgram,
        decoded: Arc<DecodedProgram>,
        cfg: MachineConfig,
        sink: S,
    ) -> Result<VliwMachine<'p, S>, VliwError> {
        Self::validate_for(prog, &cfg)?;
        if decoded.words.len() != prog.words.len() {
            return Err(VliwError::Malformed(
                "pre-decoded arena does not match the program".to_string(),
            ));
        }
        decoded
            .validate_dispatch()
            .map_err(|e| VliwError::Malformed(format!("pre-decoded arena rejected: {e}")))?;
        Ok(Self::build(prog, decoded, cfg, sink))
    }

    /// The construction-time checks shared by every constructor: program
    /// validation plus issue-width and function-unit admission.
    pub(crate) fn validate_for(prog: &VliwProgram, cfg: &MachineConfig) -> Result<(), VliwError> {
        cfg.memory
            .validate()
            .map_err(|e| VliwError::Malformed(format!("memory model: {e}")))?;
        prog.validate().map_err(VliwError::Malformed)?;
        for (addr, word) in prog.words.iter().enumerate() {
            if word.slots.len() > cfg.issue_width {
                return Err(VliwError::Malformed(format!(
                    "word {addr} has {} slots, issue width is {}",
                    word.slots.len(),
                    cfg.issue_width
                )));
            }
            let count = |c: FuClass| word.slots.iter().filter(|s| s.op.fu_class() == c).count();
            let r = cfg.resources;
            if count(FuClass::Alu) > r.alu
                || count(FuClass::Branch) > r.branch
                || count(FuClass::Load) > r.load
                || count(FuClass::Store) > r.store
            {
                return Err(VliwError::Malformed(format!(
                    "word {addr} exceeds function-unit resources"
                )));
            }
        }
        Ok(())
    }

    /// Assembles the machine once validation has passed.
    pub(crate) fn build(
        prog: &'p VliwProgram,
        decoded: Arc<DecodedProgram>,
        cfg: MachineConfig,
        sink: S,
    ) -> VliwMachine<'p, S> {
        let mut regs =
            PredicatedRegFile::new(NUM_REGS, cfg.shadow_mode).with_commit_scan(cfg.commit_scan);
        for &(r, v) in &prog.init_regs {
            regs.init(r, v);
        }
        VliwMachine {
            decoded,
            regs,
            sb: PredicatedStoreBuffer::new(cfg.store_buffer_size).with_commit_scan(cfg.commit_scan),
            memory: Memory::from_image(&prog.memory),
            ccr: Ccr::new(prog.num_conds),
            pc: 0,
            rpc: 0,
            mode: Mode::Normal,
            cycle: 1,
            busy_until: 0,
            inflight: Vec::new(),
            mem: MemorySystem::new(&cfg.memory, cfg.load_latency),
            last_load_ready: 0,
            touched_faults: BTreeSet::new(),
            sink,
            cfg,
            prog,
            stats: RunStats::default(),
            scratch: CycleOut::default(),
        }
    }

    /// Creates a machine over `prog` with `sink` and runs it to
    /// completion, returning the result together with the sink (so a
    /// counters sink's report can be read back).
    ///
    /// # Errors
    ///
    /// See [`VliwMachine::run`].
    pub fn run_with_sink(
        prog: &VliwProgram,
        cfg: MachineConfig,
        sink: S,
    ) -> Result<(VliwResult, S), VliwError> {
        VliwMachine::with_sink(prog, cfg, sink)?.run_into_sink()
    }

    /// Like [`VliwMachine::run_with_sink`], but borrows a pre-decoded
    /// arena instead of re-lowering `prog`.
    ///
    /// # Errors
    ///
    /// See [`VliwMachine::with_sink_decoded`] and [`VliwMachine::run`].
    pub fn run_with_sink_decoded(
        prog: &VliwProgram,
        decoded: Arc<DecodedProgram>,
        cfg: MachineConfig,
        sink: S,
    ) -> Result<(VliwResult, S), VliwError> {
        VliwMachine::with_sink_decoded(prog, decoded, cfg, sink)?.run_into_sink()
    }

    fn read_src(&self, s: Src, reader_pred: &Predicate) -> i64 {
        match s {
            Src::Imm(v) => v,
            Src::Reg { reg, shadow: false } => self.regs.read_seq(reg),
            Src::Reg { reg, shadow: true } => self.regs.read_shadow(reg, reader_pred),
        }
    }

    /// Classifies an access: `Ok(())` = fine, `Err(Some(fault))` = fatal,
    /// `Err(None)` = untouched fault-once page.
    fn classify_access(&self, addr: i64) -> Result<(), Option<MemFault>> {
        if let Err(f) = self.memory.check(addr) {
            return Err(Some(f));
        }
        if self.cfg.fault_once_addrs.contains(&addr) && !self.touched_faults.contains(&addr) {
            return Err(None);
        }
        Ok(())
    }

    /// Handles a non-fatal fault inline: touch the page and stall.
    fn handle_fault(&mut self, addr: i64) {
        self.touched_faults.insert(addr);
        self.busy_until = self.busy_until.max(self.cycle) + self.cfg.fault_penalty;
        self.stats.faults_handled += 1;
        let cycle = self.cycle;
        self.sink.push(|| Event::FaultHandled { cycle, addr });
    }

    /// A load's data and timing: store-buffer forwarding first (at the
    /// memory model's bypass latency, no D$ probe), then real memory
    /// (probing the D$ under a cache model).  Returns
    /// `(value, latency, missed)`.
    fn load_timed(&mut self, addr: i64, pred: &Predicate) -> (i64, u64, bool) {
        match self.sb.forward(addr, pred) {
            Some(v) => (v, self.mem.bypass_latency(), false),
            None => {
                let value = self.memory.read(addr).expect("address classified valid");
                let (latency, missed) = self.mem.load_latency(addr);
                (value, latency, missed)
            }
        }
    }

    /// Queues an in-flight register write with **in-order return**: its
    /// ready time is clamped to be no earlier than the previously
    /// issued write's, so variable per-access latencies (a D$ hit
    /// issued behind a miss) cannot invert writeback order against
    /// program order.  Under any uniform latency — every non-cache
    /// model — ready times are already monotone in issue cycle, so the
    /// clamp is a no-op and the pre-refactor trajectory is preserved
    /// bit-for-bit.
    fn push_inflight(
        &mut self,
        latency: u64,
        dest: Reg,
        value: i64,
        pred: Predicate,
        exc: bool,
        missed: bool,
    ) {
        let ready_end = (self.cycle + latency - 1).max(self.last_load_ready);
        self.last_load_ready = ready_end;
        self.inflight.push(InFlight {
            ready_end,
            word: self.pc,
            dest,
            value,
            pred,
            exc,
            missed,
        });
    }

    /// Counts and classifies an operand stall: charged to
    /// [`StallKind::LoadMiss`] when an in-flight load that missed the
    /// D$ is among the writes being waited on, else to
    /// [`StallKind::Operand`].
    fn operand_stall(&mut self) -> StallKind {
        if self.inflight.iter().any(|f| f.missed) {
            self.stats.stall_load_miss += 1;
            StallKind::LoadMiss
        } else {
            self.stats.stall_operand += 1;
            StallKind::Operand
        }
    }

    /// Bitmask of registers targeted by in-flight writes (the pre-decoded
    /// path's hazard screen intersects this with the word's source union).
    #[inline]
    fn inflight_dest_mask(&self) -> u64 {
        self.inflight
            .iter()
            .fold(0u64, |m, f| m | (1u64 << f.dest.index()))
    }

    /// Bitmask of registers whose in-flight write matures in a *later*
    /// cycle.  Entries maturing this cycle are excluded: they write back
    /// before this word's direct writes apply, so program order holds
    /// without an interlock.
    #[inline]
    fn waw_pending_mask(&self) -> u64 {
        let cycle = self.cycle;
        self.inflight
            .iter()
            .filter(|f| f.ready_end > cycle)
            .fold(0u64, |m, f| m | (1u64 << f.dest.index()))
    }

    /// Whether any in-flight write targets a register read by a live slot
    /// of this word (read-after-write), or written by one whose in-flight
    /// write matures in a later cycle (the write-after-write interlock —
    /// without it, a variable-latency load still in flight would land
    /// *after* a newer direct write to the same register and clobber it;
    /// under a uniform latency every in-flight entry matures by the next
    /// word's issue cycle, so the interlock never fires there).
    fn operand_in_flight(&self, word: &MultiOp) -> bool {
        if self.inflight.is_empty() {
            return false;
        }
        let pending = self.waw_pending_mask();
        for slot in &word.slots {
            if slot.pred.eval(&self.ccr) == Cond::False {
                continue;
            }
            for s in slot.op.srcs() {
                if let Some(r) = s.as_reg() {
                    if self.inflight.iter().any(|f| f.dest == r) {
                        return true;
                    }
                }
            }
            if pending != 0 {
                if let SlotOp::Op(op) = slot.op {
                    if let Some(rd) = op.def_reg() {
                        if pending & (1u64 << rd.index()) != 0 {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// The write-after-write half of [`operand_in_flight`] on the decoded
    /// arena: whether a live slot of `range` writes a register whose
    /// in-flight write matures in a later cycle.  Shared by the
    /// pre-decoded and tabled screens (their read-after-write half stays
    /// mask-based on the fast path).
    ///
    /// [`operand_in_flight`]: Self::operand_in_flight
    fn waw_in_flight_decoded(&self, range: std::ops::Range<usize>) -> bool {
        let pending = self.waw_pending_mask();
        if pending == 0 {
            return false;
        }
        for i in range {
            let s = self.decoded.slots[i];
            if let SlotOp::Op(op) = s.op {
                if let Some(rd) = op.def_reg() {
                    if pending & (1u64 << rd.index()) != 0 && s.pred.eval(&self.ccr) != Cond::False
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Region transfer bookkeeping: close the old region's speculative
    /// state, reset the CCR, and record the new RPC.
    fn enter_region(&mut self, target: usize) {
        let cycle = self.cycle;
        // Same inertness proof as the tabled commit-pass gate: squashing
        // an empty file/buffer is observation-free, so the tabled engine
        // skips the pass outright (the interpretive engines keep the
        // literal hardware behaviour).
        let tabled = matches!(self.cfg.engine, Engine::Tabled);
        if !tabled || self.regs.has_buffered() {
            self.stats.squashes += self.regs.squash_spec(cycle, &mut self.sink);
        }
        if !tabled || !self.sb.is_empty() {
            self.stats.squashes += self.sb.squash_spec(cycle, &mut self.sink);
        }
        // Resolve in-flight writes against the old region's conditions:
        // a specified-true pred will still land sequentially; everything
        // else is dead on this exit path.
        self.inflight.retain_mut(|f| match f.pred.eval(&self.ccr) {
            Cond::True => {
                f.pred = Predicate::always();
                true
            }
            _ => false,
        });
        self.ccr.reset();
        self.pc = target;
        self.rpc = target;
        self.stats.region_transfers += 1;
        self.sink.push(|| Event::RegionEnter {
            cycle,
            addr: target,
        });
    }

    /// End-of-cycle writeback of matured in-flight loads; the destination
    /// is chosen by the predicate *now* (commit during execution).  Runs
    /// every cycle, including stall cycles.
    fn writeback_inflight(&mut self) -> Result<(), VliwError> {
        let cycle = self.cycle;
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].ready_end > cycle {
                i += 1;
                continue;
            }
            let f = self.inflight.swap_remove(i);
            match f.pred.eval(&self.ccr) {
                Cond::True => {
                    assert!(!f.exc, "exception commit missed by the detection scan");
                    self.regs.write_seq(f.dest, f.value);
                    self.sink.push(|| Event::SeqWrite { cycle, reg: f.dest });
                }
                Cond::False => {}
                Cond::Unspecified => {
                    self.regs
                        .write_spec(f.dest, f.value, f.pred, f.exc)
                        .map_err(|c| VliwError::ShadowConflict { reg: c.reg, cycle })?;
                    self.sink.push(|| Event::SpecWrite {
                        cycle,
                        loc: StateLoc::Reg(f.dest),
                        pred: f.pred,
                        exc: f.exc,
                    });
                }
            }
        }
        Ok(())
    }

    fn apply_writes(&mut self, writes: &[PendingWrite]) -> Result<(), VliwError> {
        let cycle = self.cycle;
        for w in writes {
            if w.nonspec {
                self.regs.write_seq(w.dest, w.value);
                self.sink.push(|| Event::SeqWrite { cycle, reg: w.dest });
            } else {
                self.regs
                    .write_spec(w.dest, w.value, w.pred, w.exc)
                    .map_err(|c| VliwError::ShadowConflict { reg: c.reg, cycle })?;
                self.sink.push(|| Event::SpecWrite {
                    cycle,
                    loc: StateLoc::Reg(w.dest),
                    pred: w.pred,
                    exc: w.exc,
                });
            }
        }
        Ok(())
    }

    /// Whether a buffered or in-flight speculative exception would commit
    /// under `candidate`.
    fn exception_would_commit(&self, candidate: &Ccr) -> bool {
        self.regs.has_exception_commit(candidate)
            || self.sb.has_exception_commit(candidate)
            || self
                .inflight
                .iter()
                .any(|f| f.exc && f.pred.eval(candidate) == Cond::True)
    }

    /// Enters recovery mode: suppress the CCR update (the candidate becomes
    /// the future CCR), invalidate all speculative state, force-complete
    /// the pipeline, and roll back to the region top.
    fn enter_recovery(&mut self, issued_word: usize, candidate: Ccr) {
        let cycle = self.cycle;
        let rpc = self.rpc;
        self.sink.push(|| Event::RecoveryStart {
            cycle,
            epc: issued_word,
            rpc,
        });
        // Force-complete in-flight writes from earlier words; the rolled
        // back word's own effects are discarded entirely (it re-executes).
        let ccr = self.ccr;
        let mut landed = Vec::new();
        self.inflight.retain(|f| {
            if f.word == issued_word {
                return false;
            }
            if f.pred.eval(&ccr) == Cond::True {
                landed.push((f.dest, f.value, f.exc));
            }
            false
        });
        for (dest, value, exc) in landed {
            assert!(
                !exc,
                "true-predicate exception must have been detected earlier"
            );
            self.regs.write_seq(dest, value);
            self.sink.push(|| Event::SeqWrite { cycle, reg: dest });
        }
        self.stats.squashes += self.regs.squash_spec(cycle, &mut self.sink);
        self.stats.squashes += self.sb.squash_spec(cycle, &mut self.sink);
        self.mode = Mode::Recovery {
            epc: issued_word,
            future: candidate,
        };
        self.pc = self.rpc;
        self.busy_until = self.busy_until.max(self.cycle) + self.cfg.rollback_penalty;
        self.stats.recoveries += 1;
    }

    /// Issues the word at PC in normal mode, or reports why it stalled.
    fn issue_normal(&mut self) -> Result<IssueOutcome, VliwError> {
        let word = self.prog.words[self.pc].clone();
        // Stall checks.
        if self.operand_in_flight(&word) {
            let kind = self.operand_stall();
            return Ok(IssueOutcome::Stalled(kind));
        }
        let mut store_count = 0;
        for slot in &word.slots {
            let v = slot.pred.eval(&self.ccr);
            match slot.op {
                SlotOp::Jump { .. } | SlotOp::Halt | SlotOp::CmpBr { .. }
                    if v == Cond::Unspecified =>
                {
                    return Err(self.control_unspecified_error(slot.pred));
                }
                SlotOp::Op(Op::Store { .. }) if v != Cond::False => store_count += 1,
                _ => {}
            }
        }
        if self.sb.would_overflow(store_count) {
            self.stats.stall_sb_full += 1;
            return Ok(IssueOutcome::Stalled(StallKind::SbFull));
        }

        let mut out = CycleOut::default();
        self.stats.words_issued += 1;
        for slot in &word.slots {
            let pv = slot.pred.eval(&self.ccr);
            if pv == Cond::False {
                self.stats.ops_squashed += 1;
                continue;
            }
            self.exec_slot_normal(slot.pred, slot.op, pv == Cond::True, &mut out)?;
        }
        Ok(IssueOutcome::Issued(out))
    }

    /// Issues the word at PC in normal mode via the pre-decoded arena.
    ///
    /// Semantically identical to [`issue_normal`](Self::issue_normal) —
    /// both funnel live slots through
    /// [`exec_slot_normal`](Self::exec_slot_normal) — but reads `Copy`
    /// slots out of [`DecodedProgram`] instead of cloning the `MultiOp`,
    /// screens operand hazards with one mask intersection, and skips the
    /// store/control prepass when the word's metadata proves it idle.
    fn issue_normal_decoded(&mut self) -> Result<IssueOutcome, VliwError> {
        let w = self.decoded.words[self.pc];
        let range = DecodedProgram::slot_range(&w);
        // Operand hazard: the union mask screens the whole word; only on a
        // hit does the precise, predicate-gated per-slot check run.
        if !self.inflight.is_empty() {
            let inflight = self.inflight_dest_mask();
            if w.src_union & inflight != 0 {
                for i in range.clone() {
                    let s = self.decoded.slots[i];
                    if s.src_mask & inflight != 0 && s.pred.eval(&self.ccr) != Cond::False {
                        let kind = self.operand_stall();
                        return Ok(IssueOutcome::Stalled(kind));
                    }
                }
            }
            if self.waw_in_flight_decoded(range.clone()) {
                let kind = self.operand_stall();
                return Ok(IssueOutcome::Stalled(kind));
            }
        }
        // Store/control prepass, skipped when the word has neither (an
        // empty store buffer check can never stall: `would_overflow(0)` is
        // always false).
        if w.has_control || w.store_slots > 0 {
            let mut store_count = 0;
            for i in range.clone() {
                let s = self.decoded.slots[i];
                match s.op {
                    SlotOp::Jump { .. } | SlotOp::Halt | SlotOp::CmpBr { .. }
                        if s.pred.eval(&self.ccr) == Cond::Unspecified =>
                    {
                        return Err(self.control_unspecified_error(s.pred));
                    }
                    SlotOp::Op(Op::Store { .. }) if s.pred.eval(&self.ccr) != Cond::False => {
                        store_count += 1;
                    }
                    _ => {}
                }
            }
            if self.sb.would_overflow(store_count) {
                self.stats.stall_sb_full += 1;
                return Ok(IssueOutcome::Stalled(StallKind::SbFull));
            }
        }

        let mut out = CycleOut::default();
        self.stats.words_issued += 1;
        for i in range {
            let s = self.decoded.slots[i];
            let pv = s.pred.eval(&self.ccr);
            if pv == Cond::False {
                self.stats.ops_squashed += 1;
                continue;
            }
            self.exec_slot_normal(s.pred, s.op, pv == Cond::True, &mut out)?;
        }
        Ok(IssueOutcome::Issued(out))
    }

    // ------------------------------------------------------------------
    // Shared per-op execution.  Every issue engine — legacy, pre-decoded
    // and tabled — funnels live slots through these methods, so the
    // per-op semantics cannot drift between engines.  The cold error
    // constructors keep the exact diagnostic strings shared too.
    // ------------------------------------------------------------------

    #[cold]
    fn double_jump_error(&self) -> VliwError {
        VliwError::Malformed(format!("word {}: two taken jumps in one word", self.pc))
    }

    #[cold]
    fn control_unspecified_error(&self, pred: Predicate) -> VliwError {
        // In an in-order machine no later word can specify the condition,
        // so this can never resolve: the scheduler must place
        // condition-sets strictly before dependent control transfers.
        VliwError::Malformed(format!(
            "word {}: control-transfer predicate {pred} unspecified at issue",
            self.pc
        ))
    }

    #[cold]
    fn recovery_jump_true_error(&self) -> VliwError {
        VliwError::Malformed(format!(
            "word {}: jump predicate true under the current condition during recovery",
            self.pc
        ))
    }

    #[cold]
    fn recovery_unspecified_jump_error(&self) -> VliwError {
        VliwError::Malformed(format!(
            "word {}: unspecified jump predicate during recovery",
            self.pc
        ))
    }

    #[cold]
    fn recovery_condset_error(&self) -> VliwError {
        // Condition-sets carry `alw` predicates, so they can never be
        // unspecified; validated at load time.
        VliwError::Malformed(format!(
            "word {}: predicated condition-set during recovery",
            self.pc
        ))
    }

    /// A slot's generated handler index disagrees with its operation.
    /// Unreachable after [`DecodedProgram::validate_dispatch`]; kept as a
    /// typed error so a table mismatch can never become a wrong-handler
    /// silent misexecution.
    #[cold]
    fn dispatch_mismatch_error(&self) -> VliwError {
        VliwError::Malformed(format!(
            "word {}: dispatch table does not match the slot operation",
            self.pc
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_alu(
        &mut self,
        pred: Predicate,
        op: AluOp,
        rd: Reg,
        a: Src,
        b: Src,
        nonspec: bool,
        out: &mut CycleOut,
    ) {
        let v = op.apply(self.read_src(a, &pred), self.read_src(b, &pred));
        out.writes.push(PendingWrite {
            dest: rd,
            value: v,
            pred,
            nonspec,
            exc: false,
        });
        self.stats.ops_executed += 1;
    }

    fn exec_copy(&mut self, pred: Predicate, rd: Reg, src: Src, nonspec: bool, out: &mut CycleOut) {
        let v = self.read_src(src, &pred);
        out.writes.push(PendingWrite {
            dest: rd,
            value: v,
            pred,
            nonspec,
            exc: false,
        });
        self.stats.ops_executed += 1;
    }

    fn exec_setcond(
        &mut self,
        pred: Predicate,
        c: CondReg,
        cmp: CmpOp,
        a: Src,
        b: Src,
        out: &mut CycleOut,
    ) {
        let v = cmp.apply(self.read_src(a, &pred), self.read_src(b, &pred));
        out.conds.push((c, v));
        self.stats.ops_executed += 1;
    }

    fn exec_load_normal(
        &mut self,
        pred: Predicate,
        rd: Reg,
        base: Src,
        offset: i64,
        nonspec: bool,
    ) -> Result<(), VliwError> {
        let addr = self.read_src(base, &pred).wrapping_add(offset);
        let (value, latency, exc, missed) = match self.classify_access(addr) {
            Ok(()) => {
                let (v, lat, missed) = self.load_timed(addr, &pred);
                (v, lat, false, missed)
            }
            Err(fault) if nonspec => match fault {
                Some(f) => {
                    return Err(VliwError::Fault {
                        word: self.pc,
                        fault: f,
                    })
                }
                None => {
                    self.handle_fault(addr);
                    let (v, lat, missed) = self.load_timed(addr, &pred);
                    (v, lat, false, missed)
                }
            },
            Err(_) => {
                // Buffer the speculative exception.  The access never
                // reaches memory, so it does not probe the D$.
                let cycle = self.cycle;
                self.sink.push(|| Event::ExcLatched { cycle, addr });
                (0, self.mem.bypass_latency(), true, false)
            }
        };
        self.push_inflight(latency, rd, value, pred, exc, missed);
        self.stats.ops_executed += 1;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_store_normal(
        &mut self,
        pred: Predicate,
        base: Src,
        offset: i64,
        value: Src,
        nonspec: bool,
        out: &mut CycleOut,
    ) -> Result<(), VliwError> {
        let addr = self.read_src(base, &pred).wrapping_add(offset);
        let v = self.read_src(value, &pred);
        let exc = match self.classify_access(addr) {
            Ok(()) => false,
            Err(fault) if nonspec => match fault {
                Some(f) => {
                    return Err(VliwError::Fault {
                        word: self.pc,
                        fault: f,
                    })
                }
                None => {
                    self.handle_fault(addr);
                    false
                }
            },
            Err(_) => {
                let cycle = self.cycle;
                self.sink.push(|| Event::ExcLatched { cycle, addr });
                true
            }
        };
        out.stores.push(PendingStore {
            addr,
            value: v,
            pred,
            spec: !nonspec,
            exc,
        });
        self.stats.ops_executed += 1;
        Ok(())
    }

    fn exec_jump(
        &mut self,
        target: usize,
        nonspec: bool,
        out: &mut CycleOut,
    ) -> Result<(), VliwError> {
        if nonspec {
            if out.jump.is_some() {
                return Err(self.double_jump_error());
            }
            out.jump = Some(target);
        }
        self.stats.ops_executed += 1;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_cmpbr(
        &mut self,
        pred: Predicate,
        c: Option<CondReg>,
        cmp: CmpOp,
        a: Src,
        b: Src,
        target: usize,
        out: &mut CycleOut,
    ) -> Result<(), VliwError> {
        let v = cmp.apply(self.read_src(a, &pred), self.read_src(b, &pred));
        if let Some(c) = c {
            out.conds.push((c, v));
        }
        if v {
            if out.jump.is_some() {
                return Err(self.double_jump_error());
            }
            out.jump = Some(target);
        }
        self.stats.ops_executed += 1;
        Ok(())
    }

    fn exec_halt(&mut self, out: &mut CycleOut) {
        out.halt = true;
        self.stats.ops_executed += 1;
    }

    fn exec_load_recovery(
        &mut self,
        pred: Predicate,
        rd: Reg,
        base: Src,
        offset: i64,
        future: &Ccr,
    ) -> Result<(), VliwError> {
        let addr = self.read_src(base, &pred).wrapping_add(offset);
        let (value, latency, exc, missed) = match self.classify_access(addr) {
            Ok(()) => {
                let (v, lat, missed) = self.load_timed(addr, &pred);
                (v, lat, false, missed)
            }
            Err(fault) => match pred.eval(future) {
                Cond::True => match fault {
                    Some(f) => {
                        return Err(VliwError::Fault {
                            word: self.pc,
                            fault: f,
                        })
                    }
                    None => {
                        // The original exception: handle it.
                        self.handle_fault(addr);
                        let (v, lat, missed) = self.load_timed(addr, &pred);
                        (v, lat, false, missed)
                    }
                },
                // Ignored and re-buffered exceptions never reach
                // memory, so they do not probe the D$.
                Cond::False => (0, self.mem.bypass_latency(), false, false),
                Cond::Unspecified => {
                    // Re-buffered: still speculative in recovery.
                    let cycle = self.cycle;
                    self.sink.push(|| Event::ExcLatched { cycle, addr });
                    (0, self.mem.bypass_latency(), true, false)
                }
            },
        };
        self.push_inflight(latency, rd, value, pred, exc, missed);
        self.stats.ops_executed += 1;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_store_recovery(
        &mut self,
        pred: Predicate,
        base: Src,
        offset: i64,
        value: Src,
        future: &Ccr,
        out: &mut CycleOut,
    ) -> Result<(), VliwError> {
        let addr = self.read_src(base, &pred).wrapping_add(offset);
        let v = self.read_src(value, &pred);
        let exc = match self.classify_access(addr) {
            Ok(()) => false,
            Err(fault) => match pred.eval(future) {
                Cond::True => match fault {
                    Some(f) => {
                        return Err(VliwError::Fault {
                            word: self.pc,
                            fault: f,
                        })
                    }
                    None => {
                        self.handle_fault(addr);
                        false
                    }
                },
                Cond::False => false,
                Cond::Unspecified => {
                    let cycle = self.cycle;
                    self.sink.push(|| Event::ExcLatched { cycle, addr });
                    true
                }
            },
        };
        out.stores.push(PendingStore {
            addr,
            value: v,
            pred,
            spec: true,
            exc,
        });
        self.stats.ops_executed += 1;
        Ok(())
    }

    /// Executes one live (predicate not false) slot in normal mode,
    /// accumulating its effects into `out`.  Shared by the legacy and
    /// pre-decoded issue paths; the tabled engine reaches the same
    /// `exec_*` methods through its generated handler table.
    fn exec_slot_normal(
        &mut self,
        pred: Predicate,
        op: SlotOp,
        nonspec: bool,
        out: &mut CycleOut,
    ) -> Result<(), VliwError> {
        match op {
            SlotOp::Op(Op::Nop) => {}
            SlotOp::Op(Op::Alu { op, rd, a, b }) => self.exec_alu(pred, op, rd, a, b, nonspec, out),
            SlotOp::Op(Op::Copy { rd, src }) => self.exec_copy(pred, rd, src, nonspec, out),
            SlotOp::Op(Op::SetCond { c, cmp, a, b }) => self.exec_setcond(pred, c, cmp, a, b, out),
            SlotOp::Op(Op::Load {
                rd, base, offset, ..
            }) => return self.exec_load_normal(pred, rd, base, offset, nonspec),
            SlotOp::Op(Op::Store {
                base,
                offset,
                value,
                ..
            }) => return self.exec_store_normal(pred, base, offset, value, nonspec, out),
            SlotOp::Jump { target } => return self.exec_jump(target, nonspec, out),
            SlotOp::CmpBr {
                c,
                cmp,
                a,
                b,
                target,
            } => return self.exec_cmpbr(pred, c, cmp, a, b, target, out),
            SlotOp::Halt => self.exec_halt(out),
        }
        Ok(())
    }

    /// Issues the word at PC in recovery mode (Section 3.5): instructions
    /// whose predicate is specified under the current condition are
    /// squashed; unspecified ones re-execute speculatively, and a re-raised
    /// exception is judged against the *future* condition.
    fn issue_recovery(&mut self, future: &Ccr) -> Result<IssueOutcome, VliwError> {
        let word = self.prog.words[self.pc].clone();
        if self.operand_in_flight(&word) {
            let kind = self.operand_stall();
            return Ok(IssueOutcome::Stalled(kind));
        }
        let mut store_count = 0;
        for slot in &word.slots {
            if slot.pred.eval(&self.ccr) == Cond::Unspecified {
                if let SlotOp::Op(Op::Store { .. }) = slot.op {
                    store_count += 1;
                }
            }
        }
        if self.sb.would_overflow(store_count) {
            self.stats.stall_sb_full += 1;
            return Ok(IssueOutcome::Stalled(StallKind::SbFull));
        }

        let mut out = CycleOut::default();
        self.stats.words_issued += 1;
        for slot in &word.slots {
            if slot.pred.eval(&self.ccr) != Cond::Unspecified {
                // Category 1: already updated the sequential state, or must
                // not update any state.  Jumps and halts here always carry
                // specified-false predicates (a true one would have left
                // the region originally).
                if matches!(slot.op, SlotOp::Jump { .. } | SlotOp::Halt)
                    && slot.pred.eval(&self.ccr) == Cond::True
                {
                    return Err(self.recovery_jump_true_error());
                }
                self.stats.ops_squashed += 1;
                continue;
            }
            self.exec_slot_recovery(slot.pred, slot.op, future, &mut out)?;
        }
        Ok(IssueOutcome::Issued(out))
    }

    /// Issues the word at PC in recovery mode via the pre-decoded arena —
    /// the counterpart of [`issue_normal_decoded`](Self::issue_normal_decoded),
    /// funnelling unspecified slots through
    /// [`exec_slot_recovery`](Self::exec_slot_recovery).
    fn issue_recovery_decoded(&mut self, future: &Ccr) -> Result<IssueOutcome, VliwError> {
        let w = self.decoded.words[self.pc];
        let range = DecodedProgram::slot_range(&w);
        if !self.inflight.is_empty() {
            let inflight = self.inflight_dest_mask();
            if w.src_union & inflight != 0 {
                for i in range.clone() {
                    let s = self.decoded.slots[i];
                    if s.src_mask & inflight != 0 && s.pred.eval(&self.ccr) != Cond::False {
                        let kind = self.operand_stall();
                        return Ok(IssueOutcome::Stalled(kind));
                    }
                }
            }
            if self.waw_in_flight_decoded(range.clone()) {
                let kind = self.operand_stall();
                return Ok(IssueOutcome::Stalled(kind));
            }
        }
        if w.store_slots > 0 {
            let mut store_count = 0;
            for i in range.clone() {
                let s = self.decoded.slots[i];
                if let SlotOp::Op(Op::Store { .. }) = s.op {
                    if s.pred.eval(&self.ccr) == Cond::Unspecified {
                        store_count += 1;
                    }
                }
            }
            if self.sb.would_overflow(store_count) {
                self.stats.stall_sb_full += 1;
                return Ok(IssueOutcome::Stalled(StallKind::SbFull));
            }
        }

        let mut out = CycleOut::default();
        self.stats.words_issued += 1;
        for i in range {
            let s = self.decoded.slots[i];
            if s.pred.eval(&self.ccr) != Cond::Unspecified {
                if matches!(s.op, SlotOp::Jump { .. } | SlotOp::Halt)
                    && s.pred.eval(&self.ccr) == Cond::True
                {
                    return Err(self.recovery_jump_true_error());
                }
                self.stats.ops_squashed += 1;
                continue;
            }
            self.exec_slot_recovery(s.pred, s.op, future, &mut out)?;
        }
        Ok(IssueOutcome::Issued(out))
    }

    /// Executes one unspecified-predicate slot in recovery mode,
    /// accumulating its effects into `out`.  A re-raised exception is
    /// judged against the *future* condition.  Shared by the legacy and
    /// pre-decoded issue paths; the tabled engine reaches the same
    /// `exec_*` methods through its generated handler table.
    fn exec_slot_recovery(
        &mut self,
        pred: Predicate,
        op: SlotOp,
        future: &Ccr,
        out: &mut CycleOut,
    ) -> Result<(), VliwError> {
        match op {
            SlotOp::Jump { .. } | SlotOp::Halt => Err(self.recovery_unspecified_jump_error()),
            SlotOp::CmpBr { .. } | SlotOp::Op(Op::SetCond { .. }) => {
                Err(self.recovery_condset_error())
            }
            SlotOp::Op(Op::Nop) => Ok(()),
            SlotOp::Op(Op::Alu { op, rd, a, b }) => {
                self.exec_alu(pred, op, rd, a, b, false, out);
                Ok(())
            }
            SlotOp::Op(Op::Copy { rd, src }) => {
                self.exec_copy(pred, rd, src, false, out);
                Ok(())
            }
            SlotOp::Op(Op::Load {
                rd, base, offset, ..
            }) => self.exec_load_recovery(pred, rd, base, offset, future),
            SlotOp::Op(Op::Store {
                base,
                offset,
                value,
                ..
            }) => self.exec_store_recovery(pred, base, offset, value, future, out),
        }
    }

    // ------------------------------------------------------------------
    // Tabled engine: build-time-generated dispatch.
    //
    // `build.rs` emits the table macros and the index functions decode
    // uses to lower each slot/word; the associated consts below expand
    // those macros into dense function-pointer tables.  Each table entry
    // is a monomorphisation of `h_normal`/`h_recovery`/`wi_normal` over
    // const generics, so the op-kind match and the specialisation
    // branches below constant-fold away — one direct-called handler per
    // (kind, always) pair and per word class, with predicate evaluation,
    // hazard screening and execution fused into the single call.
    // ------------------------------------------------------------------

    /// Normal-mode slot handlers, indexed by [`DecodedSlot::handler`].
    const SLOT_NORMAL: [SlotNormalFn<'p, S>; dispatch::NUM_SLOT_HANDLERS] =
        dispatch::slot_normal_table!();

    /// Recovery-mode slot handlers, indexed by [`DecodedSlot::handler`].
    const SLOT_RECOVERY: [SlotRecoveryFn<'p, S>; dispatch::NUM_SLOT_HANDLERS] =
        dispatch::slot_recovery_table!();

    /// Specialised normal-mode issue paths, indexed by
    /// [`DecodedWord::class`](crate::DecodedWord::class).
    const WORD_NORMAL: [WordIssueFn<'p, S>; dispatch::NUM_WORD_CLASSES] =
        dispatch::word_normal_table!();

    /// One generated normal-mode slot handler: predicate evaluation fused
    /// with execution for op kind `KIND`.  `ALWAYS` instantiations skip
    /// the CCR evaluation entirely (an `alw` predicate is always true).
    fn h_normal<const KIND: u8, const ALWAYS: bool>(
        &mut self,
        s: DecodedSlot,
        out: &mut CycleOut,
    ) -> Result<(), VliwError> {
        let pv = if ALWAYS {
            Cond::True
        } else {
            s.pred.eval(&self.ccr)
        };
        if pv == Cond::False {
            self.stats.ops_squashed += 1;
            return Ok(());
        }
        let nonspec = pv == Cond::True;
        match KIND {
            dispatch::K_NOP => Ok(()),
            dispatch::K_ALU => {
                let SlotOp::Op(Op::Alu { op, rd, a, b }) = s.op else {
                    return Err(self.dispatch_mismatch_error());
                };
                self.exec_alu(s.pred, op, rd, a, b, nonspec, out);
                Ok(())
            }
            dispatch::K_COPY => {
                let SlotOp::Op(Op::Copy { rd, src }) = s.op else {
                    return Err(self.dispatch_mismatch_error());
                };
                self.exec_copy(s.pred, rd, src, nonspec, out);
                Ok(())
            }
            dispatch::K_SET_COND => {
                let SlotOp::Op(Op::SetCond { c, cmp, a, b }) = s.op else {
                    return Err(self.dispatch_mismatch_error());
                };
                self.exec_setcond(s.pred, c, cmp, a, b, out);
                Ok(())
            }
            dispatch::K_LOAD => {
                let SlotOp::Op(Op::Load {
                    rd, base, offset, ..
                }) = s.op
                else {
                    return Err(self.dispatch_mismatch_error());
                };
                self.exec_load_normal(s.pred, rd, base, offset, nonspec)
            }
            dispatch::K_STORE => {
                let SlotOp::Op(Op::Store {
                    base,
                    offset,
                    value,
                    ..
                }) = s.op
                else {
                    return Err(self.dispatch_mismatch_error());
                };
                self.exec_store_normal(s.pred, base, offset, value, nonspec, out)
            }
            dispatch::K_JUMP => {
                let SlotOp::Jump { target } = s.op else {
                    return Err(self.dispatch_mismatch_error());
                };
                self.exec_jump(target, nonspec, out)
            }
            dispatch::K_CMP_BR => {
                let SlotOp::CmpBr {
                    c,
                    cmp,
                    a,
                    b,
                    target,
                } = s.op
                else {
                    return Err(self.dispatch_mismatch_error());
                };
                self.exec_cmpbr(s.pred, c, cmp, a, b, target, out)
            }
            dispatch::K_HALT => {
                self.exec_halt(out);
                Ok(())
            }
            _ => Err(self.dispatch_mismatch_error()),
        }
    }

    /// One generated recovery-mode slot handler, the fused counterpart of
    /// the squash/re-execute split in
    /// [`issue_recovery_decoded`](Self::issue_recovery_decoded) +
    /// [`exec_slot_recovery`](Self::exec_slot_recovery).
    fn h_recovery<const KIND: u8, const ALWAYS: bool>(
        &mut self,
        s: DecodedSlot,
        future: &Ccr,
        out: &mut CycleOut,
    ) -> Result<(), VliwError> {
        let pv = if ALWAYS {
            Cond::True
        } else {
            s.pred.eval(&self.ccr)
        };
        if pv != Cond::Unspecified {
            // Category 1: already updated the sequential state, or must
            // not update any state.  Jumps and halts here always carry
            // specified-false predicates (a true one would have left the
            // region originally).
            if (KIND == dispatch::K_JUMP || KIND == dispatch::K_HALT) && pv == Cond::True {
                return Err(self.recovery_jump_true_error());
            }
            self.stats.ops_squashed += 1;
            return Ok(());
        }
        match KIND {
            dispatch::K_JUMP | dispatch::K_HALT => Err(self.recovery_unspecified_jump_error()),
            dispatch::K_CMP_BR | dispatch::K_SET_COND => Err(self.recovery_condset_error()),
            dispatch::K_NOP => Ok(()),
            dispatch::K_ALU => {
                let SlotOp::Op(Op::Alu { op, rd, a, b }) = s.op else {
                    return Err(self.dispatch_mismatch_error());
                };
                self.exec_alu(s.pred, op, rd, a, b, false, out);
                Ok(())
            }
            dispatch::K_COPY => {
                let SlotOp::Op(Op::Copy { rd, src }) = s.op else {
                    return Err(self.dispatch_mismatch_error());
                };
                self.exec_copy(s.pred, rd, src, false, out);
                Ok(())
            }
            dispatch::K_LOAD => {
                let SlotOp::Op(Op::Load {
                    rd, base, offset, ..
                }) = s.op
                else {
                    return Err(self.dispatch_mismatch_error());
                };
                self.exec_load_recovery(s.pred, rd, base, offset, future)
            }
            dispatch::K_STORE => {
                let SlotOp::Op(Op::Store {
                    base,
                    offset,
                    value,
                    ..
                }) = s.op
                else {
                    return Err(self.dispatch_mismatch_error());
                };
                self.exec_store_recovery(s.pred, base, offset, value, future, out)
            }
            _ => Err(self.dispatch_mismatch_error()),
        }
    }

    /// One generated normal-mode word-issue path, specialised by word
    /// class: `COND` = any slot carries a conditional predicate, `STORE` =
    /// the word contains store slots, `CONTROL` = it contains a control
    /// transfer.  Classes without a given feature skip that prepass
    /// entirely — e.g. an all-`alw`, store-and-control-free word goes
    /// straight from the mask hazard screen to its slot handlers.
    fn wi_normal<const COND: bool, const STORE: bool, const CONTROL: bool>(
        &mut self,
    ) -> Result<IssueOutcome, VliwError> {
        let w = self.decoded.words[self.pc];
        let range = DecodedProgram::slot_range(&w);
        // Operand hazard: the union mask screens the whole word; only on a
        // hit does the precise, predicate-gated per-slot check run.
        if !self.inflight.is_empty() {
            let inflight = self.inflight_dest_mask();
            if w.src_union & inflight != 0 {
                for i in range.clone() {
                    let s = self.decoded.slots[i];
                    if s.src_mask & inflight != 0
                        && (!COND || s.pred.eval(&self.ccr) != Cond::False)
                    {
                        let kind = self.operand_stall();
                        return Ok(IssueOutcome::Stalled(kind));
                    }
                }
            }
            if self.waw_in_flight_decoded(range.clone()) {
                let kind = self.operand_stall();
                return Ok(IssueOutcome::Stalled(kind));
            }
        }
        if CONTROL || STORE {
            if COND {
                // Conditional predicates present: the full store/control
                // prepass, as in `issue_normal_decoded`.
                let mut store_count = 0;
                for i in range.clone() {
                    let s = self.decoded.slots[i];
                    match s.op {
                        SlotOp::Jump { .. } | SlotOp::Halt | SlotOp::CmpBr { .. }
                            if CONTROL && s.pred.eval(&self.ccr) == Cond::Unspecified =>
                        {
                            return Err(self.control_unspecified_error(s.pred));
                        }
                        SlotOp::Op(Op::Store { .. })
                            if STORE && s.pred.eval(&self.ccr) != Cond::False =>
                        {
                            store_count += 1;
                        }
                        _ => {}
                    }
                }
                if STORE && self.sb.would_overflow(store_count) {
                    self.stats.stall_sb_full += 1;
                    return Ok(IssueOutcome::Stalled(StallKind::SbFull));
                }
            } else if STORE && self.sb.would_overflow(w.store_slots as usize) {
                // Every predicate is `alw` (evaluates true), so every
                // store slot counts and no control transfer can be
                // unspecified — the prepass reduces to one overflow check
                // against the pre-counted store slots.
                self.stats.stall_sb_full += 1;
                return Ok(IssueOutcome::Stalled(StallKind::SbFull));
            }
        }

        let mut out = self.take_scratch();
        self.stats.words_issued += 1;
        for i in range {
            let s = self.decoded.slots[i];
            Self::SLOT_NORMAL[s.handler as usize](self, s, &mut out)?;
        }
        Ok(IssueOutcome::Issued(out))
    }

    /// Issues the word at PC in normal mode via the generated dispatch
    /// tables: the word's class selects a specialised issue path, which
    /// calls one fused handler per slot.
    #[inline]
    fn issue_normal_tabled(&mut self) -> Result<IssueOutcome, VliwError> {
        Self::WORD_NORMAL[self.decoded.words[self.pc].class as usize](self)
    }

    /// Issues the word at PC in recovery mode via the generated dispatch
    /// tables — recovery cycles are rare, so only the per-slot dispatch is
    /// tabled; the screening prepasses match
    /// [`issue_recovery_decoded`](Self::issue_recovery_decoded).
    fn issue_recovery_tabled(&mut self, future: &Ccr) -> Result<IssueOutcome, VliwError> {
        let w = self.decoded.words[self.pc];
        let range = DecodedProgram::slot_range(&w);
        if !self.inflight.is_empty() {
            let inflight = self.inflight_dest_mask();
            if w.src_union & inflight != 0 {
                for i in range.clone() {
                    let s = self.decoded.slots[i];
                    if s.src_mask & inflight != 0 && s.pred.eval(&self.ccr) != Cond::False {
                        let kind = self.operand_stall();
                        return Ok(IssueOutcome::Stalled(kind));
                    }
                }
            }
            if self.waw_in_flight_decoded(range.clone()) {
                let kind = self.operand_stall();
                return Ok(IssueOutcome::Stalled(kind));
            }
        }
        if w.store_slots > 0 {
            let mut store_count = 0;
            for i in range.clone() {
                let s = self.decoded.slots[i];
                if let SlotOp::Op(Op::Store { .. }) = s.op {
                    if s.pred.eval(&self.ccr) == Cond::Unspecified {
                        store_count += 1;
                    }
                }
            }
            if self.sb.would_overflow(store_count) {
                self.stats.stall_sb_full += 1;
                return Ok(IssueOutcome::Stalled(StallKind::SbFull));
            }
        }

        let mut out = self.take_scratch();
        self.stats.words_issued += 1;
        for i in range {
            let s = self.decoded.slots[i];
            Self::SLOT_RECOVERY[s.handler as usize](self, s, future, &mut out)?;
        }
        Ok(IssueOutcome::Issued(out))
    }

    /// Takes the reusable issue buffer (empty, but with its vector
    /// allocations intact from the previous cycle's
    /// [`recycle`](Self::recycle)).
    #[inline]
    fn take_scratch(&mut self) -> CycleOut {
        std::mem::take(&mut self.scratch)
    }

    /// Returns an issue buffer to the scratch slot for the next cycle,
    /// clearing its contents but keeping its allocations.
    #[inline]
    fn recycle(&mut self, mut out: CycleOut) {
        out.writes.clear();
        out.stores.clear();
        out.conds.clear();
        out.jump = None;
        out.halt = false;
        self.scratch = out;
    }

    /// Emits the end-of-cycle [`CycleSample`].  The occupancy reads only
    /// happen when the sink wants samples, so a non-sampling sink pays
    /// nothing here.
    #[inline]
    fn take_sample(&mut self, pc: usize, stall: Option<StallKind>) {
        if self.sink.sample_enabled() {
            let s = CycleSample {
                cycle: self.cycle,
                pc,
                region: self.rpc,
                shadow_occupancy: self.regs.spec_count(),
                sb_occupancy: self.sb.len(),
                unspec_conds: self.ccr.iter().filter(|(_, c)| !c.is_specified()).count(),
                stall,
            };
            self.sink.sample(&s);
        }
    }

    /// [`take_sample`](Self::take_sample) plus the clock tick.
    #[inline]
    fn end_cycle(&mut self, pc: usize, stall: Option<StallKind>) {
        self.take_sample(pc, stall);
        self.cycle += 1;
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// [`VliwError::Fault`] when a fatal memory fault commits;
    /// [`VliwError::CycleLimit`] past the configured limit;
    /// [`VliwError::ShadowConflict`] on a single-shadow collision;
    /// [`VliwError::Malformed`] on an invariant violation.
    pub fn run(self) -> Result<VliwResult, VliwError> {
        self.run_into_sink().map(|(res, _)| res)
    }

    /// Runs the program to completion, returning the result together with
    /// the sink so its accumulated state (e.g. a
    /// [`CountersSink`](crate::CountersSink) report) can be read back.
    ///
    /// # Errors
    ///
    /// See [`VliwMachine::run`].
    pub fn run_into_sink(mut self) -> Result<(VliwResult, S), VliwError> {
        loop {
            match self.step_cycle()? {
                StepOutcome::Running => {}
                StepOutcome::Halted => return self.finish(),
            }
        }
    }

    /// Takes exactly one architectural cycle: commit pass, store retire,
    /// recovery-exit check, issue (or stall), writeback, and the
    /// end-of-cycle sample.  This is the *entire* per-cycle semantics of
    /// the machine — [`run_into_sink`](Self::run_into_sink) is a bare
    /// loop over it, and the batched lockstep driver
    /// ([`BatchedMachine`](crate::BatchedMachine)) interleaves calls
    /// across lanes, so a lane's trajectory is byte-equal to a solo run
    /// by construction rather than by re-implementation.
    ///
    /// After [`StepOutcome::Halted`] the caller must not step again;
    /// finish with [`finish`](Self::finish).
    ///
    /// # Errors
    ///
    /// See [`VliwMachine::run`].
    pub fn step_cycle(&mut self) -> Result<StepOutcome, VliwError> {
        // The tabled engine's cycle driver proves the commit hardware
        // inert before invoking it: a pass over an empty register file or
        // store buffer commits nothing, squashes nothing and emits no
        // events, so skipping it is observation-free (the three-way
        // engine differential holds the logs byte-equal).  The
        // interpretive engines keep the paper's literal always-on pass,
        // exactly as [`CommitScan::Naive`] stays the reference strategy
        // for the indexed scan.
        let tabled = matches!(self.cfg.engine, Engine::Tabled);
        {
            if self.cycle > self.cfg.max_cycles {
                return Err(VliwError::CycleLimit(self.cfg.max_cycles));
            }
            // 1. Commit pass.
            let ccr = self.ccr;
            if !tabled || self.regs.has_buffered() {
                let (rc, rs) = self.regs.tick(&ccr, self.cycle, &mut self.sink);
                self.stats.commits += rc;
                self.stats.squashes += rs;
            }
            if !tabled || !self.sb.is_empty() {
                let (sc, ss) = self.sb.tick(&ccr, self.cycle, &mut self.sink);
                self.stats.commits += sc;
                self.stats.squashes += ss;
                // 2. Store retire.
                self.sb.retire(&mut self.memory, self.cfg.retire_per_cycle);
            }
            // 3. Recovery exit.
            if let Mode::Recovery { epc, ref future } = self.mode {
                if self.pc == epc {
                    self.ccr = *future;
                    self.mode = Mode::Normal;
                    let cycle = self.cycle;
                    self.sink.push(|| Event::RecoveryEnd { cycle });
                    // Installing the future condition resolves the state
                    // rebuffered during recovery (Section 3.5).  This must
                    // happen *before* the EPC word issues: it re-executes
                    // this same cycle, and a stale shadow committing on the
                    // next cycle's pass would clobber its sequential writes.
                    // The `defer_recovery_exit_commit` escape hatch skips
                    // the pass to let the fuzzer prove it catches the bug.
                    if !self.cfg.defer_recovery_exit_commit {
                        let ccr = self.ccr;
                        let (rc, rs) = self.regs.tick(&ccr, self.cycle, &mut self.sink);
                        let (sc, ss) = self.sb.tick(&ccr, self.cycle, &mut self.sink);
                        self.stats.commits += rc + sc;
                        self.stats.squashes += rs + ss;
                    }
                }
            }
            // 4. Issue.
            let issued_word = self.pc;
            let outcome = if self.busy_until >= self.cycle {
                self.stats.stall_busy += 1;
                IssueOutcome::Stalled(StallKind::Busy)
            } else {
                if self.pc >= self.prog.words.len() {
                    return Err(VliwError::Malformed(
                        "execution fell off the program end".into(),
                    ));
                }
                // Front-end gate shared by all three engines: the word
                // must have arrived from the I$ (or fixed-latency fetch)
                // before it can issue.  Perfect memory never stalls here.
                if self.mem.fetch_stalls(self.pc, self.cycle) {
                    self.stats.stall_ifetch += 1;
                    IssueOutcome::Stalled(StallKind::IFetch)
                } else {
                    match self.mode {
                        Mode::Normal => match self.cfg.engine {
                            Engine::Tabled => self.issue_normal_tabled()?,
                            Engine::Predecoded => self.issue_normal_decoded()?,
                            Engine::Legacy => self.issue_normal()?,
                        },
                        Mode::Recovery { ref future, .. } => {
                            let future = *future;
                            match self.cfg.engine {
                                Engine::Tabled => self.issue_recovery_tabled(&future)?,
                                Engine::Predecoded => self.issue_recovery_decoded(&future)?,
                                Engine::Legacy => self.issue_recovery(&future)?,
                            }
                        }
                    }
                }
            };
            // 5. End of cycle: writebacks run unconditionally (loads mature
            // during stalls too); then this word's effects.
            self.writeback_inflight()?;
            let out = match outcome {
                IssueOutcome::Issued(out) => out,
                IssueOutcome::Stalled(kind) => {
                    self.end_cycle(issued_word, Some(kind));
                    return Ok(StepOutcome::Running);
                }
            };
            if !out.conds.is_empty() {
                let mut candidate = self.ccr;
                for &(c, v) in &out.conds {
                    candidate.set(c, v);
                }
                let store_exc = out
                    .stores
                    .iter()
                    .any(|s| s.exc && s.pred.eval(&candidate) == Cond::True);
                if store_exc || self.exception_would_commit(&candidate) {
                    // Suppress the CCR update; discard this entire word
                    // (writes, stores and control) — it will fully
                    // re-execute at the EPC after recovery.
                    self.enter_recovery(issued_word, candidate);
                    self.recycle(out);
                    self.end_cycle(issued_word, None);
                    return Ok(StepOutcome::Running);
                }
                for &(c, v) in &out.conds {
                    self.ccr.set(c, v);
                    let cycle = self.cycle;
                    self.sink.push(|| Event::CondSet {
                        cycle,
                        c,
                        value: Cond::from_bool(v),
                    });
                }
            }
            self.apply_writes(&out.writes)?;
            for s in &out.stores {
                self.sb.append(
                    s.addr,
                    s.value,
                    s.pred,
                    s.spec,
                    s.exc,
                    self.cycle,
                    &mut self.sink,
                );
            }
            if out.halt {
                // The halt cycle is sampled before the drain (the drain's
                // store-retire cycles have no PC to attribute).
                self.take_sample(issued_word, None);
                return Ok(StepOutcome::Halted);
            }
            if let Some(target) = out.jump {
                self.enter_region(target);
                self.busy_until = self.busy_until.max(self.cycle) + self.cfg.taken_jump_penalty;
            } else {
                let next = self.pc + 1;
                let falls_into_region = match self.cfg.engine {
                    // Pre-resolved at decode time — no per-cycle search.
                    Engine::Tabled | Engine::Predecoded => {
                        self.decoded.words[self.pc].falls_into_region
                    }
                    Engine::Legacy => {
                        next < self.prog.words.len()
                            && self.prog.region_starts.binary_search(&next).is_ok()
                    }
                };
                if falls_into_region {
                    self.enter_region(next);
                } else {
                    self.pc = next;
                }
            }
            self.recycle(out);
            self.end_cycle(issued_word, None);
        }
        Ok(StepOutcome::Running)
    }

    /// Halt: close the final region and drain the pipeline and store
    /// buffer, charging one cycle per D-cache write beyond the halt
    /// cycle.  Must only be called after
    /// [`step_cycle`](Self::step_cycle) returned
    /// [`StepOutcome::Halted`]; consuming the machine makes stepping a
    /// retired lane impossible by construction.
    ///
    /// # Errors
    ///
    /// [`VliwError::Malformed`] if an unresolved speculative store is
    /// still buffered at halt (an invariant violation).
    pub fn finish(mut self) -> Result<(VliwResult, S), VliwError> {
        let cycle = self.cycle;
        self.stats.squashes += self.regs.squash_spec(cycle, &mut self.sink);
        self.stats.squashes += self.sb.squash_spec(cycle, &mut self.sink);
        // Resolve in-flight writes (same rule as a region exit).
        let ccr = self.ccr;
        let mut landed = Vec::new();
        for f in self.inflight.drain(..) {
            if f.pred.eval(&ccr) == Cond::True {
                landed.push((f.dest, f.value));
            }
        }
        for (dest, value) in landed {
            self.regs.write_seq(dest, value);
            self.sink.push(|| Event::SeqWrite { cycle, reg: dest });
        }
        let mut cycles = self.cycle;
        while !self.sb.is_empty() {
            let n = self.sb.retire(&mut self.memory, self.cfg.retire_per_cycle);
            if n > 0 {
                cycles += 1;
            } else if !self.sb.is_empty() {
                return Err(VliwError::Malformed(
                    "unresolved speculative store left in the buffer at halt".into(),
                ));
            }
        }
        // Fold the memory system's access/miss totals into the stats
        // (all zero under non-cache models, keeping Perfect identical).
        let mc = self.mem.counters();
        self.stats.icache_accesses = mc.icache_accesses;
        self.stats.icache_misses = mc.icache_misses;
        self.stats.dcache_accesses = mc.dcache_accesses;
        self.stats.dcache_misses = mc.dcache_misses;
        let mut sink = self.sink;
        Ok((
            VliwResult {
                cycles,
                stats: self.stats,
                regs: self.regs.seq_values(),
                memory: self.memory,
                events: sink.take_events(),
            },
            sink,
        ))
    }
}

#[cfg(test)]
mod tests;
