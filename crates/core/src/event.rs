//! The machine event log: one record per architecturally visible action,
//! used to reproduce Table 1 and to debug schedules.

use psb_isa::{Cond, CondReg, Predicate, Reg};
use std::fmt;

mod audit;

pub use audit::{audit_events, AuditViolation};

/// A buffered-state location: a register's shadow entry or a store-buffer
/// entry (numbered in append order within the run).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StateLoc {
    /// A general register.
    Reg(Reg),
    /// The `n`-th store-buffer entry appended during the run (1-based, so
    /// the paper's `sb1` prints naturally).
    Sb(u64),
}

impl fmt::Display for StateLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateLoc::Reg(r) => write!(f, "{r}"),
            StateLoc::Sb(n) => write!(f, "sb{n}"),
        }
    }
}

/// One machine event, stamped with the cycle it occurred in.
#[derive(Clone, PartialEq, Debug)]
pub enum Event {
    /// A result was written to the sequential state.
    SeqWrite {
        /// Cycle of the write.
        cycle: u64,
        /// Destination register.
        reg: Reg,
    },
    /// A result was written to the speculative state with its predicate.
    SpecWrite {
        /// Cycle of the write.
        cycle: u64,
        /// Destination location.
        loc: StateLoc,
        /// The predicate buffered with the result.
        pred: Predicate,
        /// Whether the E flag was set (an outstanding speculative
        /// exception).
        exc: bool,
    },
    /// A non-speculative store entered the store buffer.
    SeqStore {
        /// Cycle of the append.
        cycle: u64,
        /// The buffer entry.
        loc: StateLoc,
    },
    /// A buffered speculative result committed.
    Commit {
        /// Cycle of the commit.
        cycle: u64,
        /// The committed location.
        loc: StateLoc,
    },
    /// A buffered speculative result was squashed.
    Squash {
        /// Cycle of the squash.
        cycle: u64,
        /// The squashed location.
        loc: StateLoc,
    },
    /// A condition-set instruction specified a CCR entry.
    CondSet {
        /// Cycle of the update.
        cycle: u64,
        /// The CCR entry.
        c: CondReg,
        /// The new value.
        value: Cond,
    },
    /// Control transferred to a region.
    RegionEnter {
        /// Cycle of the transfer.
        cycle: u64,
        /// The region entry word address (the new RPC).
        addr: usize,
    },
    /// An outstanding speculative exception committed; the machine entered
    /// recovery mode.
    RecoveryStart {
        /// Cycle the exception was detected.
        cycle: u64,
        /// The exception commit point (resume address).
        epc: usize,
        /// The roll-back address (RPC).
        rpc: usize,
    },
    /// Recovery mode completed; the future condition was copied to the CCR.
    RecoveryEnd {
        /// Cycle recovery ended.
        cycle: u64,
    },
    /// A non-fatal fault was handled (page-touch model).
    FaultHandled {
        /// Cycle of the handling.
        cycle: u64,
        /// The touched address.
        addr: i64,
    },
    /// A speculative access faulted at issue and latched its E flag on the
    /// in-flight result (Section 3.4: the exception travels with the value
    /// until it reaches a shadow register or store-buffer entry).  A
    /// recovery can trigger on this latched exception before the result
    /// ever reaches buffered state, so the audit accepts it as exception
    /// evidence alongside E-flagged [`Event::SpecWrite`]s.
    ExcLatched {
        /// Cycle the access faulted.
        cycle: u64,
        /// The faulting address.
        addr: i64,
    },
}

impl Event {
    /// The cycle this event is stamped with.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::SeqWrite { cycle, .. }
            | Event::SpecWrite { cycle, .. }
            | Event::SeqStore { cycle, .. }
            | Event::Commit { cycle, .. }
            | Event::Squash { cycle, .. }
            | Event::CondSet { cycle, .. }
            | Event::RegionEnter { cycle, .. }
            | Event::RecoveryStart { cycle, .. }
            | Event::RecoveryEnd { cycle, .. }
            | Event::FaultHandled { cycle, .. }
            | Event::ExcLatched { cycle, .. } => cycle,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::SeqWrite { cycle, reg } => write!(f, "[{cycle}] seq write {reg}"),
            Event::SpecWrite {
                cycle,
                loc,
                pred,
                exc,
            } => {
                write!(
                    f,
                    "[{cycle}] spec write {loc} pred {pred}{}",
                    if *exc { " E" } else { "" }
                )
            }
            Event::SeqStore { cycle, loc } => write!(f, "[{cycle}] seq store {loc}"),
            Event::Commit { cycle, loc } => write!(f, "[{cycle}] commit {loc}"),
            Event::Squash { cycle, loc } => write!(f, "[{cycle}] squash {loc}"),
            Event::CondSet { cycle, c, value } => write!(f, "[{cycle}] {c} := {value}"),
            Event::RegionEnter { cycle, addr } => write!(f, "[{cycle}] enter region W{addr}"),
            Event::RecoveryStart { cycle, epc, rpc } => {
                write!(
                    f,
                    "[{cycle}] exception committed: roll back to W{rpc}, EPC=W{epc}"
                )
            }
            Event::RecoveryEnd { cycle } => write!(f, "[{cycle}] recovery complete"),
            Event::FaultHandled { cycle, addr } => write!(f, "[{cycle}] fault handled @{addr}"),
            Event::ExcLatched { cycle, addr } => {
                write!(f, "[{cycle}] speculative exception latched @{addr}")
            }
        }
    }
}

/// An event sink that records only when enabled, so disabled runs pay no
/// allocation cost (events are constructed lazily).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct EventLog {
    enabled: bool,
    events: Vec<Event>,
}

impl EventLog {
    /// Creates a log; `enabled = false` makes every push a no-op.
    pub fn new(enabled: bool) -> EventLog {
        EventLog {
            enabled,
            events: Vec::new(),
        }
    }

    /// Records the event produced by `f` if recording is enabled.
    #[inline]
    pub fn push(&mut self, f: impl FnOnce() -> Event) {
        if self.enabled {
            self.events.push(f());
        }
    }

    /// Whether recording is enabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an already-constructed event unconditionally (the
    /// [`TraceSink`](crate::TraceSink) entry point; the enabled check
    /// happens in the trait's `push`).
    #[inline]
    pub(crate) fn push_event(&mut self, ev: Event) {
        self.events.push(ev);
    }

    /// Takes the recorded events out, leaving the log empty.
    pub(crate) fn drain_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the log, returning the recorded events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_respects_enabled_flag() {
        let mut off = EventLog::new(false);
        off.push(|| Event::RecoveryEnd { cycle: 1 });
        assert!(off.events().is_empty());
        let mut on = EventLog::new(true);
        on.push(|| Event::RecoveryEnd { cycle: 1 });
        assert_eq!(on.events().len(), 1);
    }

    #[test]
    fn display_and_cycle() {
        let e = Event::Commit {
            cycle: 7,
            loc: StateLoc::Reg(Reg::new(2)),
        };
        assert_eq!(e.cycle(), 7);
        assert_eq!(e.to_string(), "[7] commit r2");
        let e = Event::SpecWrite {
            cycle: 2,
            loc: StateLoc::Sb(1),
            pred: Predicate::always().and_pos(CondReg::new(0)),
            exc: false,
        };
        assert_eq!(e.to_string(), "[2] spec write sb1 pred c0");
    }
}
