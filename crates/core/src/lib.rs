//! The predicating VLIW machine — the paper's architectural contribution.
//!
//! This crate implements the execution model of Sections 3.1–3.5 of
//! *Unconstrained Speculative Execution with Predicated State Buffering*
//! (Ando, Nakanishi, Hara, Nakaya; ISCA 1995):
//!
//! * an in-order, N-issue VLIW datapath with a **control path** that
//!   evaluates each slot's predicate against the condition code register
//!   (CCR) at issue and at writeback;
//! * a **predicated register file** ([`PredicatedRegFile`]): every register
//!   has a sequential storage and shadow (speculative) storage with
//!   W/V/E flags and a stored predicate that dedicated per-entry hardware
//!   re-evaluates every cycle, committing (flip W, clear V) or squashing
//!   (clear V) the buffered value;
//! * a **predicated store buffer** ([`PredicatedStoreBuffer`]): a FIFO in
//!   which both speculative and non-speculative stores wait, with the same
//!   per-entry predicate evaluation, retiring only valid non-speculative
//!   heads to the D-cache;
//! * **speculative exception buffering and future-condition recovery**:
//!   a faulting speculative instruction merely sets the E flag of its
//!   destination entry; if the entry's predicate later commits, the machine
//!   saves the would-be CCR into the *future CCR*, invalidates all
//!   speculative state, rolls back to the region top (RPC) and re-executes
//!   in *recovery mode* — re-running only instructions whose predicate is
//!   unspecified under the current condition, and handling a re-raised
//!   exception only if its predicate is true under the future condition.
//!
//! # Timing model
//!
//! One word issues per cycle (stalling on unavailable operands, on jumps
//! with unspecified predicates, on a full store buffer, and during fault
//! handling).  Single-cycle results are readable the next cycle; loads have
//! a two-cycle latency.  Commits/squashes driven by a condition set in
//! cycle *t* take effect in cycle *t+1*, matching Table 1 of the paper.
//! Taken region-exit jumps are free (the paper's BTB assumption).
//!
//! # Example
//!
//! ```
//! use psb_core::{MachineConfig, VliwMachine};
//! use psb_isa::{MultiOp, Slot, SlotOp, VliwProgram, MemImage};
//!
//! let prog = VliwProgram {
//!     name: "halt".into(),
//!     words: vec![MultiOp::new(vec![Slot::alw(SlotOp::Halt)])],
//!     region_starts: vec![0],
//!     num_conds: 4,
//!     init_regs: vec![],
//!     memory: MemImage::zeroed(16),
//!     live_out: vec![],
//! };
//! let result = VliwMachine::run_program(&prog, MachineConfig::default()).unwrap();
//! assert_eq!(result.cycles, 1);
//! ```

#![warn(missing_docs)]

pub mod batch;
mod config;
mod decoded;
mod dispatch;
mod event;
mod invariant;
mod machine;
mod mem;
mod obs;
mod regfile;
mod storebuf;

pub use batch::{BatchReport, BatchedMachine, LaneOutcome};
pub use config::{CommitScan, Engine, MachineConfig, ShadowMode};
pub use decoded::{DecodedProgram, DecodedSlot, DecodedWord};
pub use event::{audit_events, AuditViolation, Event, EventLog, StateLoc};
pub use invariant::{InvariantSink, InvariantViolation};
pub use machine::{RunStats, StepOutcome, VliwError, VliwMachine, VliwResult};
pub use mem::{
    CacheConfig, CacheModel, CacheProbe, MemCounters, MemoryModel, MemorySystem, MissKind,
};
pub use obs::{
    CountersSink, CycleSample, Histogram, NullSink, ObsReport, OccupancyStats, RegionProfile,
    StallKind, TraceSink, WordProfile,
};
pub use psb_isa::Resources;
pub use regfile::{PredicatedRegFile, ShadowConflict};
pub use storebuf::PredicatedStoreBuffer;
