//! Pre-decoded program representation for the hot issue path.
//!
//! The legacy issue path re-reads its program every cycle: it clones the
//! [`MultiOp`](psb_isa::MultiOp) word at PC (a `Vec` allocation) and walks
//! [`SlotOp::srcs`] (another allocation per slot) to screen for operand
//! hazards.  The pre-decoded engine instead decodes the whole program once
//! at machine construction into a dense arena of `Copy` slots whose
//! source-register sets are pre-folded into bitmasks, plus per-word
//! metadata that lets the issue loop skip the store/control prepass and
//! the fall-through region lookup when they cannot matter.  The per-cycle
//! issue loop is then allocation-free and hazard screening is a single
//! mask intersection per word.
//!
//! Both engines share the per-slot execution semantics
//! (`VliwMachine::exec_slot_*`), so the decoded representation only
//! changes *how fast* a word is inspected, never *what* it does; the
//! differential fuzz harness holds the two engines to byte-identical
//! event logs.

use psb_isa::{Op, Predicate, SlotOp, VliwProgram, NUM_REGS};

// Source-register sets are u64 bitmasks.
const _: () = assert!(NUM_REGS <= 64, "register masks are u64");

/// One pre-decoded slot: the predicate and operation copied out of the
/// program, plus the set of registers the operation reads.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DecodedSlot {
    /// The slot's commit condition.
    pub pred: Predicate,
    /// The operation.
    pub op: SlotOp,
    /// Bit `r` set iff the operation reads register `r` (shadow or
    /// sequential source alike — both stall on an in-flight write).
    pub src_mask: u64,
}

/// Per-word metadata driving the issue loop's fast paths.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DecodedWord {
    /// Index of this word's first slot in [`DecodedProgram::slots`].
    pub first_slot: u32,
    /// Number of slots in this word.
    pub num_slots: u32,
    /// Union of the slots' [`DecodedSlot::src_mask`]s: when it does not
    /// intersect the in-flight destination mask, no slot can stall on an
    /// operand and the per-slot hazard check is skipped.
    pub src_union: u64,
    /// Number of store slots (counted regardless of predicate).  Zero lets
    /// the issue loop skip the store-buffer overflow prepass entirely.
    pub store_slots: u8,
    /// Whether any slot is a control transfer (jump, compare-and-branch or
    /// halt) whose predicate the prepass must screen.
    pub has_control: bool,
    /// Whether `addr + 1` is a region start, pre-resolving the
    /// fall-through region check's binary search.
    pub falls_into_region: bool,
}

/// A program decoded once into dense slot and word arenas.
///
/// Built by [`DecodedProgram::decode`] at machine construction
/// ([`Engine::Predecoded`](crate::Engine::Predecoded) reads it on every
/// cycle; [`Engine::Legacy`](crate::Engine::Legacy) ignores it and
/// re-decodes per cycle as the differential oracle).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct DecodedProgram {
    /// Per-word metadata, indexed by word address.
    pub words: Vec<DecodedWord>,
    /// All slots, grouped by word (`words[a]` owns
    /// `slots[first_slot..first_slot + num_slots]`).
    pub slots: Vec<DecodedSlot>,
}

/// The set of registers read by `op`, as a bitmask.
fn src_mask(op: &SlotOp) -> u64 {
    op.srcs()
        .iter()
        .filter_map(|s| s.as_reg())
        .fold(0, |m, r| m | (1u64 << r.index()))
}

impl DecodedProgram {
    /// Decodes `prog` into the dense arena form.  Called once per machine
    /// construction; every per-cycle question the issue loop asks is
    /// answered here ahead of time.
    pub fn decode(prog: &VliwProgram) -> DecodedProgram {
        let mut words = Vec::with_capacity(prog.words.len());
        let mut slots = Vec::with_capacity(prog.words.iter().map(|w| w.slots.len()).sum());
        for (addr, word) in prog.words.iter().enumerate() {
            let first_slot = slots.len() as u32;
            let mut src_union = 0u64;
            let mut store_slots = 0u8;
            let mut has_control = false;
            for slot in &word.slots {
                let mask = src_mask(&slot.op);
                src_union |= mask;
                match slot.op {
                    SlotOp::Op(Op::Store { .. }) => store_slots += 1,
                    SlotOp::Jump { .. } | SlotOp::CmpBr { .. } | SlotOp::Halt => {
                        has_control = true;
                    }
                    _ => {}
                }
                slots.push(DecodedSlot {
                    pred: slot.pred,
                    op: slot.op,
                    src_mask: mask,
                });
            }
            let next = addr + 1;
            words.push(DecodedWord {
                first_slot,
                num_slots: word.slots.len() as u32,
                src_union,
                store_slots,
                has_control,
                falls_into_region: next < prog.words.len()
                    && prog.region_starts.binary_search(&next).is_ok(),
            });
        }
        DecodedProgram { words, slots }
    }

    /// The slot index range of `word`.
    #[inline]
    pub fn slot_range(word: &DecodedWord) -> std::ops::Range<usize> {
        let a = word.first_slot as usize;
        a..a + word.num_slots as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{AluOp, MemImage, MemTag, MultiOp, Reg, Slot, Src};

    fn prog() -> VliwProgram {
        let r = Reg::new;
        VliwProgram {
            name: "decode-test".into(),
            words: vec![
                // W0: alu reading r1, r2; store reading r3, r4.
                MultiOp::new(vec![
                    Slot::alw(SlotOp::Op(Op::Alu {
                        op: AluOp::Add,
                        rd: r(5),
                        a: Src::reg(r(1)),
                        b: Src::reg(r(2)),
                    })),
                    Slot::alw(SlotOp::Op(Op::Store {
                        base: Src::reg(r(3)),
                        offset: 0,
                        value: Src::reg(r(4)),
                        tag: MemTag::ANY,
                    })),
                ]),
                // W1: pure nop word (falls into the region at W2).
                MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
                // W2: halt (control).
                MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
            ],
            region_starts: vec![0, 2],
            num_conds: 2,
            init_regs: vec![],
            memory: MemImage::zeroed(8),
            live_out: vec![],
        }
    }

    #[test]
    fn decode_masks_and_metadata() {
        let d = DecodedProgram::decode(&prog());
        assert_eq!(d.words.len(), 3);
        assert_eq!(d.slots.len(), 4);

        let w0 = &d.words[0];
        assert_eq!((w0.first_slot, w0.num_slots), (0, 2));
        assert_eq!(w0.src_union, 0b11110);
        assert_eq!(w0.store_slots, 1);
        assert!(!w0.has_control);
        assert!(!w0.falls_into_region);
        assert_eq!(d.slots[0].src_mask, 0b00110);
        assert_eq!(d.slots[1].src_mask, 0b11000);

        let w1 = &d.words[1];
        assert_eq!(w1.src_union, 0);
        assert_eq!(w1.store_slots, 0);
        assert!(!w1.has_control);
        assert!(w1.falls_into_region, "W2 is a region start");

        let w2 = &d.words[2];
        assert!(w2.has_control);
        assert!(!w2.falls_into_region, "no word past the end");
        assert_eq!(DecodedProgram::slot_range(w2), 3..4);
    }

    #[test]
    fn immediates_contribute_no_mask_bits() {
        let r = Reg::new;
        let op = SlotOp::Op(Op::Alu {
            op: AluOp::Add,
            rd: r(1),
            a: Src::imm(3),
            b: Src::reg(r(7)),
        });
        assert_eq!(src_mask(&op), 1 << 7);
        assert_eq!(src_mask(&SlotOp::Jump { target: 0 }), 0);
    }
}
