//! Pre-decoded program representation for the hot issue path.
//!
//! The legacy issue path re-reads its program every cycle: it clones the
//! [`MultiOp`](psb_isa::MultiOp) word at PC (a `Vec` allocation) and walks
//! [`SlotOp::srcs`] (another allocation per slot) to screen for operand
//! hazards.  The pre-decoded engine instead decodes the whole program once
//! at machine construction into a dense arena of `Copy` slots whose
//! source-register sets are pre-folded into bitmasks, plus per-word
//! metadata that lets the issue loop skip the store/control prepass and
//! the fall-through region lookup when they cannot matter.  The per-cycle
//! issue loop is then allocation-free and hazard screening is a single
//! mask intersection per word.
//!
//! On top of that, decode lowers every slot to a dense *handler index* and
//! every word to a *class index* into the build-time-generated dispatch
//! tables (see `dispatch.rs` / `build.rs`), so the tabled engine issues a
//! word with one indirect call per slot and no per-slot op-kind match.
//!
//! All engines share the per-slot execution semantics
//! (`VliwMachine::exec_*`), so the decoded representation only changes
//! *how fast* a word is inspected, never *what* it does; the differential
//! fuzz harness holds the engines to byte-identical event logs.

use crate::dispatch;
use psb_isa::{Op, Predicate, SlotOp, VliwProgram, NUM_REGS};

// Source-register sets are u64 bitmasks.
const _: () = assert!(NUM_REGS <= 64, "register masks are u64");

/// One pre-decoded slot: the predicate and operation copied out of the
/// program, plus the set of registers the operation reads.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DecodedSlot {
    /// The slot's commit condition.
    pub pred: Predicate,
    /// The operation.
    pub op: SlotOp,
    /// Bit `r` set iff the operation reads register `r` (shadow or
    /// sequential source alike — both stall on an in-flight write).
    pub src_mask: u64,
    /// Index into the generated slot-handler dispatch tables: the slot's
    /// op kind fused with whether its predicate is `alw`.  Derived by
    /// [`DecodedProgram::decode`] and re-checked at machine construction
    /// by [`DecodedProgram::validate_dispatch`].
    pub handler: u16,
}

/// Per-word metadata driving the issue loop's fast paths.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DecodedWord {
    /// Index of this word's first slot in [`DecodedProgram::slots`].
    pub first_slot: u32,
    /// Number of slots in this word.
    pub num_slots: u32,
    /// Union of the slots' [`DecodedSlot::src_mask`]s: when it does not
    /// intersect the in-flight destination mask, no slot can stall on an
    /// operand and the per-slot hazard check is skipped.
    pub src_union: u64,
    /// Number of store slots (counted regardless of predicate).  Zero lets
    /// the issue loop skip the store-buffer overflow prepass entirely.
    pub store_slots: u8,
    /// Whether any slot is a control transfer (jump, compare-and-branch or
    /// halt) whose predicate the prepass must screen.
    pub has_control: bool,
    /// Whether `addr + 1` is a region start, pre-resolving the
    /// fall-through region check's binary search.
    pub falls_into_region: bool,
    /// Index into the generated word-issue dispatch table: one bit per
    /// specialisation axis (conditional predicates present / store slots
    /// present / control transfer present), selecting the streamlined
    /// issue path that skips whichever prepasses cannot matter.
    pub class: u8,
}

/// A program decoded once into dense slot and word arenas.
///
/// Built by [`DecodedProgram::decode`] at machine construction
/// ([`Engine::Tabled`](crate::Engine::Tabled) and
/// [`Engine::Predecoded`](crate::Engine::Predecoded) read it on every
/// cycle; [`Engine::Legacy`](crate::Engine::Legacy) ignores it and
/// re-decodes per cycle as the differential oracle).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct DecodedProgram {
    /// Per-word metadata, indexed by word address.
    pub words: Vec<DecodedWord>,
    /// All slots, grouped by word (`words[a]` owns
    /// `slots[first_slot..first_slot + num_slots]`).
    pub slots: Vec<DecodedSlot>,
}

/// The set of registers read by `op`, as a bitmask.
fn src_mask(op: &SlotOp) -> u64 {
    op.srcs()
        .iter()
        .filter_map(|s| s.as_reg())
        .fold(0, |m, r| m | (1u64 << r.index()))
}

impl DecodedProgram {
    /// Decodes `prog` into the dense arena form.  Called once per machine
    /// construction; every per-cycle question the issue loop asks is
    /// answered here ahead of time.
    pub fn decode(prog: &VliwProgram) -> DecodedProgram {
        let mut words = Vec::with_capacity(prog.words.len());
        let mut slots = Vec::with_capacity(prog.words.iter().map(|w| w.slots.len()).sum());
        for (addr, word) in prog.words.iter().enumerate() {
            let first_slot = slots.len() as u32;
            let mut src_union = 0u64;
            let mut store_slots = 0u8;
            let mut has_control = false;
            let mut any_cond = false;
            for slot in &word.slots {
                let mask = src_mask(&slot.op);
                src_union |= mask;
                any_cond |= !slot.pred.is_always();
                match slot.op {
                    SlotOp::Op(Op::Store { .. }) => store_slots += 1,
                    SlotOp::Jump { .. } | SlotOp::CmpBr { .. } | SlotOp::Halt => {
                        has_control = true;
                    }
                    _ => {}
                }
                slots.push(DecodedSlot {
                    pred: slot.pred,
                    op: slot.op,
                    src_mask: mask,
                    handler: dispatch::slot_handler_index(
                        dispatch::op_kind(&slot.op),
                        slot.pred.is_always(),
                    ),
                });
            }
            let next = addr + 1;
            words.push(DecodedWord {
                first_slot,
                num_slots: word.slots.len() as u32,
                src_union,
                store_slots,
                has_control,
                falls_into_region: next < prog.words.len()
                    && prog.region_starts.binary_search(&next).is_ok(),
                class: dispatch::word_class_index(any_cond, store_slots > 0, has_control),
            });
        }
        DecodedProgram { words, slots }
    }

    /// The slot index range of `word`.
    #[inline]
    pub fn slot_range(word: &DecodedWord) -> std::ops::Range<usize> {
        let a = word.first_slot as usize;
        a..a + word.num_slots as usize
    }

    /// Checks that the arena's generated-dispatch lowering is exactly what
    /// [`DecodedProgram::decode`] would produce for its own slots: every
    /// slot's handler index and every word's class index (plus the
    /// metadata the specialised issue paths rely on — store-slot count and
    /// control flag) are re-derived and compared.
    ///
    /// Machine construction runs this before the first cycle, so a
    /// corrupted or hand-constructed arena is rejected with a
    /// [`Malformed`](crate::VliwError::Malformed) error at decode time —
    /// the tabled engine never indexes a function-pointer table with an
    /// unchecked value.
    pub fn validate_dispatch(&self) -> Result<(), String> {
        let mut next_slot = 0usize;
        for (addr, w) in self.words.iter().enumerate() {
            let a = w.first_slot as usize;
            let n = w.num_slots as usize;
            if a != next_slot {
                return Err(format!(
                    "word {addr}: slot range starts at {a}, expected {next_slot}"
                ));
            }
            next_slot = a + n;
            let Some(slots) = self.slots.get(a..a + n) else {
                return Err(format!(
                    "word {addr}: slot range {a}..{} out of bounds",
                    a + n
                ));
            };
            let mut any_cond = false;
            let mut store_slots = 0u8;
            let mut has_control = false;
            for (k, s) in slots.iter().enumerate() {
                let want =
                    dispatch::slot_handler_index(dispatch::op_kind(&s.op), s.pred.is_always());
                if s.handler != want {
                    return Err(format!(
                        "word {addr} slot {k}: dispatch handler index {} does not match \
                         the operation (expected {want})",
                        s.handler
                    ));
                }
                any_cond |= !s.pred.is_always();
                match s.op {
                    SlotOp::Op(Op::Store { .. }) => store_slots += 1,
                    SlotOp::Jump { .. } | SlotOp::CmpBr { .. } | SlotOp::Halt => {
                        has_control = true;
                    }
                    _ => {}
                }
            }
            if w.store_slots != store_slots || w.has_control != has_control {
                return Err(format!(
                    "word {addr}: store/control metadata ({}, {}) does not match its slots \
                     (expected ({store_slots}, {has_control}))",
                    w.store_slots, w.has_control
                ));
            }
            let want = dispatch::word_class_index(any_cond, store_slots > 0, has_control);
            if w.class != want {
                return Err(format!(
                    "word {addr}: dispatch word class {} does not match its slots \
                     (expected {want})",
                    w.class
                ));
            }
        }
        if next_slot != self.slots.len() {
            return Err(format!(
                "slot arena has {} slots but words cover {next_slot}",
                self.slots.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{AluOp, CondReg, MemImage, MemTag, MultiOp, Reg, Slot, Src};

    fn prog() -> VliwProgram {
        let r = Reg::new;
        VliwProgram {
            name: "decode-test".into(),
            words: vec![
                // W0: alu reading r1, r2; store reading r3, r4.
                MultiOp::new(vec![
                    Slot::alw(SlotOp::Op(Op::Alu {
                        op: AluOp::Add,
                        rd: r(5),
                        a: Src::reg(r(1)),
                        b: Src::reg(r(2)),
                    })),
                    Slot::alw(SlotOp::Op(Op::Store {
                        base: Src::reg(r(3)),
                        offset: 0,
                        value: Src::reg(r(4)),
                        tag: MemTag::ANY,
                    })),
                ]),
                // W1: pure nop word (falls into the region at W2).
                MultiOp::new(vec![Slot::alw(SlotOp::Op(Op::Nop))]),
                // W2: halt (control).
                MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
            ],
            region_starts: vec![0, 2],
            num_conds: 2,
            init_regs: vec![],
            memory: MemImage::zeroed(8),
            live_out: vec![],
        }
    }

    #[test]
    fn decode_masks_and_metadata() {
        let d = DecodedProgram::decode(&prog());
        assert_eq!(d.words.len(), 3);
        assert_eq!(d.slots.len(), 4);

        let w0 = &d.words[0];
        assert_eq!((w0.first_slot, w0.num_slots), (0, 2));
        assert_eq!(w0.src_union, 0b11110);
        assert_eq!(w0.store_slots, 1);
        assert!(!w0.has_control);
        assert!(!w0.falls_into_region);
        assert_eq!(d.slots[0].src_mask, 0b00110);
        assert_eq!(d.slots[1].src_mask, 0b11000);

        let w1 = &d.words[1];
        assert_eq!(w1.src_union, 0);
        assert_eq!(w1.store_slots, 0);
        assert!(!w1.has_control);
        assert!(w1.falls_into_region, "W2 is a region start");

        let w2 = &d.words[2];
        assert!(w2.has_control);
        assert!(!w2.falls_into_region, "no word past the end");
        assert_eq!(DecodedProgram::slot_range(w2), 3..4);
    }

    #[test]
    fn decode_lowers_dispatch_indices() {
        let d = DecodedProgram::decode(&prog());
        // All predicates are `alw`, so every handler index is odd
        // (kind * 2 + 1) and every word class has bit 0 clear.
        assert_eq!(
            d.slots[0].handler,
            dispatch::slot_handler_index(dispatch::K_ALU, true)
        );
        assert_eq!(
            d.slots[1].handler,
            dispatch::slot_handler_index(dispatch::K_STORE, true)
        );
        assert_eq!(
            d.slots[3].handler,
            dispatch::slot_handler_index(dispatch::K_HALT, true)
        );
        assert_eq!(
            d.words[0].class,
            dispatch::word_class_index(false, true, false)
        );
        assert_eq!(
            d.words[1].class,
            dispatch::word_class_index(false, false, false)
        );
        assert_eq!(
            d.words[2].class,
            dispatch::word_class_index(false, false, true)
        );
        d.validate_dispatch().expect("decode output validates");
    }

    #[test]
    fn conditional_predicates_set_the_cond_class_bit() {
        let r = Reg::new;
        let mut p = prog();
        p.words[1] = MultiOp::new(vec![Slot {
            pred: Predicate::always().and_pos(CondReg::new(0)),
            op: SlotOp::Op(Op::Copy {
                rd: r(1),
                src: Src::imm(1),
            }),
        }]);
        let d = DecodedProgram::decode(&p);
        assert_eq!(
            d.words[1].class,
            dispatch::word_class_index(true, false, false)
        );
        assert_eq!(
            d.slots[2].handler,
            dispatch::slot_handler_index(dispatch::K_COPY, false)
        );
        d.validate_dispatch().expect("decode output validates");
    }

    #[test]
    fn validate_dispatch_rejects_corruption() {
        let mut d = DecodedProgram::decode(&prog());
        d.slots[0].handler = 999;
        let err = d.validate_dispatch().unwrap_err();
        assert!(err.contains("dispatch handler index 999"), "{err}");

        let mut d = DecodedProgram::decode(&prog());
        d.words[2].class = 7;
        let err = d.validate_dispatch().unwrap_err();
        assert!(err.contains("dispatch word class 7"), "{err}");

        let mut d = DecodedProgram::decode(&prog());
        d.words[0].store_slots = 0;
        let err = d.validate_dispatch().unwrap_err();
        assert!(err.contains("store/control metadata"), "{err}");

        let mut d = DecodedProgram::decode(&prog());
        d.words[1].first_slot = 0;
        assert!(d.validate_dispatch().is_err());

        let mut d = DecodedProgram::decode(&prog());
        d.slots.push(d.slots[0]);
        let err = d.validate_dispatch().unwrap_err();
        assert!(err.contains("slot arena"), "{err}");

        // SetCond with a `cmp` that matches nothing? Not constructible —
        // instead check that swapping ops without re-lowering is caught.
        let mut d = DecodedProgram::decode(&prog());
        d.slots[3].op = SlotOp::Op(Op::Nop);
        assert!(d.validate_dispatch().is_err());
    }

    #[test]
    fn immediates_contribute_no_mask_bits() {
        let r = Reg::new;
        let op = SlotOp::Op(Op::Alu {
            op: AluOp::Add,
            rd: r(1),
            a: Src::imm(3),
            b: Src::reg(r(7)),
        });
        assert_eq!(src_mask(&op), 1 << 7);
        assert_eq!(src_mask(&SlotOp::Jump { target: 0 }), 0);
    }
}
