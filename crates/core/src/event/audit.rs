//! Dynamic audit of machine event logs.
//!
//! [`audit_events`] replays a recorded event log and checks the temporal
//! invariants of the predicated state-buffering discipline — the runtime
//! counterpart of `psb-sched`'s static verifier.  Tests run it over every
//! event-recorded execution; it is also handy when debugging hand-written
//! schedules (`psbsim --events`).

use crate::event::{Event, StateLoc};
use std::collections::HashMap;
use std::fmt;

/// One violation of the event-log discipline.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AuditViolation {
    /// A commit or squash arrived for a location with no outstanding
    /// speculative write.
    ResolutionWithoutWrite {
        /// Cycle of the spurious resolution.
        cycle: u64,
        /// The location.
        loc: String,
    },
    /// A speculative write was overwritten... by a second speculative
    /// write to the same location in the same region window without an
    /// intervening resolution under a *different* predicate (a shadow
    /// conflict the machine should have rejected).
    ConflictingSpecWrite {
        /// Cycle of the conflicting write.
        cycle: u64,
        /// The location.
        loc: String,
    },
    /// A region boundary (or the end of the run) passed while a
    /// speculative value was still unresolved — buffered state leaked
    /// across a region, violating Section 3.3's closure property.
    UnresolvedAtRegionEnd {
        /// Cycle of the boundary.
        cycle: u64,
        /// The location still holding speculative state.
        loc: String,
    },
    /// A recovery started with no preceding speculative-exception write
    /// (or in-flight exception latch) since the last region entry.
    RecoveryWithoutException {
        /// Cycle recovery started.
        cycle: u64,
    },
    /// A recovery start without a matching end before the next region
    /// entry or the end of the log.
    UnfinishedRecovery {
        /// Cycle recovery started.
        cycle: u64,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::ResolutionWithoutWrite { cycle, loc } => {
                write!(
                    f,
                    "[{cycle}] {loc} resolved without an outstanding speculative write"
                )
            }
            AuditViolation::ConflictingSpecWrite { cycle, loc } => {
                write!(f, "[{cycle}] conflicting speculative write to {loc}")
            }
            AuditViolation::UnresolvedAtRegionEnd { cycle, loc } => {
                write!(f, "[{cycle}] {loc} speculative across a region boundary")
            }
            AuditViolation::RecoveryWithoutException { cycle } => {
                write!(f, "[{cycle}] recovery without a buffered exception")
            }
            AuditViolation::UnfinishedRecovery { cycle } => {
                write!(f, "[{cycle}] recovery never completed")
            }
        }
    }
}

/// Replays `events` and returns every violated invariant (empty =
/// audited clean).
///
/// The audit understands the machine's timing: a region-entry event
/// squashes outstanding speculation in the same cycle, and the final
/// region's leftovers are squashed by the halt (which emits squash events
/// itself), so anything left at the end of the log is a leak.
pub fn audit_events(events: &[Event]) -> Vec<AuditViolation> {
    let mut out = Vec::new();
    // Outstanding speculative writes: loc -> (predicate string, E flag).
    let mut spec: HashMap<String, (String, bool)> = HashMap::new();
    // An E flag latched on an in-flight result (not yet buffered): a
    // recovery may trigger on it before any E-flagged SpecWrite appears.
    let mut exc_latched = false;
    let mut in_recovery: Option<u64> = None;

    for e in events {
        match e {
            Event::SpecWrite {
                cycle,
                loc,
                pred,
                exc,
            } => {
                let key = loc.to_string();
                let pred = pred.to_string();
                if let Some((prev, _)) = spec.get(&key) {
                    // Same-predicate rewrites model WAW on one path; a
                    // different predicate on a *register* is the
                    // single-shadow storage conflict (store-buffer entries
                    // are distinct locations and never conflict).  Logs
                    // from the infinite-shadow configuration legitimately
                    // interleave predicates and should not be audited with
                    // this single-shadow checker.
                    if prev != &pred && !matches!(loc, StateLoc::Sb(_)) {
                        out.push(AuditViolation::ConflictingSpecWrite {
                            cycle: *cycle,
                            loc: key.clone(),
                        });
                    }
                }
                spec.insert(key, (pred, *exc));
                if *exc {
                    // The latched exception (if any) has graduated into
                    // buffered state, where the map tracks it.
                    exc_latched = false;
                }
            }
            Event::Commit { cycle, loc } | Event::Squash { cycle, loc } => {
                if spec.remove(&loc.to_string()).is_none() {
                    out.push(AuditViolation::ResolutionWithoutWrite {
                        cycle: *cycle,
                        loc: loc.to_string(),
                    });
                }
            }
            Event::RegionEnter { cycle, .. } => {
                for loc in spec.drain().map(|(k, _)| k) {
                    out.push(AuditViolation::UnresolvedAtRegionEnd { cycle: *cycle, loc });
                }
                exc_latched = false;
                if let Some(start) = in_recovery.take() {
                    out.push(AuditViolation::UnfinishedRecovery { cycle: start });
                }
            }
            Event::RecoveryStart { cycle, .. } => {
                let buffered_exc = spec.values().any(|(_, exc)| *exc);
                if !buffered_exc && !exc_latched {
                    out.push(AuditViolation::RecoveryWithoutException { cycle: *cycle });
                }
                // The latched exception (if any) is what triggered this
                // recovery; it is consumed here.
                exc_latched = false;
                // Recovery invalidates all speculative state — but the
                // machine logs an explicit squash for every invalidated
                // entry, so the ordinary resolution accounting covers it.
                in_recovery = Some(*cycle);
            }
            Event::RecoveryEnd { .. } => {
                // Exceptions re-buffered *during* recovery stay tracked in
                // the spec map; they may legitimately trigger a second
                // recovery later.
                in_recovery = None;
            }
            Event::ExcLatched { .. } => {
                exc_latched = true;
            }
            Event::SeqWrite { .. }
            | Event::SeqStore { .. }
            | Event::CondSet { .. }
            | Event::FaultHandled { .. } => {}
        }
    }
    for (loc, _) in spec {
        out.push(AuditViolation::UnresolvedAtRegionEnd {
            cycle: u64::MAX,
            loc,
        });
    }
    if let Some(start) = in_recovery {
        out.push(AuditViolation::UnfinishedRecovery { cycle: start });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{CondReg, Predicate, Reg};

    fn spec(cycle: u64, reg: usize, exc: bool) -> Event {
        Event::SpecWrite {
            cycle,
            loc: StateLoc::Reg(Reg::new(reg)),
            pred: Predicate::always().and_pos(CondReg::new(0)),
            exc,
        }
    }

    fn commit(cycle: u64, reg: usize) -> Event {
        Event::Commit {
            cycle,
            loc: StateLoc::Reg(Reg::new(reg)),
        }
    }

    #[test]
    fn clean_log_audits_clean() {
        let log = vec![spec(1, 1, false), commit(3, 1)];
        assert!(audit_events(&log).is_empty());
    }

    #[test]
    fn detects_spurious_resolution() {
        let log = vec![commit(2, 1)];
        let v = audit_events(&log);
        assert!(matches!(
            v[0],
            AuditViolation::ResolutionWithoutWrite { cycle: 2, .. }
        ));
    }

    #[test]
    fn detects_leak_across_region() {
        let log = vec![spec(1, 1, false), Event::RegionEnter { cycle: 2, addr: 4 }];
        let v = audit_events(&log);
        assert!(matches!(
            v[0],
            AuditViolation::UnresolvedAtRegionEnd { cycle: 2, .. }
        ));
    }

    #[test]
    fn detects_leak_at_end() {
        let log = vec![spec(1, 1, false)];
        let v = audit_events(&log);
        assert!(matches!(v[0], AuditViolation::UnresolvedAtRegionEnd { .. }));
    }

    #[test]
    fn detects_recovery_without_exception() {
        let log = vec![Event::RecoveryStart {
            cycle: 5,
            epc: 3,
            rpc: 0,
        }];
        let v = audit_events(&log);
        assert!(v
            .iter()
            .any(|x| matches!(x, AuditViolation::RecoveryWithoutException { .. })));
    }

    #[test]
    fn accepts_full_recovery_narrative() {
        let log = vec![
            spec(1, 3, true),
            Event::RecoveryStart {
                cycle: 4,
                epc: 2,
                rpc: 0,
            },
            // The machine squashes the invalidated entry explicitly.
            Event::Squash {
                cycle: 4,
                loc: StateLoc::Reg(Reg::new(3)),
            },
            spec(6, 3, false),
            Event::RecoveryEnd { cycle: 8 },
            commit(9, 3),
        ];
        assert!(audit_events(&log).is_empty());
    }

    #[test]
    fn detects_unfinished_recovery() {
        let log = vec![
            spec(1, 3, true),
            Event::RecoveryStart {
                cycle: 4,
                epc: 2,
                rpc: 0,
            },
        ];
        let v = audit_events(&log);
        assert!(v
            .iter()
            .any(|x| matches!(x, AuditViolation::UnfinishedRecovery { cycle: 4 })));
    }
}
