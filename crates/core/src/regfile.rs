//! The predicated register file (Figure 2 of the paper).
//!
//! Every entry has two data storages (sequential + shadow), a stored
//! predicate, and the W/V/E flags.  We model the W/V flags implicitly: the
//! `spec` slots hold valid speculative data (V set), the `seq` field is the
//! committed storage, and a commit copies shadow → sequential (the
//! hardware's W flip) and clears V.
//!
//! # Commit-pass strategies
//!
//! The paper's hardware re-evaluates every buffered predicate every cycle
//! ([`CommitScan::Naive`]).  The simulator's default
//! ([`CommitScan::Indexed`]) keeps a *wakeup list* per CCR slot — the set
//! of registers holding a buffered entry whose predicate mentions that
//! condition — and re-evaluates only registers subscribed to a condition
//! that changed since the previous pass, plus registers written since
//! then.  A buffered predicate's evaluation can only change when one of
//! its conditions changes, so the two strategies resolve the same entries
//! on the same cycles and emit byte-identical event logs.

use crate::config::{CommitScan, ShadowMode};
use crate::event::{Event, StateLoc};
use crate::obs::TraceSink;
use psb_isa::{Ccr, Cond, Predicate, Reg, MAX_CONDS};
use std::collections::BTreeSet;

/// One buffered speculative value (a shadow-register occupancy).
#[derive(Clone, Copy, PartialEq, Debug)]
struct SpecSlot {
    value: i64,
    pred: Predicate,
    /// The E flag: this result is an outstanding speculative exception.
    exc: bool,
}

#[derive(Clone, PartialEq, Debug, Default)]
struct RegEntry {
    seq: i64,
    /// Valid speculative slots, oldest first.  Length ≤ 1 in
    /// [`ShadowMode::Single`].
    spec: Vec<SpecSlot>,
}

/// The write-conflict error of the single-shadow design: a second
/// speculative write with a *different* predicate while one is buffered.
///
/// The schedulers serialise such writes (Section 3.2 notes the conflict is
/// rare), so hitting this at run time indicates a scheduling bug.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShadowConflict {
    /// The conflicted register.
    pub reg: Reg,
}

/// The predicated register file.
#[derive(Clone, PartialEq, Debug)]
pub struct PredicatedRegFile {
    entries: Vec<RegEntry>,
    mode: ShadowMode,
    scan: CommitScan,
    /// CCR snapshot at the end of the previous commit pass (Indexed only).
    last_ccr: Option<Ccr>,
    /// Per-condition wakeup lists: registers with a buffered entry whose
    /// predicate mentions that condition (Indexed only).
    subs: Vec<BTreeSet<usize>>,
    /// Registers whose buffered entries must be evaluated at the next pass:
    /// written since the last pass, or woken by a condition change.
    pending: BTreeSet<usize>,
    /// Buffered slots with the E flag set (fast path for
    /// [`PredicatedRegFile::has_exception_commit`]).
    exc_count: usize,
    /// Total buffered slots across all registers (fast path for
    /// [`PredicatedRegFile::has_buffered`] — the tabled engine's cycle
    /// driver skips the commit pass when nothing is buffered).
    buffered: usize,
}

impl PredicatedRegFile {
    /// Creates a file of `num_regs` registers, all zero, using the
    /// [`CommitScan::Naive`] reference strategy.
    pub fn new(num_regs: usize, mode: ShadowMode) -> PredicatedRegFile {
        PredicatedRegFile {
            entries: vec![RegEntry::default(); num_regs],
            mode,
            scan: CommitScan::Naive,
            last_ccr: None,
            subs: vec![BTreeSet::new(); MAX_CONDS],
            pending: BTreeSet::new(),
            exc_count: 0,
            buffered: 0,
        }
    }

    /// Selects the commit-pass strategy.  Must be called before any
    /// speculative write (the machine sets it at construction).
    #[must_use]
    pub fn with_commit_scan(mut self, scan: CommitScan) -> PredicatedRegFile {
        assert_eq!(self.spec_count(), 0, "cannot switch scan mid-flight");
        self.scan = scan;
        self
    }

    /// Writes an initial (sequential) value.
    pub fn init(&mut self, r: Reg, value: i64) {
        if !r.is_zero() {
            self.entries[r.index()].seq = value;
        }
    }

    /// Reads the sequential state.
    #[inline]
    pub fn read_seq(&self, r: Reg) -> i64 {
        if r.is_zero() {
            0
        } else {
            self.entries[r.index()].seq
        }
    }

    /// Reads the speculative state, as selected by an instruction source
    /// with the shadow bit set.
    ///
    /// When no compatible valid shadow entry exists the sequential storage
    /// is returned instead — the one-gate operand-fetch fallback of
    /// Section 3.5 (the wanted value was committed or squashed earlier).
    /// `reader_pred` disambiguates between multiple buffered values in
    /// [`ShadowMode::Infinite`]; the newest non-disjoint entry wins.
    ///
    /// E-flagged slots are skipped: a buffered speculative exception has no
    /// data to bypass, only a fault to deliver (Section 3.5), so dependents
    /// fall back exactly as the store buffer's forwarding path refuses
    /// E-flagged entries.  If the exception's predicate commits, recovery
    /// re-executes those dependents anyway.
    pub fn read_shadow(&self, r: Reg, reader_pred: &Predicate) -> i64 {
        if r.is_zero() {
            return 0;
        }
        let e = &self.entries[r.index()];
        e.spec
            .iter()
            .rev()
            .find(|s| !s.exc && !s.pred.disjoint(reader_pred))
            .map_or(e.seq, |s| s.value)
    }

    /// Writes the sequential state (a non-speculative result).
    pub fn write_seq(&mut self, r: Reg, value: i64) {
        if !r.is_zero() {
            self.entries[r.index()].seq = value;
        }
    }

    /// Buffers a speculative result with its predicate; `exc` sets the E
    /// flag (the result is an outstanding speculative exception).
    ///
    /// # Errors
    ///
    /// In [`ShadowMode::Single`], returns [`ShadowConflict`] if a
    /// speculative value with a different predicate is already buffered.
    pub fn write_spec(
        &mut self,
        r: Reg,
        value: i64,
        pred: Predicate,
        exc: bool,
    ) -> Result<(), ShadowConflict> {
        if r.is_zero() {
            return Ok(());
        }
        let e = &mut self.entries[r.index()];
        match self.mode {
            ShadowMode::Single => {
                if let Some(slot) = e.spec.first_mut() {
                    if slot.pred != pred {
                        return Err(ShadowConflict { reg: r });
                    }
                    self.exc_count -= slot.exc as usize;
                    *slot = SpecSlot { value, pred, exc };
                } else {
                    e.spec.push(SpecSlot { value, pred, exc });
                    self.buffered += 1;
                }
            }
            ShadowMode::Infinite => {
                // A same-predicate rewrite replaces (WAW on one path);
                // otherwise buffer an additional value.
                if let Some(slot) = e.spec.iter_mut().rev().find(|s| s.pred == pred) {
                    self.exc_count -= slot.exc as usize;
                    *slot = SpecSlot { value, pred, exc };
                } else {
                    e.spec.push(SpecSlot { value, pred, exc });
                    self.buffered += 1;
                }
            }
        }
        self.exc_count += exc as usize;
        if self.scan == CommitScan::Indexed {
            let mut conds = pred.cond_mask();
            while conds != 0 {
                let c = conds.trailing_zeros() as usize;
                conds &= conds - 1;
                self.subs[c].insert(r.index());
            }
            self.pending.insert(r.index());
        }
        Ok(())
    }

    /// The per-cycle commit hardware: evaluates buffered predicates
    /// against the CCR, committing on true and squashing on false.
    /// Returns `(commits, squashes)`.
    ///
    /// Under [`CommitScan::Naive`] every buffered predicate is evaluated;
    /// under [`CommitScan::Indexed`] only registers woken by a condition
    /// change (or written since the previous pass) are — with identical
    /// outcomes and event order.
    ///
    /// # Panics
    ///
    /// Panics if an entry with the E flag commits — the machine must detect
    /// exception commits at CCR-update time (`has_exception_commit`) and
    /// enter recovery before this pass runs; reaching one here is a
    /// simulator bug.
    pub fn tick(&mut self, ccr: &Ccr, cycle: u64, sink: &mut impl TraceSink) -> (u64, u64) {
        debug_assert_eq!(self.buffered, self.spec_count(), "buffered counter drift");
        let (commits, squashes) = match self.scan {
            CommitScan::Naive => {
                let mut commits = 0;
                let mut squashes = 0;
                for i in 0..self.entries.len() {
                    let (c, s) = resolve_entry(
                        &mut self.entries[i],
                        i,
                        ccr,
                        cycle,
                        sink,
                        &mut self.exc_count,
                    );
                    commits += c;
                    squashes += s;
                }
                (commits, squashes)
            }
            CommitScan::Indexed => self.tick_indexed(ccr, cycle, sink),
        };
        // Every resolved slot left the buffer (kept ones stayed).
        self.buffered -= (commits + squashes) as usize;
        (commits, squashes)
    }

    fn tick_indexed(&mut self, ccr: &Ccr, cycle: u64, sink: &mut impl TraceSink) -> (u64, u64) {
        // Wake the subscribers of every condition whose value changed since
        // the previous pass — one XOR over the CCR's bitmasks instead of a
        // per-condition compare.  On the first pass (or a CCR-width change,
        // which never happens within one run) everything wakes.
        match &self.last_ccr {
            Some(prev) if prev.len() == ccr.len() => {
                let mut changed = prev.changed_mask(ccr);
                while changed != 0 {
                    let c = changed.trailing_zeros() as usize;
                    changed &= changed - 1;
                    if !self.subs[c].is_empty() {
                        self.pending.extend(self.subs[c].iter().copied());
                    }
                }
            }
            _ => {
                for (i, e) in self.entries.iter().enumerate() {
                    if !e.spec.is_empty() {
                        self.pending.insert(i);
                    }
                }
            }
        }
        self.last_ccr = Some(*ccr);

        let mut commits = 0;
        let mut squashes = 0;
        // Ascending register order reproduces the naive scan's event order.
        let pending = std::mem::take(&mut self.pending);
        for i in pending {
            let (c, s) = resolve_entry(
                &mut self.entries[i],
                i,
                ccr,
                cycle,
                sink,
                &mut self.exc_count,
            );
            commits += c;
            squashes += s;
            if c > 0 || s > 0 {
                // Slots were resolved: rebuild this register's subscriptions
                // from what remains buffered.
                for set in &mut self.subs {
                    set.remove(&i);
                }
                for slot in &self.entries[i].spec {
                    let mut conds = slot.pred.cond_mask();
                    while conds != 0 {
                        let cnd = conds.trailing_zeros() as usize;
                        conds &= conds - 1;
                        self.subs[cnd].insert(i);
                    }
                }
            }
        }
        (commits, squashes)
    }

    /// Whether any buffered entry with the E flag would commit under
    /// `candidate` — the exception-detection signal checked when the CCR is
    /// about to be updated (Section 3.5).
    pub fn has_exception_commit(&self, candidate: &Ccr) -> bool {
        if self.exc_count == 0 {
            return false;
        }
        self.entries.iter().any(|e| {
            e.spec
                .iter()
                .any(|s| s.exc && s.pred.eval(candidate) == Cond::True)
        })
    }

    /// Discards all speculative state (entering recovery, or region exit).
    /// Returns the number of squashed entries.
    pub fn squash_spec(&mut self, cycle: u64, sink: &mut impl TraceSink) -> u64 {
        let mut squashes = 0;
        for (i, e) in self.entries.iter_mut().enumerate() {
            if !e.spec.is_empty() {
                e.spec.clear();
                squashes += 1;
                sink.push(|| Event::Squash {
                    cycle,
                    loc: StateLoc::Reg(Reg::new(i)),
                });
            }
        }
        self.exc_count = 0;
        self.buffered = 0;
        if self.scan == CommitScan::Indexed {
            for set in &mut self.subs {
                set.clear();
            }
            self.pending.clear();
        }
        squashes
    }

    /// Whether any speculative value is buffered anywhere in the file —
    /// O(1), so a cycle driver can skip the commit pass (and a region
    /// exit its squash pass) when the answer is no.  Both passes are
    /// observation-free on an empty file: no commits, no squashes, no
    /// events.
    #[inline]
    pub fn has_buffered(&self) -> bool {
        self.buffered > 0
    }

    /// The newest buffered speculative value of `r`, if any, as
    /// `(value, predicate, e_flag)` — for tests and debugging.
    pub fn shadow_entry(&self, r: Reg) -> Option<(i64, Predicate, bool)> {
        self.entries[r.index()]
            .spec
            .last()
            .map(|s| (s.value, s.pred, s.exc))
    }

    /// Number of buffered speculative values across all registers.
    pub fn spec_count(&self) -> usize {
        self.entries.iter().map(|e| e.spec.len()).sum()
    }

    /// The final sequential register values.
    pub fn seq_values(&self) -> Vec<i64> {
        self.entries.iter().map(|e| e.seq).collect()
    }
}

/// Resolves one register's buffered slots against `ccr`, exactly as the
/// paper's per-entry commit hardware: oldest slot first, commit on true
/// (copy shadow → sequential), squash on false, keep on unspecified.
/// Shared by both scan strategies so their behaviour cannot drift.
fn resolve_entry(
    e: &mut RegEntry,
    i: usize,
    ccr: &Ccr,
    cycle: u64,
    sink: &mut impl TraceSink,
    exc_count: &mut usize,
) -> (u64, u64) {
    if e.spec.is_empty() {
        return (0, 0);
    }
    let mut commits = 0;
    let mut squashes = 0;
    let mut kept = Vec::with_capacity(e.spec.len());
    for slot in e.spec.drain(..) {
        match slot.pred.eval(ccr) {
            Cond::True => {
                assert!(
                    !slot.exc,
                    "outstanding speculative exception on r{i} committed outside \
                     the detection path"
                );
                e.seq = slot.value;
                commits += 1;
                sink.push(|| Event::Commit {
                    cycle,
                    loc: StateLoc::Reg(Reg::new(i)),
                });
            }
            Cond::False => {
                *exc_count -= slot.exc as usize;
                squashes += 1;
                sink.push(|| Event::Squash {
                    cycle,
                    loc: StateLoc::Reg(Reg::new(i)),
                });
            }
            Cond::Unspecified => kept.push(slot),
        }
    }
    e.spec = kept;
    (commits, squashes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventLog;
    use psb_isa::CondReg;

    fn pred(c: usize) -> Predicate {
        Predicate::always().and_pos(CondReg::new(c))
    }

    fn log() -> EventLog {
        EventLog::new(true)
    }

    #[test]
    fn commit_flips_into_sequential() {
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Single);
        rf.write_seq(Reg::new(1), 10);
        rf.write_spec(Reg::new(1), 99, pred(0), false).unwrap();
        assert_eq!(rf.read_seq(Reg::new(1)), 10);
        assert_eq!(rf.read_shadow(Reg::new(1), &pred(0)), 99);

        let mut ccr = Ccr::new(2);
        ccr.set(CondReg::new(0), true);
        let mut l = log();
        assert_eq!(rf.tick(&ccr, 5, &mut l), (1, 0));
        assert_eq!(rf.read_seq(Reg::new(1)), 99);
        assert_eq!(rf.spec_count(), 0);
        assert!(matches!(l.events()[0], Event::Commit { cycle: 5, .. }));
    }

    #[test]
    fn squash_keeps_sequential() {
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Single);
        rf.write_seq(Reg::new(1), 10);
        rf.write_spec(Reg::new(1), 99, pred(0), false).unwrap();
        let mut ccr = Ccr::new(2);
        ccr.set(CondReg::new(0), false);
        assert_eq!(rf.tick(&ccr, 1, &mut log()), (0, 1));
        assert_eq!(rf.read_seq(Reg::new(1)), 10);
        assert_eq!(rf.spec_count(), 0);
    }

    #[test]
    fn unspecified_predicate_holds_value() {
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Single);
        rf.write_spec(Reg::new(1), 99, pred(0), false).unwrap();
        rf.tick(&Ccr::new(2), 1, &mut log());
        assert_eq!(rf.shadow_entry(Reg::new(1)), Some((99, pred(0), false)));
    }

    #[test]
    fn shadow_read_falls_back_to_sequential() {
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Single);
        rf.write_seq(Reg::new(2), 7);
        // No shadow entry: operand fetch falls back (Section 3.5).
        assert_eq!(rf.read_shadow(Reg::new(2), &Predicate::always()), 7);
    }

    #[test]
    fn shadow_read_skips_exception_entries() {
        // An E-flagged slot carries no usable data: the read must fall back
        // to the sequential storage, mirroring the store buffer's refusal
        // to forward E-flagged entries.
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Single);
        rf.write_seq(Reg::new(1), 7);
        rf.write_spec(Reg::new(1), 0, pred(0), true).unwrap();
        assert_eq!(rf.read_shadow(Reg::new(1), &pred(0)), 7);
    }

    #[test]
    fn infinite_mode_read_skips_exception_to_older_entry() {
        // A newer E-flagged slot must not hide an older valid slot on the
        // same path: the read skips it and returns the newest *non-E*
        // compatible value, falling back to sequential only when every
        // compatible slot carries the E flag.
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Infinite);
        rf.write_seq(Reg::new(1), 7);
        rf.write_spec(Reg::new(1), 5, pred(0), false).unwrap();
        rf.write_spec(Reg::new(1), 0, pred(0).and_pos(CondReg::new(1)), true)
            .unwrap();
        let p01 = pred(0).and_pos(CondReg::new(1));
        assert_eq!(rf.read_shadow(Reg::new(1), &p01), 5);
        // A path where only the E entry is compatible: sequential fallback.
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Infinite);
        rf.write_seq(Reg::new(1), 7);
        rf.write_spec(Reg::new(1), 5, pred(0), false).unwrap();
        rf.write_spec(Reg::new(1), 0, pred(1), true).unwrap();
        let not0 = Predicate::always()
            .and_neg(CondReg::new(0))
            .and_pos(CondReg::new(1));
        assert_eq!(rf.read_shadow(Reg::new(1), &not0), 7);
    }

    #[test]
    fn single_mode_conflict_detected() {
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Single);
        rf.write_spec(Reg::new(1), 1, pred(0), false).unwrap();
        // Same predicate: overwrite is fine (WAW on one path).
        rf.write_spec(Reg::new(1), 2, pred(0), false).unwrap();
        assert_eq!(rf.shadow_entry(Reg::new(1)).unwrap().0, 2);
        // Different predicate: conflict.
        let err = rf.write_spec(Reg::new(1), 3, pred(1), false).unwrap_err();
        assert_eq!(err.reg, Reg::new(1));
    }

    #[test]
    fn infinite_mode_buffers_multiple() {
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Infinite);
        rf.write_spec(Reg::new(1), 1, pred(0), false).unwrap();
        rf.write_spec(Reg::new(1), 2, pred(1), false).unwrap();
        assert_eq!(rf.spec_count(), 2);
        // Reader on c1's path sees the newest compatible value.
        assert_eq!(rf.read_shadow(Reg::new(1), &pred(1)), 2);
        // A reader whose predicate is disjoint with c1 (requires !c1) sees
        // the older value.
        let not1 = Predicate::always()
            .and_neg(CondReg::new(1))
            .and_pos(CondReg::new(0));
        assert_eq!(rf.read_shadow(Reg::new(1), &not1), 1);
    }

    #[test]
    fn infinite_mode_commit_order_is_append_order() {
        // Two commits in one cycle apply oldest-first so the newest wins.
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Infinite);
        let p01 = pred(0);
        let p01b = pred(0).and_pos(CondReg::new(1));
        rf.write_spec(Reg::new(1), 10, p01, false).unwrap();
        rf.write_spec(Reg::new(1), 20, p01b, false).unwrap();
        let mut ccr = Ccr::new(2);
        ccr.set(CondReg::new(0), true);
        ccr.set(CondReg::new(1), true);
        rf.tick(&ccr, 1, &mut log());
        assert_eq!(rf.read_seq(Reg::new(1)), 20);
    }

    #[test]
    fn exception_detection_under_candidate() {
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Single);
        rf.write_spec(Reg::new(3), 0, pred(1), true).unwrap();
        let mut candidate = Ccr::new(2);
        assert!(!rf.has_exception_commit(&candidate));
        candidate.set(CondReg::new(1), true);
        assert!(rf.has_exception_commit(&candidate));
        candidate.set(CondReg::new(1), false);
        assert!(!rf.has_exception_commit(&candidate));
    }

    #[test]
    #[should_panic(expected = "outside the detection path")]
    fn committing_exception_in_tick_panics() {
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Single);
        rf.write_spec(Reg::new(3), 0, pred(1), true).unwrap();
        let mut ccr = Ccr::new(2);
        ccr.set(CondReg::new(1), true);
        rf.tick(&ccr, 1, &mut log());
    }

    #[test]
    fn squash_spec_clears_everything() {
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Infinite);
        rf.write_spec(Reg::new(1), 1, pred(0), false).unwrap();
        rf.write_spec(Reg::new(2), 2, pred(1), true).unwrap();
        let mut l = log();
        assert_eq!(rf.squash_spec(9, &mut l), 2);
        assert_eq!(rf.spec_count(), 0);
        assert_eq!(l.events().len(), 2);
        // The exception count was reset with the state.
        let mut ccr = Ccr::new(2);
        ccr.set(CondReg::new(1), true);
        assert!(!rf.has_exception_commit(&ccr));
    }

    #[test]
    fn zero_register_is_inert() {
        let mut rf = PredicatedRegFile::new(8, ShadowMode::Single);
        rf.write_seq(Reg::ZERO, 5);
        rf.write_spec(Reg::ZERO, 5, pred(0), false).unwrap();
        assert_eq!(rf.read_seq(Reg::ZERO), 0);
        assert_eq!(rf.read_shadow(Reg::ZERO, &Predicate::always()), 0);
        assert_eq!(rf.spec_count(), 0);
    }

    #[test]
    fn indexed_scan_skips_idle_cycles_but_matches_naive() {
        // Same stimulus against both strategies; the logs must be identical.
        let stimulus = |rf: &mut PredicatedRegFile, l: &mut EventLog| {
            rf.write_spec(Reg::new(1), 11, pred(0), false).unwrap();
            rf.write_spec(Reg::new(2), 22, pred(1), false).unwrap();
            let mut ccr = Ccr::new(4);
            rf.tick(&ccr, 1, l); // nothing specified: both held
            rf.tick(&ccr, 2, l); // idle cycle: indexed does no work
            ccr.set(CondReg::new(0), true);
            rf.tick(&ccr, 3, l); // r1 commits
            ccr.set(CondReg::new(1), false);
            rf.tick(&ccr, 4, l); // r2 squashes
        };
        let mut naive = PredicatedRegFile::new(8, ShadowMode::Single);
        let mut ln = log();
        stimulus(&mut naive, &mut ln);
        let mut indexed =
            PredicatedRegFile::new(8, ShadowMode::Single).with_commit_scan(CommitScan::Indexed);
        let mut li = log();
        stimulus(&mut indexed, &mut li);
        assert_eq!(ln.events(), li.events());
        assert_eq!(naive.seq_values(), indexed.seq_values());
    }

    #[test]
    fn indexed_rewake_on_second_condition() {
        // A two-condition predicate wakes once per condition change and
        // resolves only when the last one specifies.
        let p = pred(0).and_pos(CondReg::new(1));
        let mut rf =
            PredicatedRegFile::new(8, ShadowMode::Single).with_commit_scan(CommitScan::Indexed);
        rf.write_spec(Reg::new(3), 5, p, false).unwrap();
        let mut ccr = Ccr::new(4);
        let mut l = log();
        assert_eq!(rf.tick(&ccr, 1, &mut l), (0, 0));
        ccr.set(CondReg::new(0), true);
        assert_eq!(rf.tick(&ccr, 2, &mut l), (0, 0)); // c1 still unspecified
        ccr.set(CondReg::new(1), true);
        assert_eq!(rf.tick(&ccr, 3, &mut l), (1, 0));
        assert_eq!(rf.read_seq(Reg::new(3)), 5);
    }
}
