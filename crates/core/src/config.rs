//! Machine configuration.

use crate::mem::MemoryModel;
use psb_isa::Resources;
use std::collections::BTreeSet;

/// How many speculative values one register can buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ShadowMode {
    /// One shadow register per sequential register — the paper's
    /// cost-reduced design (Section 3.2).  A second in-flight speculative
    /// write with a different predicate is a scheduler error.
    #[default]
    Single,
    /// Unbounded shadow storage per register — the idealised model of the
    /// paper's footnote 1, used by the `ablation-shadow` experiment.
    Infinite,
}

/// How the per-cycle commit pass locates buffered entries to resolve.
///
/// Both strategies are architecturally identical — they evaluate the same
/// predicates against the same CCR and emit the same events in the same
/// order (enforced by the `commit_scan` differential tests).  They differ
/// only in simulator cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CommitScan {
    /// Evaluate every buffered predicate every cycle — a direct transcription
    /// of the paper's per-entry commit hardware.  O(buffered) per cycle even
    /// when nothing can have changed.  Kept as the reference oracle.
    Naive,
    /// Condition-indexed wakeup lists: each buffered entry subscribes to the
    /// CCR slots its predicate mentions, and a pass re-evaluates only entries
    /// subscribed to a condition that changed since the previous pass, plus
    /// entries buffered since then.  O(active) per cycle.
    #[default]
    Indexed,
}

/// Which issue-path implementation drives the machine.
///
/// All engines execute the same architecture and are held observably
/// identical by the engine-differential proptests and the fuzz harness.
/// They differ only in simulator cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// Drive the issue loop from build-time-generated dispatch tables:
    /// decode lowers every slot to a dense handler index (predicate
    /// evaluation, hazard masking and execution fused into one handler
    /// call) and every word to a specialisation class whose issue path
    /// skips the store/control prepasses that cannot apply.  The issue
    /// buffer is recycled across cycles, so steady-state issue is both
    /// match-free and allocation-free.
    #[default]
    Tabled,
    /// Decode every VLIW word once at `run_program` entry into a dense
    /// arena (flat `Copy` slots, pre-computed source-register bitmasks,
    /// per-word issue metadata) and drive the per-cycle issue loop from
    /// it — no allocation in the issue screen itself, one interpretive
    /// op-kind match per slot.
    Predecoded,
    /// The original issue loop: clone the current `MultiOp` each cycle
    /// and materialise per-slot source lists on demand.  Kept as the
    /// differential oracle for the faster engines.
    Legacy,
}

/// Full configuration of the predicating machine.
#[derive(Clone, PartialEq, Debug)]
pub struct MachineConfig {
    /// Maximum slots per word.
    pub issue_width: usize,
    /// Function-unit counts.
    pub resources: Resources,
    /// Load latency in cycles (the paper uses 2; all other ops take 1).
    /// This is the [`MemoryModel::Perfect`] latency; cache models
    /// replace it with per-access hit/miss latencies.
    pub load_latency: u64,
    /// Memory timing model (perfect / fixed-latency / I$+D$ caches).
    /// Defaults to [`MemoryModel::Perfect`], the paper's assumption.
    pub memory: MemoryModel,
    /// Shadow-register provisioning.
    pub shadow_mode: ShadowMode,
    /// Store buffer capacity in entries.
    pub store_buffer_size: usize,
    /// Store-buffer retires to the D-cache per cycle.
    pub retire_per_cycle: usize,
    /// Penalty cycles for a taken region-exit jump.  The paper assumes
    /// BTB-predictable branches impose no penalty, so the default is 0.
    pub taken_jump_penalty: u64,
    /// Pipeline refill cycles charged when recovery rolls back to the RPC.
    pub rollback_penalty: u64,
    /// Addresses whose first access raises a non-fatal fault (handled at
    /// [`MachineConfig::fault_penalty`] cost); mirrors
    /// `ScalarConfig::fault_once_addrs`.
    pub fault_once_addrs: BTreeSet<i64>,
    /// Handler cost of a non-fatal fault.
    pub fault_penalty: u64,
    /// Safety limit; exceeding it aborts the run.
    pub max_cycles: u64,
    /// Record the per-cycle event log (Table 1 reproduction / debugging).
    pub record_events: bool,
    /// Commit-pass strategy (simulator-only knob; no architectural effect).
    pub commit_scan: CommitScan,
    /// Issue-path engine (simulator-only knob; no architectural effect).
    pub engine: Engine,
    /// **Test-only fault injection**: defer the recovery-exit commit pass to
    /// the next cycle's regular pass instead of running it before the EPC
    /// word issues.  This reintroduces the stale-shadow clobber the seed
    /// suite shipped with (a shadow waking on the future condition one cycle
    /// late overwrites the EPC word's sequential writes) and exists solely
    /// so the fuzzer's self-test can prove it catches and shrinks that bug.
    /// Must stay `false` everywhere else.
    pub defer_recovery_exit_commit: bool,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            issue_width: 4,
            resources: Resources::paper_base(),
            load_latency: 2,
            memory: MemoryModel::Perfect,
            shadow_mode: ShadowMode::Single,
            store_buffer_size: 16,
            retire_per_cycle: 1,
            taken_jump_penalty: 0,
            rollback_penalty: 2,
            fault_once_addrs: BTreeSet::new(),
            fault_penalty: 50,
            max_cycles: 200_000_000,
            record_events: false,
            commit_scan: CommitScan::Indexed,
            engine: Engine::default(),
            defer_recovery_exit_commit: false,
        }
    }
}

impl MachineConfig {
    /// The paper's base 4-issue machine with event recording enabled.
    pub fn with_events(mut self) -> MachineConfig {
        self.record_events = true;
        self
    }

    /// Selects the commit-pass strategy.
    pub fn with_commit_scan(mut self, scan: CommitScan) -> MachineConfig {
        self.commit_scan = scan;
        self
    }

    /// Selects the memory timing model.
    pub fn with_memory(mut self, memory: MemoryModel) -> MachineConfig {
        self.memory = memory;
        self
    }

    /// A 2-issue configuration as in the paper's Section 3.4 example.
    pub fn two_issue() -> MachineConfig {
        MachineConfig {
            issue_width: 2,
            resources: Resources {
                alu: 2,
                branch: 2,
                load: 1,
                store: 1,
            },
            ..MachineConfig::default()
        }
    }

    /// A full-issue machine of width `w` (Figure 8).
    pub fn full_issue(w: usize) -> MachineConfig {
        MachineConfig {
            issue_width: w,
            resources: Resources::full_issue(w),
            ..MachineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_base() {
        let c = MachineConfig::default();
        assert_eq!(c.issue_width, 4);
        assert_eq!(
            c.resources,
            Resources {
                alu: 4,
                branch: 4,
                load: 2,
                store: 1
            }
        );
        assert_eq!(c.load_latency, 2);
        assert_eq!(c.memory, MemoryModel::Perfect);
        assert_eq!(c.shadow_mode, ShadowMode::Single);
    }

    #[test]
    fn full_issue_duplicates_everything() {
        let c = MachineConfig::full_issue(8);
        assert_eq!(c.issue_width, 8);
        assert_eq!(
            c.resources,
            Resources {
                alu: 8,
                branch: 8,
                load: 8,
                store: 8
            }
        );
    }
}
