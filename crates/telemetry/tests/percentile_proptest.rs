//! Property tests for the log-bucketed histogram's percentile bracket:
//! for any sample stream and any percentile, the true nearest-rank
//! percentile of the raw samples must lie inside
//! `Histogram::percentile_bounds`, and `percentile()` (the upper side)
//! must never under-report it.

use proptest::collection::vec;
use proptest::prelude::*;
use psb_telemetry::Histogram;

/// Nearest-rank percentile of the raw samples (the definition the
/// histogram brackets): the `ceil(p/100 · n)`-th smallest, 1-based,
/// rank clamped to at least 1.
fn true_percentile(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Spread draws across bucket scales so small and huge values both show
/// up: a raw draw `v` in a wide range, right-shifted by a draw-dependent
/// amount.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    vec(
        (0u64..u64::MAX, 0u32..64).prop_map(|(v, sh)| v >> sh),
        1..200,
    )
}

proptest! {
    #[test]
    fn percentile_bounds_bracket_the_true_percentile(
        xs in samples(),
        p100 in 0u32..101,
    ) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let p = p100 as f64;
        let truth = true_percentile(&xs, p);
        let (lo, hi) = h.percentile_bounds(p);
        prop_assert!(
            lo <= truth && truth <= hi,
            "p{p100} of {} samples: true {truth} outside [{lo}, {hi}]",
            xs.len()
        );
        prop_assert!(h.percentile(p) >= truth);
        prop_assert_eq!(h.percentile(p), hi);
    }

    #[test]
    fn summary_percentiles_are_ordered_and_capped_by_max(xs in samples()) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let s = h.summary();
        prop_assert!(s.p50 <= s.p90);
        prop_assert!(s.p90 <= s.p99);
        prop_assert!(s.p99 <= s.max);
        prop_assert_eq!(s.count, xs.len() as u64);
        prop_assert_eq!(s.max, xs.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(s.min, xs.iter().copied().min().unwrap_or(0));
    }

    #[test]
    fn merged_histograms_keep_the_bracket_property(
        xs in samples(),
        ys in samples(),
        p100 in 0u32..101,
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &x in &xs {
            a.record(x);
        }
        for &y in &ys {
            b.record(y);
        }
        a.merge(&b);
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        let p = p100 as f64;
        let truth = true_percentile(&all, p);
        let (lo, hi) = a.percentile_bounds(p);
        prop_assert!(lo <= truth && truth <= hi);
    }
}
