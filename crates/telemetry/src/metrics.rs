//! The metrics registry: named counters, gauges, and log-bucketed
//! histograms with percentile readout.
//!
//! The histogram uses the same power-of-two bucketing idiom as the
//! machine's `CountersSink` (`psb-core`): value `v` lands in bucket
//! `ceil(log2(v + 1))`, so bucket 0 holds 0, bucket 1 holds 1, bucket 2
//! holds 2–3, and so on.  Buckets are coarse, but the histogram also
//! tracks exact count/sum/min/max, and every percentile estimate comes
//! with a proven bracket: the true nearest-rank percentile always lies
//! within [`Histogram::percentile_bounds`] (property-tested in
//! `tests/percentile_proptest.rs`).

use std::collections::BTreeMap;
use std::sync::Mutex;

/// A power-of-two-bucketed histogram of `u64` samples with exact
/// count/sum/min/max and bracketed percentile estimates.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index for `v` (`ceil(log2(v + 1))`).
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The inclusive value range `[lo, hi]` covered by bucket `i`
    /// (bucket 64, the last, is `[2^63, u64::MAX]`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            let i = i.min(64);
            let hi = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
            (1u64 << (i - 1), hi)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = Histogram::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket counts, lowest bucket first (no trailing zeros).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The bucket holding the nearest-rank `p`-th percentile sample
    /// (`None` when empty).  `p` is clamped to `[0, 100]`; the rank is
    /// `ceil(p/100 · count)`, clamped to at least 1.
    fn percentile_bucket(&self, p: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(i);
            }
        }
        Some(self.buckets.len().saturating_sub(1))
    }

    /// An inclusive bracket `[lo, hi]` guaranteed to contain the true
    /// nearest-rank `p`-th percentile of the recorded samples: the
    /// percentile's bucket range, tightened by the exact min/max.
    /// Returns `(0, 0)` when empty.
    pub fn percentile_bounds(&self, p: f64) -> (u64, u64) {
        match self.percentile_bucket(p) {
            None => (0, 0),
            Some(i) => {
                let (lo, hi) = Histogram::bucket_range(i);
                (
                    lo.max(self.min).min(self.max),
                    hi.min(self.max).max(self.min),
                )
            }
        }
    }

    /// The upper-bound estimate of the `p`-th percentile (the `hi` side
    /// of [`Histogram::percentile_bounds`]) — never below the true
    /// percentile, so latency SLO readouts are conservative.
    pub fn percentile(&self, p: f64) -> u64 {
        self.percentile_bounds(p).1
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// A point-in-time summary (the exporter payload).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            mean: self.mean(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            buckets: self.buckets.clone(),
        }
    }
}

/// Exporter-facing snapshot of one histogram: exact count/sum/min/max,
/// the mean, and upper-bound p50/p90/p99 estimates.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact smallest sample.
    pub min: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
    /// Upper-bound estimate of the 50th percentile.
    pub p50: u64,
    /// Upper-bound estimate of the 90th percentile.
    pub p90: u64,
    /// Upper-bound estimate of the 99th percentile.
    pub p99: u64,
    /// Raw bucket counts (power-of-two ranges, lowest first).
    pub buckets: Vec<u64>,
}

/// A thread-safe bank of named counters, gauges, and histograms.
///
/// Names are sorted (BTreeMap) so snapshots drain in a deterministic
/// order regardless of registration order — half of the determinism
/// contract; the other half is that callers only feed it
/// jobs-deterministic values in `--deterministic` mode (the [`Recorder`]
/// enforces this by dropping host-dependent records).
///
/// [`Recorder`]: crate::Recorder
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the named counter (created at 0).
    pub fn counter(&self, name: &str, delta: u64) {
        let mut c = self.counters.lock().expect("registry poisoned");
        match c.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                c.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: i64) {
        self.gauges
            .lock()
            .expect("registry poisoned")
            .insert(name.to_string(), value);
    }

    /// Records `value` into the named histogram (created empty).
    pub fn observe(&self, name: &str, value: u64) {
        let mut h = self.histograms.lock().expect("registry poisoned");
        match h.get_mut(name) {
            Some(hist) => hist.record(value),
            None => {
                let mut hist = Histogram::new();
                hist.record(value);
                h.insert(name.to_string(), hist);
            }
        }
    }

    /// Snapshot of every counter, name-sorted.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Snapshot of every gauge, name-sorted.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        self.gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Summary of every histogram, name-sorted.
    pub fn histograms(&self) -> Vec<(String, HistogramSummary)> {
        self.histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_the_power_of_two_idiom() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_range(3), (4, 7));
    }

    #[test]
    fn percentiles_bracket_simple_streams() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        // nearest-rank p50 of 1..=10 is 5 (rank 5); its bucket is 4..7.
        let (lo, hi) = h.percentile_bounds(50.0);
        assert!(lo <= 5 && 5 <= hi, "[{lo}, {hi}]");
        assert!(h.percentile(50.0) >= 5);
        // p100 must be exactly the max — the bracket collapses on it.
        assert_eq!(h.percentile(100.0), 10);
        assert_eq!(h.percentile_bounds(100.0), (8, 10));
        // p0 clamps to rank 1 (the min's bucket).
        let (lo, hi) = h.percentile_bounds(0.0);
        assert!(lo <= 1 && 1 <= hi);
    }

    #[test]
    fn empty_and_single_sample_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.percentile_bounds(50.0), (0, 0));
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.percentile(50.0), 42);
        assert_eq!(h.percentile_bounds(99.0), (42, 42));
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0u64, 1, 5, 9, 100] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 64, 2] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_snapshots_sort_by_name() {
        let r = Registry::new();
        r.counter("z", 2);
        r.counter("a", 1);
        r.counter("z", 3);
        r.gauge("g", -4);
        r.observe("h", 7);
        r.observe("h", 9);
        assert_eq!(
            r.counters(),
            vec![("a".to_string(), 1), ("z".to_string(), 5)]
        );
        assert_eq!(r.gauges(), vec![("g".to_string(), -4)]);
        let h = r.histograms();
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].0, "h");
        assert_eq!(h[0].1.count, 2);
        assert_eq!(h[0].1.sum, 16);
    }
}
