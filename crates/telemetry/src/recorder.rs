//! The recording backend: per-thread span buffers plus a shared
//! [`Registry`], merged into a [`TelemetryReport`] snapshot.
//!
//! Each thread that records through a [`Recorder`] lazily registers a
//! private [`ThreadBuffer`]; recording a span only locks that thread's
//! own buffer, so worker threads never contend with each other on the
//! span path.  `report()` merges all buffers and sorts them with a
//! total order, which is what makes deterministic-mode output
//! byte-identical at any `--jobs`: with timestamps zeroed and
//! host-dependent records dropped, the surviving records are a
//! jobs-independent *set*, and the sort fixes their serialization
//! order.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{HistogramSummary, Registry};
use crate::Telemetry;

/// One completed span: category, name, wall window, and recording
/// thread.  In deterministic mode `start_ns`, `dur_ns`, and `tid` are
/// all zero.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// Coarse grouping for exporters ("compile", "task", ...).
    pub cat: &'static str,
    /// Span instance name (unique enough to read on a timeline).
    pub name: String,
    /// Start offset from the recorder's epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Recording thread's registration index (0 = first registrant).
    pub tid: u64,
}

/// A single thread's span buffer.  Only its owning thread pushes;
/// `report()` reads under the same lock.
struct ThreadBuffer {
    tid: u64,
    spans: Mutex<Vec<SpanRecord>>,
}

struct TlsEntry {
    recorder_id: u64,
    buf: Arc<ThreadBuffer>,
}

thread_local! {
    // One entry per (thread, recorder) pair.  Recorders are created
    // once per driver invocation, so this stays tiny; entries for
    // dropped recorders are unreachable garbage of a few words.
    static TLS_BUFFERS: RefCell<Vec<TlsEntry>> = const { RefCell::new(Vec::new()) };
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(0);

/// Merged snapshot of everything a [`Recorder`] captured, name-sorted
/// and ready for the exporters.
#[derive(Clone, PartialEq, Debug)]
pub struct TelemetryReport {
    /// True when the recorder ran in deterministic mode (timestamps
    /// zeroed, host-dependent records dropped).
    pub deterministic: bool,
    /// All spans from all threads, in a total deterministic order.
    pub spans: Vec<SpanRecord>,
    /// Counter snapshot, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge snapshot, name-sorted (always empty in deterministic mode).
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, name-sorted.
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// The recording [`Telemetry`] implementation: monotonic clock,
/// per-thread span buffers, shared metrics registry.
///
/// `deterministic` mode keeps every *count* (span presence, histogram
/// sample counts, counters) but zeroes every wall-clock-derived value
/// and drops the `_host` record families entirely, so the resulting
/// [`TelemetryReport`] is byte-identical however many worker threads
/// produced it.
pub struct Recorder {
    id: u64,
    deterministic: bool,
    epoch: Instant,
    threads: Mutex<Vec<Arc<ThreadBuffer>>>,
    registry: Registry,
}

impl Recorder {
    /// A fresh recorder; `deterministic` selects the zeroed-timestamp
    /// mode described on the type.
    pub fn new(deterministic: bool) -> Recorder {
        Recorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            deterministic,
            epoch: Instant::now(),
            threads: Mutex::new(Vec::new()),
            registry: Registry::new(),
        }
    }

    /// This thread's buffer for this recorder, registering on first use.
    fn with_buffer<R>(&self, f: impl FnOnce(&ThreadBuffer) -> R) -> R {
        TLS_BUFFERS.with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some(e) = tls.iter().find(|e| e.recorder_id == self.id) {
                return f(&e.buf);
            }
            let buf = {
                let mut threads = self.threads.lock().expect("recorder poisoned");
                let buf = Arc::new(ThreadBuffer {
                    tid: threads.len() as u64,
                    spans: Mutex::new(Vec::new()),
                });
                threads.push(Arc::clone(&buf));
                buf
            };
            tls.push(TlsEntry {
                recorder_id: self.id,
                buf: Arc::clone(&buf),
            });
            f(&buf)
        })
    }

    /// Merges every thread's spans with the registry into one report.
    /// Non-destructive: recording may continue afterwards.
    pub fn report(&self) -> TelemetryReport {
        let mut spans = Vec::new();
        for buf in self.threads.lock().expect("recorder poisoned").iter() {
            spans.extend_from_slice(&buf.spans.lock().expect("recorder poisoned"));
        }
        if self.deterministic {
            // Timestamps and tids are all zero; the record content is
            // the only identity.  Full-record key => total order.
            spans.sort_by(|a, b| {
                (a.cat, &a.name, a.start_ns, a.dur_ns, a.tid)
                    .cmp(&(b.cat, &b.name, b.start_ns, b.dur_ns, b.tid))
            });
        } else {
            // Timeline order; name breaks exact-timestamp ties.
            spans.sort_by(|a, b| {
                (a.start_ns, a.tid, a.dur_ns, a.cat, &a.name)
                    .cmp(&(b.start_ns, b.tid, b.dur_ns, b.cat, &b.name))
            });
        }
        TelemetryReport {
            deterministic: self.deterministic,
            spans,
            counters: self.registry.counters(),
            gauges: self.registry.gauges(),
            histograms: self.registry.histograms(),
        }
    }
}

impl Telemetry for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn deterministic(&self) -> bool {
        self.deterministic
    }

    fn now_ns(&self) -> u64 {
        if self.deterministic {
            0
        } else {
            self.epoch.elapsed().as_nanos() as u64
        }
    }

    fn record_span(&self, cat: &'static str, name: String, start_ns: u64, dur_ns: u64) {
        self.with_buffer(|buf| {
            let tid = if self.deterministic { 0 } else { buf.tid };
            buf.spans
                .lock()
                .expect("recorder poisoned")
                .push(SpanRecord {
                    cat,
                    name,
                    start_ns,
                    dur_ns,
                    tid,
                });
        });
    }

    fn record_span_host(&self, cat: &'static str, name: String, start_ns: u64, dur_ns: u64) {
        if !self.deterministic {
            self.record_span(cat, name, start_ns, dur_ns);
        }
    }

    fn counter(&self, name: &str, delta: u64) {
        self.registry.counter(name, delta);
    }

    fn gauge_host(&self, name: &str, value: i64) {
        if !self.deterministic {
            self.registry.gauge(name, value);
        }
    }

    fn observe(&self, name: &str, value: u64) {
        // Deterministic mode keeps the sample count (jobs-independent)
        // but zeroes the wall-derived value.
        let v = if self.deterministic { 0 } else { value };
        self.registry.observe(name, v);
    }

    fn observe_host(&self, name: &str, value: u64) {
        if !self.deterministic {
            self.registry.observe(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn spans_record_and_merge() {
        let rec = Recorder::new(false);
        {
            let _outer = rec.span("test", || "outer".to_string());
            let _inner = rec.span("test", || "inner".to_string());
        }
        let rep = rec.report();
        assert_eq!(rep.spans.len(), 2);
        // Outer starts first; inner (dropped first) ends first.
        assert_eq!(rep.spans[0].name, "outer");
        assert!(rep.spans[0].start_ns <= rep.spans[1].start_ns);
        assert!(!rep.deterministic);
    }

    #[test]
    fn deterministic_mode_zeroes_wall_values_and_drops_host_records() {
        let rec = Recorder::new(true);
        {
            let _s = rec.span("cat", || "a".to_string());
        }
        let _ = rec.span_host("cat", || "host-only".to_string());
        rec.counter("c", 3);
        rec.gauge_host("g", 9);
        rec.observe("h", 12345);
        rec.observe_host("hh", 77);
        let rep = rec.report();
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(
            rep.spans[0],
            SpanRecord {
                cat: "cat",
                name: "a".to_string(),
                start_ns: 0,
                dur_ns: 0,
                tid: 0,
            }
        );
        assert_eq!(rep.counters, vec![("c".to_string(), 3)]);
        assert!(rep.gauges.is_empty());
        assert_eq!(rep.histograms.len(), 1);
        assert_eq!(rep.histograms[0].0, "h");
        assert_eq!(rep.histograms[0].1.count, 1);
        assert_eq!(rep.histograms[0].1.max, 0);
    }

    #[test]
    fn threads_get_distinct_buffers_and_all_spans_survive() {
        let rec = Recorder::new(false);
        thread::scope(|s| {
            for i in 0..4 {
                let rec = &rec;
                s.spawn(move || {
                    for j in 0..8 {
                        let _sp = rec.span("worker", || format!("t{i}.{j}"));
                    }
                });
            }
        });
        let rep = rec.report();
        assert_eq!(rep.spans.len(), 32);
        let mut tids: Vec<u64> = rep.spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn deterministic_report_is_identical_across_thread_counts() {
        let run = |threads: usize| {
            let rec = Recorder::new(true);
            thread::scope(|s| {
                for chunk in (0..16).collect::<Vec<usize>>().chunks(16 / threads) {
                    let chunk = chunk.to_vec();
                    let rec = &rec;
                    s.spawn(move || {
                        for i in chunk {
                            let _sp = rec.span("task", || format!("case{i}"));
                            rec.observe("task.ns", (i as u64 + 1) * 1000);
                            rec.counter("tasks", 1);
                        }
                    });
                }
            });
            rec.report()
        };
        assert_eq!(run(1), run(4));
    }
}
