//! The shared vocabulary of server and store metric names.
//!
//! `psb-serve` records into a [`Registry`](crate::Registry) and renders
//! the snapshot at `/metrics`; the loadgen client and the integration
//! tests read the same snapshot back.  Keeping every name here as a
//! `const` makes producer and consumer agree by construction, and keeps
//! the deterministic/host split auditable in one place: names ending in
//! `_ns` or `_depth` carry wall- or scheduling-dependent values and are
//! only meaningful outside deterministic mode; everything else is a
//! jobs-deterministic count.

/// Requests fully processed, labelled by endpoint: `serve.requests.run`,
/// `serve.requests.compile`, …
pub const SERVE_REQUESTS_PREFIX: &str = "serve.requests.";

/// Responses sent, labelled by status class: `serve.responses.200`,
/// `serve.responses.400`, `serve.responses.503`, …
pub const SERVE_RESPONSES_PREFIX: &str = "serve.responses.";

/// Requests rejected at admission because the connection queue was at
/// its depth limit (one 503 + `Retry-After` each).
pub const SERVE_REJECTED_QUEUE: &str = "serve.rejected.queue_full";

/// Requests rejected because a simulation hit its cycle budget (503).
pub const SERVE_REJECTED_BUDGET: &str = "serve.rejected.over_budget";

/// Model-runs served from the in-memory artifact cache.
pub const SERVE_CACHE_MEMORY_HITS: &str = "serve.cache.memory_hits";

/// Model-runs served by loading a persisted artifact from disk.
pub const SERVE_CACHE_DISK_HITS: &str = "serve.cache.disk_hits";

/// Model-runs that compiled from scratch.
pub const SERVE_CACHE_COMPILES: &str = "serve.cache.compiles";

/// End-to-end request latency histogram (host; nanoseconds).
pub const SERVE_REQUEST_NS: &str = "serve.request_ns";

/// Time a connection waited in the accept queue before a worker picked
/// it up (host; nanoseconds) — the admission-control signal.
pub const SERVE_QUEUE_WAIT_NS: &str = "serve.queue_wait_ns";

/// Connections waiting in the accept queue, sampled at enqueue (host).
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";

/// Keep-alive connections dropped because a read timed out (a stalled
/// or silent client).
pub const SERVE_READ_TIMEOUTS: &str = "serve.read_timeouts";

/// Artifacts served from the on-disk store.
pub const STORE_HITS: &str = "store.hits";

/// Store lookups that found no file for the key.
pub const STORE_MISSES: &str = "store.misses";

/// Store files that failed validation (corrupt, truncated, stale) and
/// fell back to a fresh compile.
pub const STORE_ERRORS: &str = "store.errors";

/// Artifacts persisted to the store.
pub const STORE_WRITES: &str = "store.writes";

/// Artifacts deleted from the store to stay under its size cap.
pub const STORE_EVICTIONS: &str = "store.evictions";

/// Wall time of a successful store load (host; nanoseconds).
pub const STORE_LOAD_NS: &str = "store.load_ns";

/// Wall time of a store save (host; nanoseconds).
pub const STORE_SAVE_NS: &str = "store.save_ns";
