//! psb-telemetry — host-side observability for the PSB toolchain.
//!
//! The guest machine got its instrumentation architecture in PR 2
//! (`TraceSink` / `CountersSink`); this crate gives the *host* layers —
//! the compile stage graph, the sharded artifact cache, and the
//! `parallel_map` worker pool — the same treatment:
//!
//! - **Spans** ([`Telemetry::span`]): RAII enter/exit guards stamped
//!   with a monotonic clock, recorded into per-thread buffers and
//!   merged deterministically ([`Recorder::report`]).
//! - **Metrics** ([`Registry`]): named counters, gauges, and
//!   log-bucketed [`Histogram`]s (the same power-of-two idiom as the
//!   guest `CountersSink`) with bracketed p50/p90/p99/max readout.
//! - **Determinism**: a `Recorder` in deterministic mode zeroes every
//!   wall-derived value and drops the `_host` record families, so
//!   reports are byte-identical at any `--jobs` — the property CI pins.
//!
//! The [`NullTelemetry`] default implements every hook as a no-op on an
//! `enabled() == false` carrier, so fully-monomorphized call sites
//! compile to the uninstrumented path (criterion-guarded in
//! `crates/bench`, same discipline as the guest `NullSink`).
//!
//! Exporters live in `psb-eval` (`telemetry_export`), next to the
//! hand-rolled JSON emitter and the guest Chrome-trace writer they
//! merge with.

mod metrics;
pub mod names;
mod pool;
mod recorder;

pub use metrics::{Histogram, HistogramSummary, Registry};
pub use pool::{parallel_map, parallel_map_t};
pub use recorder::{Recorder, SpanRecord, TelemetryReport};

/// The instrumentation interface threaded through host code paths.
///
/// Two record families with one rule: the plain methods may only carry
/// values that are identical at any `--jobs` (a [`Recorder`] in
/// deterministic mode zeroes their wall-derived payloads but keeps the
/// records); the `_host` methods carry anything scheduling-dependent —
/// worker utilization, lock waits, wall gauges — and are dropped
/// entirely in deterministic mode.
///
/// Every method defaults to a no-op so [`NullTelemetry`] is just an
/// empty `impl`, and generic call sites monomorphize it away.
pub trait Telemetry: Sync {
    /// False for [`NullTelemetry`]; lets call sites skip building span
    /// names and other payloads entirely.
    fn enabled(&self) -> bool {
        false
    }

    /// True when wall-derived values are being zeroed for
    /// jobs-independent output.
    fn deterministic(&self) -> bool {
        false
    }

    /// Nanoseconds since the recorder's epoch (monotonic); 0 when
    /// disabled or deterministic.
    fn now_ns(&self) -> u64 {
        0
    }

    /// Records a completed span whose presence and name are
    /// jobs-deterministic.
    fn record_span(&self, _cat: &'static str, _name: String, _start_ns: u64, _dur_ns: u64) {}

    /// Records a completed host-dependent span (dropped in
    /// deterministic mode).
    fn record_span_host(&self, _cat: &'static str, _name: String, _start_ns: u64, _dur_ns: u64) {}

    /// Adds `delta` to a counter.  Counter values must be
    /// jobs-deterministic (counts of work items, cache outcomes —
    /// never durations).
    fn counter(&self, _name: &str, _delta: u64) {}

    /// Sets a host-dependent gauge (dropped in deterministic mode).
    fn gauge_host(&self, _name: &str, _value: i64) {}

    /// Records a histogram sample whose *count* is jobs-deterministic;
    /// the value is zeroed in deterministic mode.
    fn observe(&self, _name: &str, _value: u64) {}

    /// Records a host-dependent histogram sample (dropped in
    /// deterministic mode).
    fn observe_host(&self, _name: &str, _value: u64) {}

    /// Opens a span closed by the returned guard's drop.  `name` is
    /// only invoked when [`Telemetry::enabled`]; disabled carriers pay
    /// a branch and nothing else.
    fn span<F: FnOnce() -> String>(&self, cat: &'static str, name: F) -> SpanGuard<'_, Self>
    where
        Self: Sized,
    {
        SpanGuard::open(self, cat, name, false)
    }

    /// [`Telemetry::span`], but recorded through
    /// [`Telemetry::record_span_host`] (dropped in deterministic mode).
    fn span_host<F: FnOnce() -> String>(&self, cat: &'static str, name: F) -> SpanGuard<'_, Self>
    where
        Self: Sized,
    {
        SpanGuard::open(self, cat, name, true)
    }
}

/// RAII span guard: created by [`Telemetry::span`], records the span on
/// drop.  Holds no name (and records nothing) when the carrier is
/// disabled.
pub struct SpanGuard<'t, T: Telemetry> {
    tel: &'t T,
    cat: &'static str,
    name: Option<String>,
    start_ns: u64,
    host: bool,
}

impl<'t, T: Telemetry> SpanGuard<'t, T> {
    fn open<F: FnOnce() -> String>(
        tel: &'t T,
        cat: &'static str,
        name: F,
        host: bool,
    ) -> SpanGuard<'t, T> {
        if tel.enabled() {
            SpanGuard {
                tel,
                cat,
                name: Some(name()),
                start_ns: tel.now_ns(),
                host,
            }
        } else {
            SpanGuard {
                tel,
                cat,
                name: None,
                start_ns: 0,
                host,
            }
        }
    }
}

impl<T: Telemetry> Drop for SpanGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            let dur = self.tel.now_ns().saturating_sub(self.start_ns);
            if self.host {
                self.tel
                    .record_span_host(self.cat, name, self.start_ns, dur);
            } else {
                self.tel.record_span(self.cat, name, self.start_ns, dur);
            }
        }
    }
}

/// The always-on no-op carrier.  Every hook inherits the trait's empty
/// default, so `compile_with(&NullTelemetry, ...)` monomorphizes to the
/// same code as the uninstrumented pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NullTelemetry;

impl Telemetry for NullTelemetry {}

/// Rounds a wall-clock duration in seconds to whole microseconds.
///
/// The one shared definition of the idiom previously copy-pasted as
/// `(wall * 1e6).round() / 1e6` across `RunMetrics`, `CompileStats`,
/// and the bench `host` blocks: reports keep microsecond precision so
/// JSON diffs don't churn on sub-microsecond noise.
pub fn round_us(seconds: f64) -> f64 {
    (seconds * 1e6).round() / 1e6
}

/// [`round_us`] over a nanosecond count (the native span/histogram
/// unit), for exporters that report seconds.
pub fn ns_to_rounded_s(ns: u64) -> f64 {
    round_us(ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_telemetry_is_disabled_and_never_builds_names() {
        let tel = NullTelemetry;
        assert!(!tel.enabled());
        assert_eq!(tel.now_ns(), 0);
        {
            let _sp = tel.span("cat", || unreachable!("name built while disabled"));
        }
        let _sp = tel.span_host("cat", || -> String { unreachable!() });
        tel.counter("c", 1);
        tel.observe("h", 2);
    }

    #[test]
    fn round_us_matches_the_legacy_idiom() {
        for wall in [0.0, 1.5e-7, 0.1234567891, 12.000000499, 3.25] {
            assert_eq!(round_us(wall), (wall * 1e6).round() / 1e6);
        }
        assert_eq!(round_us(0.1234567891), 0.123457);
        assert_eq!(ns_to_rounded_s(123_456_789), 0.123457);
    }
}
