//! The instrumented worker pool shared by the experiment harness and
//! the simulation server.
//!
//! Lived in `psb-eval` until the server needed it too; it only ever
//! depended on the [`Telemetry`] trait and `std`, so it moved down here
//! where both crates can reach it without `psb-serve` pulling in the
//! whole experiment harness.

use crate::{NullTelemetry, Telemetry};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, fanning out over `jobs` worker threads.
///
/// Results are returned in input order regardless of which worker produced
/// them or when, so experiment output is identical for every job count
/// (`jobs <= 1` doesn't spawn at all).  Workers pull indices from a shared
/// counter, which balances uneven per-item cost — a worker that finishes a
/// cheap workload early immediately picks up the next point.
///
/// # Panics
///
/// A panic on any worker (a golden-model divergence, say) is re-raised on
/// the caller's thread once the scope joins.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_t(items, jobs, &NullTelemetry, |_, _| String::new(), f)
}

/// [`parallel_map`] with the worker pool instrumented.
///
/// Per task (jobs-deterministic record counts): a `task` span named by
/// `label(index, item)` — only invoked when telemetry is enabled — and a
/// `pmap.task_ns` latency sample.  Host-only (dropped in deterministic
/// mode): `pmap.queue_wait_ns` (map start → task start), a `pmap`
/// span per worker, each worker's `pmap.worker_busy_ns`, and
/// `pmap.worker_util_permille` (busy time over worker lifetime).
///
/// # Panics
///
/// See [`parallel_map`].
pub fn parallel_map_t<T, R, F, L, Tel>(
    items: &[T],
    jobs: usize,
    tel: &Tel,
    label: L,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    L: Fn(usize, &T) -> String + Sync,
    Tel: Telemetry,
{
    let jobs = jobs.min(items.len());
    tel.counter("pmap.items", items.len() as u64);
    let epoch = tel.now_ns();
    let run_one = |i: usize, item: &T| -> R {
        let t_start = tel.now_ns();
        tel.observe_host("pmap.queue_wait_ns", t_start.saturating_sub(epoch));
        let r = f(item);
        let dur = tel.now_ns().saturating_sub(t_start);
        tel.observe("pmap.task_ns", dur);
        if tel.enabled() {
            tel.record_span("task", label(i, item), t_start, dur);
        }
        r
    };
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_one(i, item))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(jobs);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let run_one = &run_one;
                let next = &next;
                s.spawn(move || {
                    let _worker_span = tel.span_host("pmap", || format!("worker{w}"));
                    let born = tel.now_ns();
                    let mut busy = 0u64;
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let t0 = tel.now_ns();
                        out.push((i, run_one(i, &items[i])));
                        busy += tel.now_ns().saturating_sub(t0);
                    }
                    let lifetime = tel.now_ns().saturating_sub(born);
                    if let Some(util) = busy.saturating_mul(1000).checked_div(lifetime) {
                        tel.observe_host("pmap.worker_busy_ns", busy);
                        tel.observe_host("pmap.worker_util_permille", util);
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut slots: Vec<Option<R>> = items.iter().map(|_| None).collect();
    for (i, r) in parts.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(&items, 1, |&x| x * x);
        for jobs in [2, 3, 8, 200] {
            assert_eq!(parallel_map(&items, jobs, |&x| x * x), serial);
        }
        assert_eq!(parallel_map(&[] as &[u64], 4, |&x| x), Vec::<u64>::new());
    }

    #[test]
    fn parallel_map_propagates_worker_panics() {
        let items: Vec<u64> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&x| {
                assert!(x != 7, "boom at {x}");
                x
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn parallel_map_t_records_jobs_independent_telemetry() {
        use crate::Recorder;
        let items: Vec<u64> = (0..24).collect();
        let run = |jobs: usize| {
            let rec = Recorder::new(true);
            let out = parallel_map_t(&items, jobs, &rec, |i, _| format!("item{i}"), |&x| x + 1);
            assert_eq!(out, (1..25).collect::<Vec<u64>>());
            rec.report()
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial.spans.len(), 24);
        assert!(serial.spans.iter().all(|s| s.cat == "task"));
        assert_eq!(serial.counters, vec![("pmap.items".to_string(), 24)]);
        let task = serial
            .histograms
            .iter()
            .find(|(n, _)| n == "pmap.task_ns")
            .expect("task latency histogram");
        assert_eq!(task.1.count, 24);
        // Host-only worker metrics must not leak into deterministic mode.
        assert!(serial
            .histograms
            .iter()
            .all(|(n, _)| !n.starts_with("pmap.worker")));
    }
}
