//! Instruction set for the predicated-state-buffering (PSB) architecture.
//!
//! This crate defines the two program representations shared by every other
//! crate in the workspace:
//!
//! * **Scalar programs** ([`ScalarProgram`]): a control-flow graph of basic
//!   blocks over a MIPS-like register ISA.  These play the role of the
//!   optimised R3000 assembly that the paper's instruction schedulers consume
//!   and that the scalar reference machine (`psb-scalar`) executes.
//! * **VLIW programs** ([`VliwProgram`]): sequences of multi-operation
//!   instruction words in which every slot carries a *predicate* — an ANDed
//!   vector of possibly negated branch conditions over the condition code
//!   register (CCR), exactly as in Section 3.2 of the paper.  These are
//!   executed by the predicating machine (`psb-core`).
//!
//! The predicate machinery ([`Predicate`], [`Ccr`], [`Cond`]) implements the
//! paper's encoding: each of up to [`MAX_CONDS`] CCR entries contributes a
//! term that is *positive*, *negated* or *don't care*, and evaluation is a
//! masked match between the predicate vector and the CCR contents that yields
//! a three-valued result (true / false / unspecified).
//!
//! # Example
//!
//! ```
//! use psb_isa::{Ccr, Cond, CondReg, Predicate};
//!
//! // The predicate c0 & !c1 from the paper's running example.
//! let p = Predicate::always().and_pos(CondReg::new(0)).and_neg(CondReg::new(1));
//! let mut ccr = Ccr::new(4);
//! assert_eq!(p.eval(&ccr), Cond::Unspecified);
//! ccr.set(CondReg::new(0), true);
//! assert_eq!(p.eval(&ccr), Cond::Unspecified); // c1 still unknown
//! ccr.set(CondReg::new(1), true);
//! assert_eq!(p.eval(&ccr), Cond::False); // !c1 fails
//! ```

#![warn(missing_docs)]

mod asm;
mod builder;
mod cond;
mod display;
mod mem;
mod op;
mod pred;
mod reg;
mod scalar;
mod vliw;

pub use asm::{parse_program, ParseAsmError};
pub use builder::{BlockBuilder, ProgramBuilder};
pub use cond::{Ccr, Cond};
pub use mem::{MemFault, Memory};
pub use op::{AluOp, CmpOp, MemTag, Op, Src};
pub use pred::{PredTerm, Predicate};
pub use reg::{CondReg, Reg, MAX_CONDS, NUM_REGS};
pub use scalar::{Block, BlockId, MemImage, ScalarProgram, Terminator};
pub use vliw::{FuClass, MultiOp, Resources, Slot, SlotOp, VliwProgram};
