//! The operation set shared by scalar and VLIW programs.

use crate::reg::{CondReg, Reg};

/// ALU operations.  Semantics are on two's-complement `i64` values; shifts
/// mask the shift amount to six bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-less-than (signed): 1 if `a < b`, else 0.
    Slt,
    /// Wrapping multiplication.
    Mul,
}

impl AluOp {
    /// Applies the operation to two values.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
            AluOp::Sra => a.wrapping_shr((b & 63) as u32),
            AluOp::Slt => i64::from(a < b),
            AluOp::Mul => a.wrapping_mul(b),
        }
    }
}

/// Comparison operations used by condition-set instructions and scalar
/// branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` (signed)
    Lt,
    /// `a <= b` (signed)
    Le,
    /// `a > b` (signed)
    Gt,
    /// `a >= b` (signed)
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two values.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The comparison with inverted truth value (`Lt` ↔ `Ge`, …).
    ///
    /// Used by the trace-predicating conversion of Section 4.2.1, where the
    /// condition-set instruction is negated so that "condition true" means
    /// "leave the predicted path".
    #[must_use]
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// A memory-aliasing tag.
///
/// The workload generators label every memory operation with the data
/// structure it addresses (a particular array, table, stack, …).  The
/// schedulers' memory-dependence analysis treats operations with different
/// tags as never aliasing and operations with equal tags (or the
/// conservative [`MemTag::ANY`]) as potentially aliasing.  This stands in
/// for the compiler alias analysis the paper's scheduler had access to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct MemTag(pub u16);

impl MemTag {
    /// The conservative tag: may alias anything, including other `ANY` ops.
    pub const ANY: MemTag = MemTag(0);

    /// Whether two tags may refer to the same memory.
    #[inline]
    pub fn may_alias(self, other: MemTag) -> bool {
        self == MemTag::ANY || other == MemTag::ANY || self == other
    }
}

/// A source operand: a register (optionally read from its *speculative*
/// shadow state) or an immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Src {
    /// Read register `reg`; when `shadow` is set the instruction word's
    /// per-source speculative-state bit is set and the operand is fetched
    /// from the shadow storage (falling back to the sequential storage when
    /// the shadow entry is invalid — the operand-fetch hardware of
    /// Section 3.5).  Scalar programs never set `shadow`.
    Reg {
        /// The register to read.
        reg: Reg,
        /// Fetch from the speculative state.
        shadow: bool,
    },
    /// An immediate value.
    Imm(i64),
}

impl Src {
    /// A sequential-state register source.
    #[inline]
    pub fn reg(r: Reg) -> Src {
        Src::Reg {
            reg: r,
            shadow: false,
        }
    }

    /// A speculative-state (shadow) register source.
    #[inline]
    pub fn shadow(r: Reg) -> Src {
        Src::Reg {
            reg: r,
            shadow: true,
        }
    }

    /// An immediate source.
    #[inline]
    pub fn imm(v: i64) -> Src {
        Src::Imm(v)
    }

    /// The register read by this source, if any.
    #[inline]
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Src::Reg { reg, .. } => Some(*reg),
            Src::Imm(_) => None,
        }
    }

    /// Returns a copy reading the same register with the shadow bit set to
    /// `shadow`; immediates are returned unchanged.
    #[must_use]
    pub fn with_shadow(self, shadow: bool) -> Src {
        match self {
            Src::Reg { reg, .. } => Src::Reg { reg, shadow },
            imm => imm,
        }
    }
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Src {
        Src::reg(r)
    }
}

impl From<i64> for Src {
    fn from(v: i64) -> Src {
        Src::imm(v)
    }
}

/// A straight-line operation: the operation part of an instruction.
///
/// The same type is used inside scalar basic blocks (where the `shadow`
/// bits of sources are always clear) and inside VLIW slots.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// `rd = a <op> b`
    Alu {
        /// The ALU operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First operand.
        a: Src,
        /// Second operand.
        b: Src,
    },
    /// `rd = src` — an explicit register copy (inserted by renaming).
    Copy {
        /// Destination register.
        rd: Reg,
        /// Source operand.
        src: Src,
    },
    /// `rd = load(base + offset)` — may cause a memory exception.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address operand.
        base: Src,
        /// Constant offset added to the base.
        offset: i64,
        /// Aliasing tag for the scheduler's memory-dependence analysis.
        tag: MemTag,
    },
    /// `store(base + offset) = value` — may cause a memory exception.
    Store {
        /// Base address operand.
        base: Src,
        /// Constant offset added to the base.
        offset: i64,
        /// The value to store.
        value: Src,
        /// Aliasing tag for the scheduler's memory-dependence analysis.
        tag: MemTag,
    },
    /// `c = a <cmp> b` — a condition-set instruction writing one CCR entry.
    ///
    /// Only appears in VLIW code (scalar branches carry their own compare);
    /// its predicate is always `alw` because the compiler does not
    /// re-allocate CCR entries within a region (Section 3.4).
    SetCond {
        /// Destination CCR entry.
        c: CondReg,
        /// The comparison.
        cmp: CmpOp,
        /// First operand.
        a: Src,
        /// Second operand.
        b: Src,
    },
    /// No operation.
    Nop,
}

impl Op {
    /// The general register written by this op, if any.
    pub fn def_reg(&self) -> Option<Reg> {
        match self {
            Op::Alu { rd, .. } | Op::Copy { rd, .. } | Op::Load { rd, .. } => {
                (!rd.is_zero()).then_some(*rd)
            }
            _ => None,
        }
    }

    /// The CCR entry written by this op, if any.
    pub fn def_cond(&self) -> Option<CondReg> {
        match self {
            Op::SetCond { c, .. } => Some(*c),
            _ => None,
        }
    }

    /// The source operands read by this op.
    pub fn srcs(&self) -> Vec<Src> {
        match self {
            Op::Alu { a, b, .. } | Op::SetCond { a, b, .. } => vec![*a, *b],
            Op::Copy { src, .. } => vec![*src],
            Op::Load { base, .. } => vec![*base],
            Op::Store { base, value, .. } => vec![*base, *value],
            Op::Nop => vec![],
        }
    }

    /// The registers read by this op (immediates skipped, duplicates kept).
    pub fn used_regs(&self) -> Vec<Reg> {
        self.srcs().iter().filter_map(Src::as_reg).collect()
    }

    /// Rewrites every register source via `f` (e.g. for renaming or setting
    /// shadow bits).  The destination is not touched.
    #[must_use]
    pub fn map_srcs(self, mut f: impl FnMut(Src) -> Src) -> Op {
        match self {
            Op::Alu { op, rd, a, b } => Op::Alu {
                op,
                rd,
                a: f(a),
                b: f(b),
            },
            Op::Copy { rd, src } => Op::Copy { rd, src: f(src) },
            Op::Load {
                rd,
                base,
                offset,
                tag,
            } => Op::Load {
                rd,
                base: f(base),
                offset,
                tag,
            },
            Op::Store {
                base,
                offset,
                value,
                tag,
            } => Op::Store {
                base: f(base),
                offset,
                value: f(value),
                tag,
            },
            Op::SetCond { c, cmp, a, b } => Op::SetCond {
                c,
                cmp,
                a: f(a),
                b: f(b),
            },
            Op::Nop => Op::Nop,
        }
    }

    /// Returns a copy with the destination register replaced by `rd`.
    ///
    /// # Panics
    ///
    /// Panics if the op has no general-register destination.
    #[must_use]
    pub fn with_def(self, new_rd: Reg) -> Op {
        match self {
            Op::Alu { op, a, b, .. } => Op::Alu {
                op,
                rd: new_rd,
                a,
                b,
            },
            Op::Copy { src, .. } => Op::Copy { rd: new_rd, src },
            Op::Load {
                base, offset, tag, ..
            } => Op::Load {
                rd: new_rd,
                base,
                offset,
                tag,
            },
            other => panic!("op {other:?} has no register destination"),
        }
    }

    /// Whether this op accesses memory.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }

    /// Whether this op is *unsafe* in the paper's sense: it may cause an
    /// exception, so moving it speculatively requires exception buffering.
    #[inline]
    pub fn is_unsafe(&self) -> bool {
        self.is_mem()
    }

    /// The memory tag, if this is a memory op.
    pub fn mem_tag(&self) -> Option<MemTag> {
        match self {
            Op::Load { tag, .. } | Op::Store { tag, .. } => Some(*tag),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN); // wrapping
        assert_eq!(AluOp::Sub.apply(3, 5), -2);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.apply(1, 4), 16);
        assert_eq!(AluOp::Srl.apply(-1, 60), 15);
        assert_eq!(AluOp::Sra.apply(-16, 2), -4);
        assert_eq!(AluOp::Slt.apply(-1, 0), 1);
        assert_eq!(AluOp::Slt.apply(0, 0), 0);
        assert_eq!(AluOp::Mul.apply(7, -3), -21);
    }

    #[test]
    fn shift_amount_masked() {
        assert_eq!(AluOp::Sll.apply(1, 64), 1);
        assert_eq!(AluOp::Sll.apply(1, 65), 2);
    }

    #[test]
    fn cmp_semantics_and_negation() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-5, 5)] {
                assert_eq!(op.apply(a, b), !op.negate().apply(a, b), "{op:?} {a} {b}");
            }
        }
    }

    #[test]
    fn mem_tag_aliasing() {
        assert!(MemTag::ANY.may_alias(MemTag(3)));
        assert!(MemTag(3).may_alias(MemTag::ANY));
        assert!(MemTag(3).may_alias(MemTag(3)));
        assert!(!MemTag(3).may_alias(MemTag(4)));
    }

    #[test]
    fn def_and_use_sets() {
        let r = Reg::new;
        let op = Op::Alu {
            op: AluOp::Add,
            rd: r(3),
            a: Src::reg(r(1)),
            b: Src::imm(7),
        };
        assert_eq!(op.def_reg(), Some(r(3)));
        assert_eq!(op.used_regs(), vec![r(1)]);

        let st = Op::Store {
            base: Src::reg(r(2)),
            offset: 4,
            value: Src::reg(r(5)),
            tag: MemTag(1),
        };
        assert_eq!(st.def_reg(), None);
        assert_eq!(st.used_regs(), vec![r(2), r(5)]);
        assert!(st.is_mem() && st.is_unsafe());
    }

    #[test]
    fn zero_register_never_defined() {
        let op = Op::Copy {
            rd: Reg::ZERO,
            src: Src::imm(9),
        };
        assert_eq!(op.def_reg(), None);
    }

    #[test]
    fn with_def_and_map_srcs() {
        let r = Reg::new;
        let op = Op::Load {
            rd: r(1),
            base: Src::reg(r(2)),
            offset: 0,
            tag: MemTag::ANY,
        };
        let renamed = op.with_def(r(9));
        assert_eq!(renamed.def_reg(), Some(r(9)));
        let shadowed = renamed.map_srcs(|s| s.with_shadow(true));
        assert_eq!(shadowed.srcs()[0], Src::shadow(r(2)));
    }
}
