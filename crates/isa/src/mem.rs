//! Word-addressed data memory shared by both machines.

use crate::scalar::MemImage;
use std::fmt;

/// A memory access fault.
///
/// Address `0` is the NULL page; negative and past-the-end addresses are
/// unmapped.  Dereferencing any of them faults — this is the exception
/// source the paper's speculative-exception machinery is built around
/// (e.g. the NULL dereference in the last iteration of a linked-list
/// traversal, Section 2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemFault {
    /// Access to address 0.
    Null,
    /// Access outside `1..size`.
    OutOfRange(i64),
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Null => write!(f, "NULL dereference"),
            MemFault::OutOfRange(a) => write!(f, "access to unmapped address {a}"),
        }
    }
}

impl std::error::Error for MemFault {}

/// Flat word-addressed memory: each address holds one `i64`.
#[derive(Clone, PartialEq, Debug)]
pub struct Memory {
    cells: Vec<i64>,
}

impl Memory {
    /// Builds memory from an initial image.
    ///
    /// # Panics
    ///
    /// Panics if an image cell is out of range (images built through
    /// [`MemImage::set`](crate::MemImage::set) never are).
    pub fn from_image(image: &MemImage) -> Memory {
        let mut cells = vec![0; image.size.max(0) as usize];
        for &(addr, value) in &image.cells {
            cells[addr as usize] = value;
        }
        Memory { cells }
    }

    /// Number of addressable words (valid addresses are `1..size`).
    #[inline]
    pub fn size(&self) -> i64 {
        self.cells.len() as i64
    }

    /// Validates an address.
    ///
    /// # Errors
    ///
    /// [`MemFault::Null`] for address 0, [`MemFault::OutOfRange`] outside
    /// `1..size`.
    #[inline]
    pub fn check(&self, addr: i64) -> Result<(), MemFault> {
        if addr == 0 {
            Err(MemFault::Null)
        } else if addr < 0 || addr >= self.size() {
            Err(MemFault::OutOfRange(addr))
        } else {
            Ok(())
        }
    }

    /// Reads one word.
    ///
    /// # Errors
    ///
    /// Faults as in [`Memory::check`].
    #[inline]
    pub fn read(&self, addr: i64) -> Result<i64, MemFault> {
        self.check(addr)?;
        Ok(self.cells[addr as usize])
    }

    /// Writes one word.
    ///
    /// # Errors
    ///
    /// Faults as in [`Memory::check`].
    #[inline]
    pub fn write(&mut self, addr: i64, value: i64) -> Result<(), MemFault> {
        self.check(addr)?;
        self.cells[addr as usize] = value;
        Ok(())
    }

    /// The raw cells (for final-state comparison in tests).
    pub fn cells(&self) -> &[i64] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_roundtrip() {
        let mut img = MemImage::zeroed(8);
        img.set(3, 42);
        let m = Memory::from_image(&img);
        assert_eq!(m.read(3), Ok(42));
        assert_eq!(m.read(4), Ok(0));
        assert_eq!(m.size(), 8);
    }

    #[test]
    fn faults() {
        let m = Memory::from_image(&MemImage::zeroed(8));
        assert_eq!(m.read(0), Err(MemFault::Null));
        assert_eq!(m.read(-1), Err(MemFault::OutOfRange(-1)));
        assert_eq!(m.read(8), Err(MemFault::OutOfRange(8)));
        assert_eq!(m.read(7), Ok(0));
    }

    #[test]
    fn write_then_read() {
        let mut m = Memory::from_image(&MemImage::zeroed(8));
        m.write(5, -7).unwrap();
        assert_eq!(m.read(5), Ok(-7));
        assert_eq!(m.write(0, 1), Err(MemFault::Null));
    }
}
