//! VLIW programs: predicated multi-operation instruction words.

use crate::op::{CmpOp, Op, Src};
use crate::pred::Predicate;
use crate::reg::{CondReg, Reg, MAX_CONDS};
use crate::scalar::MemImage;

/// Function-unit counts of a datapath, shared by the machine (which
/// enforces them) and the schedulers (which pack words within them).
///
/// The paper's base machine has four ALUs, four branch units, two load
/// units and one store unit (Section 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Resources {
    /// ALU count.
    pub alu: usize,
    /// Branch-unit count (jumps, compare-and-branch, condition-sets).
    pub branch: usize,
    /// Load-unit count.
    pub load: usize,
    /// Store-unit count.
    pub store: usize,
}

impl Resources {
    /// The paper's base machine: 4 ALU, 4 branch, 2 load, 1 store.
    pub fn paper_base() -> Resources {
        Resources {
            alu: 4,
            branch: 4,
            load: 2,
            store: 1,
        }
    }

    /// A *full-issue* machine (Figure 8): `w` of every unit.
    pub fn full_issue(w: usize) -> Resources {
        Resources {
            alu: w,
            branch: w,
            load: w,
            store: w,
        }
    }

    /// The available units of one class.
    pub fn of(&self, class: FuClass) -> usize {
        match class {
            FuClass::Alu => self.alu,
            FuClass::Branch => self.branch,
            FuClass::Load => self.load,
            FuClass::Store => self.store,
        }
    }
}

impl Default for Resources {
    fn default() -> Resources {
        Resources::paper_base()
    }
}

/// Function-unit classes of the machine's datapath.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FuClass {
    /// Arithmetic/logic (and copy) operations.
    Alu,
    /// Branch units: jumps, compare-and-branch, and condition-set
    /// instructions (branch-condition computation).
    Branch,
    /// Load units.
    Load,
    /// Store units.
    Store,
}

/// The operation carried by one VLIW slot.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SlotOp {
    /// A straight-line operation.
    Op(Op),
    /// A predicated jump: if the slot predicate is true at issue, control
    /// transfers to `target` (always a region entry).  If the predicate is
    /// unspecified the word stalls until it resolves; if false the jump is
    /// squashed.
    Jump {
        /// Target word address (a region entry).
        target: usize,
    },
    /// A fused compare-and-branch, used by the non-predicating and boosting
    /// models: computes `v = a <cmp> b`, writes `v` to the optional
    /// condition `c`, and transfers control to `target` when `v` is true.
    CmpBr {
        /// CCR entry receiving the comparison result (boosting model); the
        /// purely squashing models pass `None`.
        c: Option<CondReg>,
        /// The comparison.
        cmp: CmpOp,
        /// First operand.
        a: Src,
        /// Second operand.
        b: Src,
        /// Target word address when the comparison holds (a region entry).
        target: usize,
    },
    /// Program end.
    Halt,
}

impl SlotOp {
    /// The function unit this operation occupies.
    pub fn fu_class(&self) -> FuClass {
        match self {
            SlotOp::Op(Op::Load { .. }) => FuClass::Load,
            SlotOp::Op(Op::Store { .. }) => FuClass::Store,
            SlotOp::Op(Op::SetCond { .. }) => FuClass::Branch,
            SlotOp::Op(_) => FuClass::Alu,
            SlotOp::Jump { .. } | SlotOp::CmpBr { .. } | SlotOp::Halt => FuClass::Branch,
        }
    }

    /// The registers read by this slot operation.
    pub fn srcs(&self) -> Vec<Src> {
        match self {
            SlotOp::Op(op) => op.srcs(),
            SlotOp::CmpBr { a, b, .. } => vec![*a, *b],
            SlotOp::Jump { .. } | SlotOp::Halt => vec![],
        }
    }
}

/// One slot of a VLIW word: a predicate plus an operation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Slot {
    /// The commit condition of the operation.
    pub pred: Predicate,
    /// The operation.
    pub op: SlotOp,
}

impl Slot {
    /// Creates a slot.
    pub fn new(pred: Predicate, op: SlotOp) -> Slot {
        Slot { pred, op }
    }

    /// Creates an always-executed slot.
    pub fn alw(op: SlotOp) -> Slot {
        Slot {
            pred: Predicate::always(),
            op,
        }
    }
}

/// One VLIW instruction word: up to `issue_width` slots issued together.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MultiOp {
    /// The operations issued in this word.
    pub slots: Vec<Slot>,
}

impl MultiOp {
    /// Creates a word from slots.
    pub fn new(slots: Vec<Slot>) -> MultiOp {
        MultiOp { slots }
    }
}

/// A VLIW program for the predicating machine.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct VliwProgram {
    /// Human-readable name (usually `<program>.<model>`).
    pub name: String,
    /// The instruction words.
    pub words: Vec<MultiOp>,
    /// Sorted start addresses of the program's regions.  Word 0 must be a
    /// region start.  Control transfers (jumps and fall-through across a
    /// start) reset the CCR and update the region program counter.
    pub region_starts: Vec<usize>,
    /// Number of CCR entries (`K`) the code was compiled for.
    pub num_conds: usize,
    /// Initial register values (copied from the scalar program).
    pub init_regs: Vec<(Reg, i64)>,
    /// Initial memory image (copied from the scalar program).
    pub memory: MemImage,
    /// Output registers that must match the scalar execution.
    pub live_out: Vec<Reg>,
}

impl VliwProgram {
    /// The region start address owning word `addr`: the greatest region
    /// start that is `<= addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or precedes the first region.
    pub fn region_of(&self, addr: usize) -> usize {
        assert!(addr < self.words.len(), "address {addr} out of range");
        match self.region_starts.binary_search(&addr) {
            Ok(i) => self.region_starts[i],
            Err(0) => panic!("address {addr} precedes the first region"),
            Err(i) => self.region_starts[i - 1],
        }
    }

    /// Total number of non-nop operations (static code size).
    pub fn static_ops(&self) -> usize {
        self.words
            .iter()
            .flat_map(|w| &w.slots)
            .filter(|s| !matches!(s.op, SlotOp::Op(Op::Nop)))
            .count()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation: unsorted or empty
    /// region table, word 0 not a region start, a jump target that is not a
    /// region start, a predicate or condition-set referencing a CCR entry
    /// `>= num_conds`, or a condition-set instruction with a non-`alw`
    /// predicate (Section 3.4: the compiler does not re-allocate CCR
    /// entries, so condition-sets are always executed).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_conds == 0 || self.num_conds > MAX_CONDS {
            return Err(format!("num_conds {} out of range", self.num_conds));
        }
        if self.region_starts.first() != Some(&0) {
            return Err("word 0 must be a region start".into());
        }
        if !self.region_starts.windows(2).all(|w| w[0] < w[1]) {
            return Err("region starts must be strictly sorted".into());
        }
        if let Some(&last) = self.region_starts.last() {
            if last >= self.words.len() && !self.words.is_empty() {
                return Err("region start beyond end of program".into());
            }
        }
        for (addr, word) in self.words.iter().enumerate() {
            for (si, slot) in word.slots.iter().enumerate() {
                if let Some(max) = slot.pred.max_cond_index() {
                    if max >= self.num_conds {
                        return Err(format!(
                            "word {addr} slot {si}: predicate {} uses c{max} but K={}",
                            slot.pred, self.num_conds
                        ));
                    }
                }
                match slot.op {
                    SlotOp::Jump { target } | SlotOp::CmpBr { target, .. }
                        if self.region_starts.binary_search(&target).is_err() =>
                    {
                        return Err(format!(
                            "word {addr} slot {si}: jump target {target} is not a region start"
                        ));
                    }
                    SlotOp::Op(Op::SetCond { c, .. }) => {
                        if c.index() >= self.num_conds {
                            return Err(format!(
                                "word {addr} slot {si}: sets {c} but K={}",
                                self.num_conds
                            ));
                        }
                        if !slot.pred.is_always() {
                            return Err(format!(
                                "word {addr} slot {si}: condition-set has predicate {}",
                                slot.pred
                            ));
                        }
                    }
                    _ => {}
                }
                if let SlotOp::CmpBr { c: Some(c), .. } = slot.op {
                    if c.index() >= self.num_conds {
                        return Err(format!(
                            "word {addr} slot {si}: sets {c} but K={}",
                            self.num_conds
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::AluOp;

    fn prog(words: Vec<MultiOp>, regions: Vec<usize>) -> VliwProgram {
        VliwProgram {
            name: "t".into(),
            words,
            region_starts: regions,
            num_conds: 4,
            init_regs: vec![],
            memory: MemImage::zeroed(16),
            live_out: vec![],
        }
    }

    #[test]
    fn region_of_lookup() {
        let w = MultiOp::new(vec![Slot::alw(SlotOp::Halt)]);
        let p = prog(vec![w.clone(), w.clone(), w.clone(), w], vec![0, 2]);
        assert_eq!(p.region_of(0), 0);
        assert_eq!(p.region_of(1), 0);
        assert_eq!(p.region_of(2), 2);
        assert_eq!(p.region_of(3), 2);
    }

    #[test]
    fn validate_rejects_bad_jump_target() {
        let w = MultiOp::new(vec![Slot::alw(SlotOp::Jump { target: 1 })]);
        let halt = MultiOp::new(vec![Slot::alw(SlotOp::Halt)]);
        let p = prog(vec![w, halt], vec![0]);
        assert!(p.validate().unwrap_err().contains("not a region start"));
    }

    #[test]
    fn validate_rejects_predicated_setcond() {
        let sc = Op::SetCond {
            c: CondReg::new(0),
            cmp: CmpOp::Lt,
            a: Src::imm(0),
            b: Src::imm(1),
        };
        let w = MultiOp::new(vec![Slot::new(
            Predicate::always().and_pos(CondReg::new(1)),
            SlotOp::Op(sc),
        )]);
        let p = prog(vec![w], vec![0]);
        assert!(p
            .validate()
            .unwrap_err()
            .contains("condition-set has predicate"));
    }

    #[test]
    fn validate_rejects_oversized_condition() {
        let mut p = prog(
            vec![MultiOp::new(vec![Slot::new(
                Predicate::always().and_pos(CondReg::new(5)),
                SlotOp::Halt,
            )])],
            vec![0],
        );
        p.num_conds = 4;
        assert!(p.validate().unwrap_err().contains("uses c5"));
    }

    #[test]
    fn validate_requires_word0_region() {
        let p = prog(vec![MultiOp::new(vec![Slot::alw(SlotOp::Halt)])], vec![]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn fu_classes() {
        let r = Reg::new;
        assert_eq!(
            SlotOp::Op(Op::Alu {
                op: AluOp::Add,
                rd: r(1),
                a: Src::imm(1),
                b: Src::imm(2)
            })
            .fu_class(),
            FuClass::Alu
        );
        assert_eq!(SlotOp::Jump { target: 0 }.fu_class(), FuClass::Branch);
        assert_eq!(
            SlotOp::Op(Op::SetCond {
                c: CondReg::new(0),
                cmp: CmpOp::Eq,
                a: Src::imm(0),
                b: Src::imm(0)
            })
            .fu_class(),
            FuClass::Branch
        );
        assert_eq!(
            SlotOp::Op(Op::Load {
                rd: r(1),
                base: Src::imm(2),
                offset: 0,
                tag: Default::default()
            })
            .fu_class(),
            FuClass::Load
        );
    }

    #[test]
    fn static_ops_skips_nops() {
        let w = MultiOp::new(vec![
            Slot::alw(SlotOp::Op(Op::Nop)),
            Slot::alw(SlotOp::Halt),
        ]);
        let p = prog(vec![w], vec![0]);
        assert_eq!(p.static_ops(), 1);
    }
}
