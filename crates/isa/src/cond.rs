//! Three-valued branch conditions and the condition code register (CCR).

use crate::reg::{CondReg, MAX_CONDS};
use std::fmt;

/// A three-valued branch condition: the value of one CCR entry, or the
/// result of evaluating a [`Predicate`](crate::Predicate).
///
/// All CCR entries start out `Unspecified`; a condition-set instruction
/// specifies an entry to `True` or `False`; entering a new region resets
/// every entry to `Unspecified` (Section 3.3: the speculative state is
/// *closed* in a region).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Cond {
    /// No condition-set instruction has executed for this entry yet.
    #[default]
    Unspecified,
    /// The condition is known to hold.
    True,
    /// The condition is known not to hold.
    False,
}

impl Cond {
    /// Converts a boolean into a specified condition.
    #[inline]
    pub fn from_bool(b: bool) -> Cond {
        if b {
            Cond::True
        } else {
            Cond::False
        }
    }

    /// Whether the condition has been specified (is not `Unspecified`).
    #[inline]
    pub fn is_specified(self) -> bool {
        !matches!(self, Cond::Unspecified)
    }

    /// Three-valued logical AND (Kleene logic).
    #[inline]
    pub fn and(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::False, _) | (_, Cond::False) => Cond::False,
            (Cond::True, Cond::True) => Cond::True,
            _ => Cond::Unspecified,
        }
    }

    /// Three-valued logical negation.
    ///
    /// Deliberately an inherent method (not `std::ops::Not`): `Cond` is a
    /// three-valued logic and `!cond` syntax would suggest boolean
    /// semantics.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> Cond {
        match self {
            Cond::True => Cond::False,
            Cond::False => Cond::True,
            Cond::Unspecified => Cond::Unspecified,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::True => "T",
            Cond::False => "F",
            Cond::Unspecified => "U",
        };
        f.write_str(s)
    }
}

/// The condition code register: `K` three-valued entries, `c0 .. c{K-1}`.
///
/// One CCR instance holds the *current condition*; the machine keeps a
/// second instance (the *future CCR*) during speculative-exception recovery
/// (Section 3.5).
///
/// The entries are stored as two bitmasks — `spec` (bit `i` set once
/// `c{i}` has been specified) and `vals` (its boolean value, only
/// meaningful under a set `spec` bit and kept zero otherwise, so equality
/// stays structural).  That makes the register `Copy` and lets
/// [`Predicate::eval`](crate::Predicate::eval) and the commit hardware's
/// wakeup scan ([`Ccr::changed_mask`]) run as plain mask arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ccr {
    spec: u8,
    vals: u8,
    len: usize,
}

// The two u8 masks must cover every CCR slot.
const _: () = assert!(MAX_CONDS <= 8, "CCR masks are u8");

impl Ccr {
    /// Creates a CCR with `k` entries, all `Unspecified`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`MAX_CONDS`].
    pub fn new(k: usize) -> Ccr {
        assert!((1..=MAX_CONDS).contains(&k), "CCR size {k} out of range");
        Ccr {
            spec: 0,
            vals: 0,
            len: k,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the CCR has zero entries (never true; kept for API symmetry).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bitmask of specified entries (bit `i` set once `c{i}` was set).
    #[inline]
    pub fn spec_mask(&self) -> u8 {
        self.spec
    }

    /// Bitmask of entry values (bit `i` set when `c{i}` is `True`; only
    /// meaningful under a set [`Ccr::spec_mask`] bit).
    #[inline]
    pub fn vals_mask(&self) -> u8 {
        self.vals
    }

    /// Bitmask of the conditions whose state differs from `other`'s —
    /// the wakeup signal the condition-indexed commit scan keys on.
    #[inline]
    pub fn changed_mask(&self, other: &Ccr) -> u8 {
        (self.spec ^ other.spec) | (self.vals ^ other.vals)
    }

    /// Reads one entry.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside this CCR's `0..len` range.
    #[inline]
    pub fn get(&self, c: CondReg) -> Cond {
        assert!(
            c.index() < self.len,
            "condition {c} outside CCR of size {}",
            self.len
        );
        let b = 1u8 << c.index();
        if self.spec & b == 0 {
            Cond::Unspecified
        } else {
            Cond::from_bool(self.vals & b != 0)
        }
    }

    /// Specifies one entry to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside this CCR's range.
    #[inline]
    pub fn set(&mut self, c: CondReg, value: bool) {
        assert!(
            c.index() < self.len,
            "condition {c} outside CCR of size {}",
            self.len
        );
        let b = 1u8 << c.index();
        self.spec |= b;
        if value {
            self.vals |= b;
        } else {
            self.vals &= !b;
        }
    }

    /// Resets every entry to `Unspecified` (performed by hardware on every
    /// region exit).
    pub fn reset(&mut self) {
        self.spec = 0;
        self.vals = 0;
    }

    /// Iterates over `(name, value)` pairs for all entries.
    pub fn iter(&self) -> impl Iterator<Item = (CondReg, Cond)> + '_ {
        (0..self.len).map(move |i| (CondReg::new(i), self.get(CondReg::new(i))))
    }
}

impl fmt::Display for Ccr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (_, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kleene_and_truth_table() {
        use Cond::*;
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(False.and(Unspecified), False);
        assert_eq!(Unspecified.and(False), False);
        assert_eq!(True.and(Unspecified), Unspecified);
        assert_eq!(Unspecified.and(Unspecified), Unspecified);
    }

    #[test]
    fn kleene_not() {
        assert_eq!(Cond::True.not(), Cond::False);
        assert_eq!(Cond::False.not(), Cond::True);
        assert_eq!(Cond::Unspecified.not(), Cond::Unspecified);
    }

    #[test]
    fn ccr_set_get_reset() {
        let mut ccr = Ccr::new(3);
        assert_eq!(ccr.get(CondReg::new(1)), Cond::Unspecified);
        ccr.set(CondReg::new(1), true);
        ccr.set(CondReg::new(2), false);
        assert_eq!(ccr.get(CondReg::new(1)), Cond::True);
        assert_eq!(ccr.get(CondReg::new(2)), Cond::False);
        ccr.reset();
        assert_eq!(ccr.get(CondReg::new(1)), Cond::Unspecified);
        assert_eq!(ccr.get(CondReg::new(2)), Cond::Unspecified);
    }

    #[test]
    #[should_panic(expected = "outside CCR")]
    fn ccr_out_of_range() {
        let ccr = Ccr::new(2);
        let _ = ccr.get(CondReg::new(3));
    }

    #[test]
    fn ccr_display() {
        let mut ccr = Ccr::new(3);
        ccr.set(CondReg::new(0), true);
        ccr.set(CondReg::new(2), false);
        assert_eq!(ccr.to_string(), "{T,U,F}");
    }
}
