//! Three-valued branch conditions and the condition code register (CCR).

use crate::reg::{CondReg, MAX_CONDS};
use std::fmt;

/// A three-valued branch condition: the value of one CCR entry, or the
/// result of evaluating a [`Predicate`](crate::Predicate).
///
/// All CCR entries start out `Unspecified`; a condition-set instruction
/// specifies an entry to `True` or `False`; entering a new region resets
/// every entry to `Unspecified` (Section 3.3: the speculative state is
/// *closed* in a region).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Cond {
    /// No condition-set instruction has executed for this entry yet.
    #[default]
    Unspecified,
    /// The condition is known to hold.
    True,
    /// The condition is known not to hold.
    False,
}

impl Cond {
    /// Converts a boolean into a specified condition.
    #[inline]
    pub fn from_bool(b: bool) -> Cond {
        if b {
            Cond::True
        } else {
            Cond::False
        }
    }

    /// Whether the condition has been specified (is not `Unspecified`).
    #[inline]
    pub fn is_specified(self) -> bool {
        !matches!(self, Cond::Unspecified)
    }

    /// Three-valued logical AND (Kleene logic).
    #[inline]
    pub fn and(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::False, _) | (_, Cond::False) => Cond::False,
            (Cond::True, Cond::True) => Cond::True,
            _ => Cond::Unspecified,
        }
    }

    /// Three-valued logical negation.
    ///
    /// Deliberately an inherent method (not `std::ops::Not`): `Cond` is a
    /// three-valued logic and `!cond` syntax would suggest boolean
    /// semantics.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> Cond {
        match self {
            Cond::True => Cond::False,
            Cond::False => Cond::True,
            Cond::Unspecified => Cond::Unspecified,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::True => "T",
            Cond::False => "F",
            Cond::Unspecified => "U",
        };
        f.write_str(s)
    }
}

/// The condition code register: `K` three-valued entries, `c0 .. c{K-1}`.
///
/// One CCR instance holds the *current condition*; the machine keeps a
/// second instance (the *future CCR*) during speculative-exception recovery
/// (Section 3.5).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ccr {
    vals: [Cond; MAX_CONDS],
    len: usize,
}

impl Ccr {
    /// Creates a CCR with `k` entries, all `Unspecified`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`MAX_CONDS`].
    pub fn new(k: usize) -> Ccr {
        assert!((1..=MAX_CONDS).contains(&k), "CCR size {k} out of range");
        Ccr {
            vals: [Cond::Unspecified; MAX_CONDS],
            len: k,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the CCR has zero entries (never true; kept for API symmetry).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads one entry.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside this CCR's `0..len` range.
    #[inline]
    pub fn get(&self, c: CondReg) -> Cond {
        assert!(
            c.index() < self.len,
            "condition {c} outside CCR of size {}",
            self.len
        );
        self.vals[c.index()]
    }

    /// Specifies one entry to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside this CCR's range.
    #[inline]
    pub fn set(&mut self, c: CondReg, value: bool) {
        assert!(
            c.index() < self.len,
            "condition {c} outside CCR of size {}",
            self.len
        );
        self.vals[c.index()] = Cond::from_bool(value);
    }

    /// Resets every entry to `Unspecified` (performed by hardware on every
    /// region exit).
    pub fn reset(&mut self) {
        self.vals = [Cond::Unspecified; MAX_CONDS];
    }

    /// Iterates over `(name, value)` pairs for all entries.
    pub fn iter(&self) -> impl Iterator<Item = (CondReg, Cond)> + '_ {
        (0..self.len).map(move |i| (CondReg::new(i), self.vals[i]))
    }
}

impl fmt::Display for Ccr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for i in 0..self.len {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.vals[i])?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kleene_and_truth_table() {
        use Cond::*;
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(False.and(Unspecified), False);
        assert_eq!(Unspecified.and(False), False);
        assert_eq!(True.and(Unspecified), Unspecified);
        assert_eq!(Unspecified.and(Unspecified), Unspecified);
    }

    #[test]
    fn kleene_not() {
        assert_eq!(Cond::True.not(), Cond::False);
        assert_eq!(Cond::False.not(), Cond::True);
        assert_eq!(Cond::Unspecified.not(), Cond::Unspecified);
    }

    #[test]
    fn ccr_set_get_reset() {
        let mut ccr = Ccr::new(3);
        assert_eq!(ccr.get(CondReg::new(1)), Cond::Unspecified);
        ccr.set(CondReg::new(1), true);
        ccr.set(CondReg::new(2), false);
        assert_eq!(ccr.get(CondReg::new(1)), Cond::True);
        assert_eq!(ccr.get(CondReg::new(2)), Cond::False);
        ccr.reset();
        assert_eq!(ccr.get(CondReg::new(1)), Cond::Unspecified);
        assert_eq!(ccr.get(CondReg::new(2)), Cond::Unspecified);
    }

    #[test]
    #[should_panic(expected = "outside CCR")]
    fn ccr_out_of_range() {
        let ccr = Ccr::new(2);
        let _ = ccr.get(CondReg::new(3));
    }

    #[test]
    fn ccr_display() {
        let mut ccr = Ccr::new(3);
        ccr.set(CondReg::new(0), true);
        ccr.set(CondReg::new(2), false);
        assert_eq!(ccr.to_string(), "{T,U,F}");
    }
}
