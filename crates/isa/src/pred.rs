//! Predicates: ANDed vectors of possibly negated branch conditions.
//!
//! The paper restricts predicate expressions to an ANDed operation with
//! negation (Section 3.2): `c1 & !c2 & c3` is representable, `c1 | c2` is
//! not.  A predicate is encoded as a vector with one entry per CCR slot,
//! each entry being *positive*, *negated* or *don't care*; evaluation
//! against the CCR is a masked match operation.

use crate::cond::{Ccr, Cond};
use crate::reg::{CondReg, MAX_CONDS};
use std::fmt;

/// One entry of an encoded predicate vector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PredTerm {
    /// This CCR entry does not participate in the predicate (`X`).
    #[default]
    DontCare,
    /// The predicate requires this condition to be true (`1`).
    Pos,
    /// The predicate requires this condition to be false (`0`).
    Neg,
}

/// A predicate: the commit condition of an instruction or of a buffered
/// speculative result.
///
/// A predicate with all terms [`PredTerm::DontCare`] is the always-true
/// predicate, printed `alw` as in the paper's figures.
///
/// Internally the term vector is encoded as two condition bitmasks
/// (`pos` and `neg`, one bit per CCR slot, mutually disjoint), which is
/// exactly the masked-match hardware of Section 3.2: [`Predicate::eval`]
/// is a handful of mask operations instead of a term-vector walk, and the
/// commit hardware's wakeup lists subscribe on
/// [`Predicate::cond_mask`].
///
/// # Example
///
/// ```
/// use psb_isa::{Ccr, Cond, CondReg, Predicate};
///
/// let p = Predicate::always().and_pos(CondReg::new(0)).and_neg(CondReg::new(2));
/// assert_eq!(p.to_string(), "c0&!c2");
/// let mut ccr = Ccr::new(4);
/// ccr.set(CondReg::new(0), true);
/// ccr.set(CondReg::new(2), false);
/// assert_eq!(p.eval(&ccr), Cond::True);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Predicate {
    /// Conditions required true.  Disjoint from `neg` by construction, so
    /// the representation is canonical and `Eq`/`Hash` stay structural.
    pos: u8,
    /// Conditions required false.
    neg: u8,
}

// The two u8 masks must cover every CCR slot.
const _: () = assert!(MAX_CONDS <= 8, "predicate masks are u8");

#[inline]
fn bit(c: CondReg) -> u8 {
    1u8 << c.index()
}

impl Predicate {
    /// The always-true predicate (`alw`): every term is don't-care.
    #[inline]
    pub fn always() -> Predicate {
        Predicate::default()
    }

    /// Returns a copy of this predicate additionally requiring `c` to be
    /// true, replacing any previous term for `c`.
    #[must_use]
    pub fn and_pos(mut self, c: CondReg) -> Predicate {
        self.pos |= bit(c);
        self.neg &= !bit(c);
        self
    }

    /// Returns a copy of this predicate additionally requiring `c` to be
    /// false, replacing any previous term for `c`.
    #[must_use]
    pub fn and_neg(mut self, c: CondReg) -> Predicate {
        self.neg |= bit(c);
        self.pos &= !bit(c);
        self
    }

    /// Returns a copy with the term for `c` set to `term`.
    #[must_use]
    pub fn with_term(self, c: CondReg, term: PredTerm) -> Predicate {
        match term {
            PredTerm::Pos => self.and_pos(c),
            PredTerm::Neg => self.and_neg(c),
            PredTerm::DontCare => self.without(c),
        }
    }

    /// Returns a copy with the term for `c` removed (set to don't-care).
    #[must_use]
    pub fn without(mut self, c: CondReg) -> Predicate {
        self.pos &= !bit(c);
        self.neg &= !bit(c);
        self
    }

    /// The term for condition `c`.
    #[inline]
    pub fn term(&self, c: CondReg) -> PredTerm {
        if self.pos & bit(c) != 0 {
            PredTerm::Pos
        } else if self.neg & bit(c) != 0 {
            PredTerm::Neg
        } else {
            PredTerm::DontCare
        }
    }

    /// Whether this is the always-true predicate.
    #[inline]
    pub fn is_always(&self) -> bool {
        (self.pos | self.neg) == 0
    }

    /// Number of conditions the predicate depends on (its *speculation
    /// depth* — the quantity swept in Figure 8 of the paper).
    #[inline]
    pub fn depth(&self) -> usize {
        (self.pos | self.neg).count_ones() as usize
    }

    /// Bitmask of the conditions the predicate participates in (bit `i`
    /// set when `c{i}` appears positively or negated).  This is what a
    /// buffered entry's wakeup subscription keys on.
    #[inline]
    pub fn cond_mask(&self) -> u8 {
        self.pos | self.neg
    }

    /// Iterates over the `(condition, term)` pairs that are not don't-care.
    pub fn terms(&self) -> impl Iterator<Item = (CondReg, PredTerm)> + '_ {
        let (pos, neg) = (self.pos, self.neg);
        (0..MAX_CONDS).filter_map(move |i| {
            let b = 1u8 << i;
            if pos & b != 0 {
                Some((CondReg::new(i), PredTerm::Pos))
            } else if neg & b != 0 {
                Some((CondReg::new(i), PredTerm::Neg))
            } else {
                None
            }
        })
    }

    /// Evaluates the predicate against a CCR: the masked match operation of
    /// Section 3.2 — two mask comparisons, no per-term walk.
    ///
    /// Returns [`Cond::Unspecified`] if any participating condition is
    /// unspecified and no participating condition already mismatches;
    /// [`Cond::False`] as soon as one specified condition mismatches;
    /// [`Cond::True`] when every participating condition matches.
    ///
    /// Conditions outside the CCR's range read as unspecified, like the
    /// mask hardware would behave; validated programs never contain them.
    #[inline]
    pub fn eval(&self, ccr: &Ccr) -> Cond {
        let spec = ccr.spec_mask();
        let vals = ccr.vals_mask();
        // A specified condition mismatching makes the predicate false even
        // while other participating conditions are still unspecified.
        if ((self.pos & spec & !vals) | (self.neg & spec & vals)) != 0 {
            Cond::False
        } else if ((self.pos | self.neg) & !spec) != 0 {
            Cond::Unspecified
        } else {
            Cond::True
        }
    }

    /// Logical conjunction of two predicates.
    ///
    /// Returns `None` if they conflict (one requires `c`, the other `!c`);
    /// the conjunction is then unsatisfiable.
    pub fn conjoin(&self, other: &Predicate) -> Option<Predicate> {
        if self.disjoint(other) {
            return None;
        }
        Some(Predicate {
            pos: self.pos | other.pos,
            neg: self.neg | other.neg,
        })
    }

    /// Whether `self` implies `other`: every environment satisfying `self`
    /// satisfies `other`.  For ANDed predicates this holds exactly when
    /// `other`'s terms are a subset of `self`'s terms.
    #[inline]
    pub fn implies(&self, other: &Predicate) -> bool {
        (other.pos & !self.pos) == 0 && (other.neg & !self.neg) == 0
    }

    /// Whether `self` and `other` are *disjoint*: no assignment of
    /// conditions satisfies both.  For ANDed predicates this holds exactly
    /// when some condition appears positively in one and negated in the
    /// other.
    #[inline]
    pub fn disjoint(&self, other: &Predicate) -> bool {
        ((self.pos & other.neg) | (self.neg & other.pos)) != 0
    }

    /// The greatest CCR entry index used, if any (used to size machine CCRs).
    pub fn max_cond_index(&self) -> Option<usize> {
        match self.pos | self.neg {
            0 => None,
            m => Some(7 - m.leading_zeros() as usize),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_always() {
            return f.write_str("alw");
        }
        let mut first = true;
        for (c, term) in self.terms() {
            if !first {
                f.write_str("&")?;
            }
            first = false;
            match term {
                PredTerm::Pos => write!(f, "{c}")?,
                PredTerm::Neg => write!(f, "!{c}")?,
                PredTerm::DontCare => unreachable!(),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> CondReg {
        CondReg::new(i)
    }

    #[test]
    fn always_predicate() {
        let p = Predicate::always();
        assert!(p.is_always());
        assert_eq!(p.depth(), 0);
        assert_eq!(p.eval(&Ccr::new(4)), Cond::True);
        assert_eq!(p.to_string(), "alw");
    }

    #[test]
    fn eval_paper_example() {
        // Paper Section 3.2: CCR holds {1,0,1}; predicate c1&!c2&c3 in the
        // paper's 1-based naming is c0&!c1&c2 here.
        let p = Predicate::always()
            .and_pos(c(0))
            .and_neg(c(1))
            .and_pos(c(2));
        let mut ccr = Ccr::new(3);
        ccr.set(c(0), true);
        ccr.set(c(1), false);
        ccr.set(c(2), true);
        assert_eq!(p.eval(&ccr), Cond::True);
    }

    #[test]
    fn eval_dont_care_masks() {
        // c0&c2 with CCR {1,0,1}: c1 is masked, so it evaluates true.
        let p = Predicate::always().and_pos(c(0)).and_pos(c(2));
        let mut ccr = Ccr::new(3);
        ccr.set(c(0), true);
        ccr.set(c(1), false);
        ccr.set(c(2), true);
        assert_eq!(p.eval(&ccr), Cond::True);
    }

    #[test]
    fn eval_unspecified_unless_mismatch() {
        let p = Predicate::always().and_pos(c(0)).and_pos(c(1));
        let mut ccr = Ccr::new(2);
        assert_eq!(p.eval(&ccr), Cond::Unspecified);
        ccr.set(c(0), true);
        assert_eq!(p.eval(&ccr), Cond::Unspecified);
        // A single specified mismatch makes the predicate false even while
        // another condition is still unspecified.
        let mut ccr2 = Ccr::new(2);
        ccr2.set(c(0), false);
        assert_eq!(p.eval(&ccr2), Cond::False);
    }

    #[test]
    fn negated_terms() {
        let p = Predicate::always().and_neg(c(1));
        let mut ccr = Ccr::new(2);
        ccr.set(c(1), false);
        assert_eq!(p.eval(&ccr), Cond::True);
        ccr.set(c(1), true);
        assert_eq!(p.eval(&ccr), Cond::False);
    }

    #[test]
    fn conjoin_merges_and_detects_conflict() {
        let a = Predicate::always().and_pos(c(0));
        let b = Predicate::always().and_neg(c(1));
        let ab = a.conjoin(&b).unwrap();
        assert_eq!(ab.to_string(), "c0&!c1");
        let conflict = Predicate::always().and_neg(c(0));
        assert!(a.conjoin(&conflict).is_none());
    }

    #[test]
    fn implication() {
        let strong = Predicate::always().and_pos(c(0)).and_pos(c(1));
        let weak = Predicate::always().and_pos(c(0));
        assert!(strong.implies(&weak));
        assert!(!weak.implies(&strong));
        assert!(strong.implies(&strong));
        assert!(strong.implies(&Predicate::always()));
        assert!(!Predicate::always().implies(&weak));
    }

    #[test]
    fn disjointness() {
        let a = Predicate::always().and_pos(c(0));
        let b = Predicate::always().and_neg(c(0));
        let cc = Predicate::always().and_pos(c(1));
        assert!(a.disjoint(&b));
        assert!(!a.disjoint(&cc));
        assert!(!a.disjoint(&a));
    }

    #[test]
    fn depth_and_max_index() {
        let p = Predicate::always().and_pos(c(1)).and_neg(c(4));
        assert_eq!(p.depth(), 2);
        assert_eq!(p.max_cond_index(), Some(4));
        assert_eq!(Predicate::always().max_cond_index(), None);
    }

    #[test]
    fn without_removes_term() {
        let p = Predicate::always()
            .and_pos(c(0))
            .and_pos(c(1))
            .without(c(0));
        assert_eq!(p.to_string(), "c1");
    }

    #[test]
    fn display_format() {
        let p = Predicate::always().and_pos(c(0)).and_neg(c(1));
        assert_eq!(p.to_string(), "c0&!c1");
    }
}
