//! Predicates: ANDed vectors of possibly negated branch conditions.
//!
//! The paper restricts predicate expressions to an ANDed operation with
//! negation (Section 3.2): `c1 & !c2 & c3` is representable, `c1 | c2` is
//! not.  A predicate is encoded as a vector with one entry per CCR slot,
//! each entry being *positive*, *negated* or *don't care*; evaluation
//! against the CCR is a masked match operation.

use crate::cond::{Ccr, Cond};
use crate::reg::{CondReg, MAX_CONDS};
use std::fmt;

/// One entry of an encoded predicate vector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PredTerm {
    /// This CCR entry does not participate in the predicate (`X`).
    #[default]
    DontCare,
    /// The predicate requires this condition to be true (`1`).
    Pos,
    /// The predicate requires this condition to be false (`0`).
    Neg,
}

/// A predicate: the commit condition of an instruction or of a buffered
/// speculative result.
///
/// A predicate with all terms [`PredTerm::DontCare`] is the always-true
/// predicate, printed `alw` as in the paper's figures.
///
/// # Example
///
/// ```
/// use psb_isa::{Ccr, Cond, CondReg, Predicate};
///
/// let p = Predicate::always().and_pos(CondReg::new(0)).and_neg(CondReg::new(2));
/// assert_eq!(p.to_string(), "c0&!c2");
/// let mut ccr = Ccr::new(4);
/// ccr.set(CondReg::new(0), true);
/// ccr.set(CondReg::new(2), false);
/// assert_eq!(p.eval(&ccr), Cond::True);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Predicate {
    terms: [PredTerm; MAX_CONDS],
}

impl Predicate {
    /// The always-true predicate (`alw`): every term is don't-care.
    #[inline]
    pub fn always() -> Predicate {
        Predicate::default()
    }

    /// Returns a copy of this predicate additionally requiring `c` to be
    /// true, replacing any previous term for `c`.
    #[must_use]
    pub fn and_pos(mut self, c: CondReg) -> Predicate {
        self.terms[c.index()] = PredTerm::Pos;
        self
    }

    /// Returns a copy of this predicate additionally requiring `c` to be
    /// false, replacing any previous term for `c`.
    #[must_use]
    pub fn and_neg(mut self, c: CondReg) -> Predicate {
        self.terms[c.index()] = PredTerm::Neg;
        self
    }

    /// Returns a copy with the term for `c` set to `term`.
    #[must_use]
    pub fn with_term(mut self, c: CondReg, term: PredTerm) -> Predicate {
        self.terms[c.index()] = term;
        self
    }

    /// Returns a copy with the term for `c` removed (set to don't-care).
    #[must_use]
    pub fn without(mut self, c: CondReg) -> Predicate {
        self.terms[c.index()] = PredTerm::DontCare;
        self
    }

    /// The term for condition `c`.
    #[inline]
    pub fn term(&self, c: CondReg) -> PredTerm {
        self.terms[c.index()]
    }

    /// Whether this is the always-true predicate.
    pub fn is_always(&self) -> bool {
        self.terms.iter().all(|t| *t == PredTerm::DontCare)
    }

    /// Number of conditions the predicate depends on (its *speculation
    /// depth* — the quantity swept in Figure 8 of the paper).
    pub fn depth(&self) -> usize {
        self.terms
            .iter()
            .filter(|t| **t != PredTerm::DontCare)
            .count()
    }

    /// Iterates over the `(condition, term)` pairs that are not don't-care.
    pub fn terms(&self) -> impl Iterator<Item = (CondReg, PredTerm)> + '_ {
        self.terms
            .iter()
            .enumerate()
            .filter(|(_, t)| **t != PredTerm::DontCare)
            .map(|(i, t)| (CondReg::new(i), *t))
    }

    /// Evaluates the predicate against a CCR: the masked match operation of
    /// Section 3.2.
    ///
    /// Returns [`Cond::Unspecified`] if any participating condition is
    /// unspecified and no participating condition already mismatches;
    /// [`Cond::False`] as soon as one specified condition mismatches;
    /// [`Cond::True`] when every participating condition matches.
    pub fn eval(&self, ccr: &Ccr) -> Cond {
        let mut acc = Cond::True;
        for (c, term) in self.terms() {
            let v = ccr.get(c);
            let want = match term {
                PredTerm::Pos => v,
                PredTerm::Neg => v.not(),
                PredTerm::DontCare => unreachable!(),
            };
            acc = acc.and(want);
            if acc == Cond::False {
                return Cond::False;
            }
        }
        acc
    }

    /// Logical conjunction of two predicates.
    ///
    /// Returns `None` if they conflict (one requires `c`, the other `!c`);
    /// the conjunction is then unsatisfiable.
    pub fn conjoin(&self, other: &Predicate) -> Option<Predicate> {
        let mut out = *self;
        for i in 0..MAX_CONDS {
            match (self.terms[i], other.terms[i]) {
                (PredTerm::DontCare, t) => out.terms[i] = t,
                (t, PredTerm::DontCare) => out.terms[i] = t,
                (a, b) if a == b => out.terms[i] = a,
                _ => return None,
            }
        }
        Some(out)
    }

    /// Whether `self` implies `other`: every environment satisfying `self`
    /// satisfies `other`.  For ANDed predicates this holds exactly when
    /// `other`'s terms are a subset of `self`'s terms.
    pub fn implies(&self, other: &Predicate) -> bool {
        (0..MAX_CONDS).all(|i| match other.terms[i] {
            PredTerm::DontCare => true,
            t => self.terms[i] == t,
        })
    }

    /// Whether `self` and `other` are *disjoint*: no assignment of
    /// conditions satisfies both.  For ANDed predicates this holds exactly
    /// when some condition appears positively in one and negated in the
    /// other.
    pub fn disjoint(&self, other: &Predicate) -> bool {
        (0..MAX_CONDS).any(|i| {
            matches!(
                (self.terms[i], other.terms[i]),
                (PredTerm::Pos, PredTerm::Neg) | (PredTerm::Neg, PredTerm::Pos)
            )
        })
    }

    /// The greatest CCR entry index used, if any (used to size machine CCRs).
    pub fn max_cond_index(&self) -> Option<usize> {
        (0..MAX_CONDS)
            .rev()
            .find(|&i| self.terms[i] != PredTerm::DontCare)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_always() {
            return f.write_str("alw");
        }
        let mut first = true;
        for (c, term) in self.terms() {
            if !first {
                f.write_str("&")?;
            }
            first = false;
            match term {
                PredTerm::Pos => write!(f, "{c}")?,
                PredTerm::Neg => write!(f, "!{c}")?,
                PredTerm::DontCare => unreachable!(),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> CondReg {
        CondReg::new(i)
    }

    #[test]
    fn always_predicate() {
        let p = Predicate::always();
        assert!(p.is_always());
        assert_eq!(p.depth(), 0);
        assert_eq!(p.eval(&Ccr::new(4)), Cond::True);
        assert_eq!(p.to_string(), "alw");
    }

    #[test]
    fn eval_paper_example() {
        // Paper Section 3.2: CCR holds {1,0,1}; predicate c1&!c2&c3 in the
        // paper's 1-based naming is c0&!c1&c2 here.
        let p = Predicate::always()
            .and_pos(c(0))
            .and_neg(c(1))
            .and_pos(c(2));
        let mut ccr = Ccr::new(3);
        ccr.set(c(0), true);
        ccr.set(c(1), false);
        ccr.set(c(2), true);
        assert_eq!(p.eval(&ccr), Cond::True);
    }

    #[test]
    fn eval_dont_care_masks() {
        // c0&c2 with CCR {1,0,1}: c1 is masked, so it evaluates true.
        let p = Predicate::always().and_pos(c(0)).and_pos(c(2));
        let mut ccr = Ccr::new(3);
        ccr.set(c(0), true);
        ccr.set(c(1), false);
        ccr.set(c(2), true);
        assert_eq!(p.eval(&ccr), Cond::True);
    }

    #[test]
    fn eval_unspecified_unless_mismatch() {
        let p = Predicate::always().and_pos(c(0)).and_pos(c(1));
        let mut ccr = Ccr::new(2);
        assert_eq!(p.eval(&ccr), Cond::Unspecified);
        ccr.set(c(0), true);
        assert_eq!(p.eval(&ccr), Cond::Unspecified);
        // A single specified mismatch makes the predicate false even while
        // another condition is still unspecified.
        let mut ccr2 = Ccr::new(2);
        ccr2.set(c(0), false);
        assert_eq!(p.eval(&ccr2), Cond::False);
    }

    #[test]
    fn negated_terms() {
        let p = Predicate::always().and_neg(c(1));
        let mut ccr = Ccr::new(2);
        ccr.set(c(1), false);
        assert_eq!(p.eval(&ccr), Cond::True);
        ccr.set(c(1), true);
        assert_eq!(p.eval(&ccr), Cond::False);
    }

    #[test]
    fn conjoin_merges_and_detects_conflict() {
        let a = Predicate::always().and_pos(c(0));
        let b = Predicate::always().and_neg(c(1));
        let ab = a.conjoin(&b).unwrap();
        assert_eq!(ab.to_string(), "c0&!c1");
        let conflict = Predicate::always().and_neg(c(0));
        assert!(a.conjoin(&conflict).is_none());
    }

    #[test]
    fn implication() {
        let strong = Predicate::always().and_pos(c(0)).and_pos(c(1));
        let weak = Predicate::always().and_pos(c(0));
        assert!(strong.implies(&weak));
        assert!(!weak.implies(&strong));
        assert!(strong.implies(&strong));
        assert!(strong.implies(&Predicate::always()));
        assert!(!Predicate::always().implies(&weak));
    }

    #[test]
    fn disjointness() {
        let a = Predicate::always().and_pos(c(0));
        let b = Predicate::always().and_neg(c(0));
        let cc = Predicate::always().and_pos(c(1));
        assert!(a.disjoint(&b));
        assert!(!a.disjoint(&cc));
        assert!(!a.disjoint(&a));
    }

    #[test]
    fn depth_and_max_index() {
        let p = Predicate::always().and_pos(c(1)).and_neg(c(4));
        assert_eq!(p.depth(), 2);
        assert_eq!(p.max_cond_index(), Some(4));
        assert_eq!(Predicate::always().max_cond_index(), None);
    }

    #[test]
    fn without_removes_term() {
        let p = Predicate::always()
            .and_pos(c(0))
            .and_pos(c(1))
            .without(c(0));
        assert_eq!(p.to_string(), "c1");
    }

    #[test]
    fn display_format() {
        let p = Predicate::always().and_pos(c(0)).and_neg(c(1));
        assert_eq!(p.to_string(), "c0&!c1");
    }
}
