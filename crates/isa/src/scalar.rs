//! Scalar programs: a CFG of basic blocks over the MIPS-like register ISA.

use crate::op::{Op, Src};
use crate::reg::Reg;
use crate::CmpOp;
use std::fmt;

/// Identifier of a basic block within a [`ScalarProgram`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index into [`ScalarProgram::blocks`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// The control-flow terminator of a basic block.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch: if `a <cmp> b` control goes to `taken`,
    /// otherwise to `not_taken`.  On the scalar reference machine this is a
    /// single compare-and-branch instruction, as on the R3000.
    Branch {
        /// The comparison deciding the branch.
        cmp: CmpOp,
        /// First operand.
        a: Src,
        /// Second operand.
        b: Src,
        /// Successor when the comparison holds.
        taken: BlockId,
        /// Successor when the comparison does not hold.
        not_taken: BlockId,
    },
    /// Program end.
    #[default]
    Halt,
}

impl Terminator {
    /// The successor blocks, taken edge first.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                taken, not_taken, ..
            } => vec![*taken, *not_taken],
            Terminator::Halt => vec![],
        }
    }

    /// Rewrites successor block ids via `f` (used by duplication passes).
    #[must_use]
    pub fn map_targets(self, mut f: impl FnMut(BlockId) -> BlockId) -> Terminator {
        match self {
            Terminator::Jump(t) => Terminator::Jump(f(t)),
            Terminator::Branch {
                cmp,
                a,
                b,
                taken,
                not_taken,
            } => Terminator::Branch {
                cmp,
                a,
                b,
                taken: f(taken),
                not_taken: f(not_taken),
            },
            Terminator::Halt => Terminator::Halt,
        }
    }

    /// The registers read by the terminator.
    pub fn used_regs(&self) -> Vec<Reg> {
        match self {
            Terminator::Branch { a, b, .. } => [a, b].iter().filter_map(|s| s.as_reg()).collect(),
            _ => vec![],
        }
    }
}

/// A basic block: straight-line ops followed by one terminator.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Block {
    /// The straight-line operations of the block, in program order.
    pub instrs: Vec<Op>,
    /// The control-flow terminator.
    pub term: Terminator,
}

/// The initial memory image of a program.
///
/// Memory is word-addressed: each address holds one `i64`.  Valid addresses
/// are `1..size`; address `0` plays the role of the NULL page and always
/// faults, as do negative and out-of-range addresses.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MemImage {
    /// One past the largest valid address.
    pub size: i64,
    /// Non-zero initial cells as `(address, value)` pairs.
    pub cells: Vec<(i64, i64)>,
}

impl MemImage {
    /// Creates an image of `size` words, all zero.
    pub fn zeroed(size: i64) -> MemImage {
        MemImage {
            size,
            cells: Vec::new(),
        }
    }

    /// Sets an initial cell.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside `1..size`.
    pub fn set(&mut self, addr: i64, value: i64) {
        assert!(
            addr >= 1 && addr < self.size,
            "initial cell {addr} out of range"
        );
        self.cells.push((addr, value));
    }
}

/// A scalar program: the representation the schedulers consume and the
/// scalar reference machine executes.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ScalarProgram {
    /// Human-readable program name (used in reports).
    pub name: String,
    /// All basic blocks; [`BlockId`] indexes into this vector.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Initial register values; unlisted registers start at 0.
    pub init_regs: Vec<(Reg, i64)>,
    /// Initial memory image.
    pub memory: MemImage,
    /// Registers whose final values are program outputs.  Schedulers must
    /// preserve exactly these (plus final memory); everything else may be
    /// clobbered by renaming.
    pub live_out: Vec<Reg>,
}

impl ScalarProgram {
    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Successors of a block, taken edge first.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id).term.successors()
    }

    /// Total number of straight-line instructions plus terminators that are
    /// real instructions (branches and jumps), i.e. static code size.
    pub fn static_len(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                b.instrs.len()
                    + match b.term {
                        Terminator::Halt => 0,
                        _ => 1,
                    }
            })
            .sum()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: an
    /// out-of-range successor or entry, a scalar op with a shadow source, or
    /// a condition-set op (scalar code has no CCR).
    pub fn validate(&self) -> Result<(), String> {
        if self.entry.index() >= self.blocks.len() {
            return Err(format!("entry {} out of range", self.entry));
        }
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                if s.index() >= self.blocks.len() {
                    return Err(format!("B{i} has out-of-range successor {s}"));
                }
            }
            for (j, op) in b.instrs.iter().enumerate() {
                if matches!(op, Op::SetCond { .. }) {
                    return Err(format!("B{i}[{j}] is a condition-set op in scalar code"));
                }
                for s in op.srcs() {
                    if matches!(s, Src::Reg { shadow: true, .. }) {
                        return Err(format!("B{i}[{j}] reads a shadow register in scalar code"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, MemTag};

    fn tiny() -> ScalarProgram {
        let r = Reg::new;
        ScalarProgram {
            name: "tiny".into(),
            blocks: vec![
                Block {
                    instrs: vec![Op::Alu {
                        op: AluOp::Add,
                        rd: r(1),
                        a: Src::reg(r(1)),
                        b: Src::imm(1),
                    }],
                    term: Terminator::Branch {
                        cmp: CmpOp::Lt,
                        a: Src::reg(r(1)),
                        b: Src::imm(10),
                        taken: BlockId(0),
                        not_taken: BlockId(1),
                    },
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Halt,
                },
            ],
            entry: BlockId(0),
            init_regs: vec![],
            memory: MemImage::zeroed(64),
            live_out: vec![r(1)],
        }
    }

    #[test]
    fn successors_taken_first() {
        let p = tiny();
        assert_eq!(p.successors(BlockId(0)), vec![BlockId(0), BlockId(1)]);
        assert_eq!(p.successors(BlockId(1)), vec![]);
    }

    #[test]
    fn static_len_counts_branches() {
        assert_eq!(tiny().static_len(), 2); // add + branch; halt is free
    }

    #[test]
    fn validate_ok() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_successor() {
        let mut p = tiny();
        p.blocks[1].term = Terminator::Jump(BlockId(9));
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_shadow_source() {
        let mut p = tiny();
        p.blocks[1].instrs.push(Op::Copy {
            rd: Reg::new(2),
            src: Src::shadow(Reg::new(1)),
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn mem_image_set() {
        let mut m = MemImage::zeroed(16);
        m.set(4, 42);
        assert_eq!(m.cells, vec![(4, 42)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mem_image_rejects_null() {
        MemImage::zeroed(16).set(0, 1);
    }

    #[test]
    fn terminator_map_targets() {
        let t = Terminator::Branch {
            cmp: CmpOp::Eq,
            a: Src::imm(0),
            b: Src::imm(0),
            taken: BlockId(1),
            not_taken: BlockId(2),
        };
        let mapped = t.map_targets(|b| BlockId(b.0 + 10));
        assert_eq!(mapped.successors(), vec![BlockId(11), BlockId(12)]);
    }

    #[test]
    fn mem_tag_used_in_ops() {
        let op = Op::Load {
            rd: Reg::new(1),
            base: Src::imm(4),
            offset: 0,
            tag: MemTag(7),
        };
        assert_eq!(op.mem_tag(), Some(MemTag(7)));
    }
}
