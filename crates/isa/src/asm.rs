//! A textual assembly format for scalar programs.
//!
//! The paper's toolchain consumes optimised MIPS assembly; this module
//! gives the workspace the equivalent front door: a human-readable format
//! that round-trips through [`ScalarProgram::to_asm`] and
//! [`parse_program`], so kernels can be written, inspected and versioned
//! as text.
//!
//! # Format
//!
//! ```text
//! .name   euclid            ; program name
//! .memory 64                ; memory size in words
//! .cell   16 42             ; initial memory cell
//! .init   r1 30             ; initial register value
//! .liveout r1               ; observable outputs
//!
//! entry:
//!     r3 = r1 % ...         ; ops use the disassembly syntax
//!     r2 = r1 - r2
//!     br (r1 < r2) swap else top
//! swap:
//!     j top
//! top:
//!     halt
//! ```
//!
//! Operations use the same syntax the `Display` impls print:
//! `r1 = r2 + 3`, `r1 = load(r2+8) !2` (aliasing tag 2),
//! `store(r2) = r3`, `r1 = r2`, `nop`; terminators are
//! `j label`, `br (a < b) taken else nottaken`, and `halt`.

use crate::op::{AluOp, CmpOp, MemTag, Op, Src};
use crate::reg::Reg;
use crate::scalar::{Block, BlockId, MemImage, ScalarProgram, Terminator};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

impl ScalarProgram {
    /// Renders the program in the parseable assembly format, with blocks
    /// labelled `b0`, `b1`, ….
    pub fn to_asm(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, ".name {}", self.name).unwrap();
        writeln!(s, ".memory {}", self.memory.size).unwrap();
        for &(a, v) in &self.memory.cells {
            writeln!(s, ".cell {a} {v}").unwrap();
        }
        for &(r, v) in &self.init_regs {
            writeln!(s, ".init {r} {v}").unwrap();
        }
        if !self.live_out.is_empty() {
            write!(s, ".liveout").unwrap();
            for r in &self.live_out {
                write!(s, " {r}").unwrap();
            }
            writeln!(s).unwrap();
        }
        writeln!(s, ".entry b{}", self.entry.0).unwrap();
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(s, "b{i}:").unwrap();
            for op in &b.instrs {
                let tag = op.mem_tag().filter(|t| *t != MemTag::ANY);
                match tag {
                    Some(t) => writeln!(s, "    {op} !{}", t.0).unwrap(),
                    None => writeln!(s, "    {op}").unwrap(),
                }
            }
            match b.term {
                Terminator::Jump(t) => writeln!(s, "    j b{}", t.0).unwrap(),
                Terminator::Branch {
                    cmp,
                    a,
                    b: bb,
                    taken,
                    not_taken,
                } => writeln!(
                    s,
                    "    br ({a} {cmp} {bb}) b{} else b{}",
                    taken.0, not_taken.0
                )
                .unwrap(),
                Terminator::Halt => writeln!(s, "    halt").unwrap(),
            }
        }
        s
    }
}

/// Parses the assembly format back into a [`ScalarProgram`].
///
/// # Errors
///
/// Returns [`ParseAsmError`] with the offending line on any syntax error,
/// unknown label, or failed structural validation.
pub fn parse_program(text: &str) -> Result<ScalarProgram, ParseAsmError> {
    let mut parser = Parser::new(text);
    parser.run()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    labels: HashMap<&'a str, BlockId>,
}

enum RawTerm<'a> {
    Jump(&'a str),
    Branch {
        cmp: CmpOp,
        a: Src,
        b: Src,
        taken: &'a str,
        not_taken: &'a str,
    },
    Halt,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.split(';').next().unwrap_or("").trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser {
            lines,
            labels: HashMap::new(),
        }
    }

    fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseAsmError> {
        Err(ParseAsmError {
            line,
            message: message.into(),
        })
    }

    fn run(&mut self) -> Result<ScalarProgram, ParseAsmError> {
        // Pass 1: collect labels in order.
        let mut order: Vec<&str> = Vec::new();
        for &(ln, l) in &self.lines {
            if let Some(label) = l.strip_suffix(':') {
                if !is_ident(label) {
                    return Self::err(ln, format!("bad label `{label}`"));
                }
                if self
                    .labels
                    .insert(label, BlockId(order.len() as u32))
                    .is_some()
                {
                    return Self::err(ln, format!("duplicate label `{label}`"));
                }
                order.push(label);
            }
        }
        if order.is_empty() {
            return Self::err(1, "program has no blocks");
        }

        let mut prog = ScalarProgram {
            name: "asm".into(),
            blocks: vec![Block::default(); order.len()],
            entry: BlockId(0),
            init_regs: Vec::new(),
            memory: MemImage::zeroed(1024),
            live_out: Vec::new(),
        };
        let mut entry_label: Option<(usize, String)> = None;
        let mut cells: Vec<(i64, i64)> = Vec::new();
        let mut current: Option<usize> = None;
        let mut terms: Vec<Option<(usize, RawTerm)>> = (0..order.len()).map(|_| None).collect();

        let lines = std::mem::take(&mut self.lines);
        for &(ln, l) in &lines {
            if let Some(rest) = l.strip_prefix('.') {
                let mut it = rest.split_whitespace();
                let key = it.next().unwrap_or("");
                let args: Vec<&str> = it.collect();
                match key {
                    "name" => prog.name = args.join(" "),
                    "memory" => {
                        prog.memory.size = parse_int(ln, args.first().copied())?;
                    }
                    "cell" => {
                        if args.len() != 2 {
                            return Self::err(ln, ".cell needs an address and a value");
                        }
                        cells.push((parse_int(ln, Some(args[0]))?, parse_int(ln, Some(args[1]))?));
                    }
                    "init" => {
                        if args.len() != 2 {
                            return Self::err(ln, ".init needs a register and a value");
                        }
                        let r = parse_reg(ln, args[0])?;
                        prog.init_regs.push((r, parse_int(ln, Some(args[1]))?));
                    }
                    "liveout" => {
                        for a in &args {
                            prog.live_out.push(parse_reg(ln, a)?);
                        }
                    }
                    "entry" => {
                        let a = args.first().ok_or_else(|| ParseAsmError {
                            line: ln,
                            message: ".entry needs a label".into(),
                        })?;
                        entry_label = Some((ln, (*a).to_string()));
                    }
                    other => return Self::err(ln, format!("unknown directive .{other}")),
                }
                continue;
            }
            if let Some(label) = l.strip_suffix(':') {
                current = Some(self.labels[label].index());
                continue;
            }
            let Some(cur) = current else {
                return Self::err(ln, "instruction before the first label");
            };
            if terms[cur].is_some() {
                return Self::err(ln, "instruction after the block terminator");
            }
            if let Some(term) = parse_terminator(ln, l)? {
                terms[cur] = Some((ln, term));
            } else {
                prog.blocks[cur].instrs.push(parse_op(ln, l)?);
            }
        }

        // Resolve terminators and entry.
        for (i, t) in terms.into_iter().enumerate() {
            let Some((ln, raw)) = t else {
                return Self::err(1, format!("block `{}` has no terminator", order[i]));
            };
            let resolve = |ln: usize, label: &str| -> Result<BlockId, ParseAsmError> {
                self.labels
                    .get(label)
                    .copied()
                    .ok_or_else(|| ParseAsmError {
                        line: ln,
                        message: format!("unknown label `{label}`"),
                    })
            };
            prog.blocks[i].term = match raw {
                RawTerm::Jump(t) => Terminator::Jump(resolve(ln, t)?),
                RawTerm::Branch {
                    cmp,
                    a,
                    b,
                    taken,
                    not_taken,
                } => Terminator::Branch {
                    cmp,
                    a,
                    b,
                    taken: resolve(ln, taken)?,
                    not_taken: resolve(ln, not_taken)?,
                },
                RawTerm::Halt => Terminator::Halt,
            };
        }
        if let Some((ln, label)) = entry_label {
            prog.entry = *self
                .labels
                .get(label.as_str())
                .ok_or_else(|| ParseAsmError {
                    line: ln,
                    message: format!("unknown label `{label}`"),
                })?;
        }
        for (a, v) in cells {
            if a < 1 || a >= prog.memory.size {
                return Self::err(1, format!("cell address {a} outside memory"));
            }
            prog.memory.cells.push((a, v));
        }
        prog.validate().map_err(|m| ParseAsmError {
            line: 1,
            message: m,
        })?;
        Ok(prog)
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_int(line: usize, s: Option<&str>) -> Result<i64, ParseAsmError> {
    s.and_then(|s| s.parse().ok()).ok_or_else(|| ParseAsmError {
        line,
        message: format!("expected an integer, got {s:?}"),
    })
}

fn parse_reg(line: usize, s: &str) -> Result<Reg, ParseAsmError> {
    s.strip_prefix('r')
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| n < crate::reg::NUM_REGS)
        .map(Reg::new)
        .ok_or_else(|| ParseAsmError {
            line,
            message: format!("bad register `{s}`"),
        })
}

fn parse_src(line: usize, s: &str) -> Result<Src, ParseAsmError> {
    let s = s.trim();
    if s.starts_with('r') && parse_reg(line, s).is_ok() {
        return Ok(Src::reg(parse_reg(line, s)?));
    }
    s.parse::<i64>().map(Src::imm).map_err(|_| ParseAsmError {
        line,
        message: format!("bad operand `{s}`"),
    })
}

/// `base+off`, `base-off` or `base`.
fn parse_addr(line: usize, s: &str) -> Result<(Src, i64), ParseAsmError> {
    let s = s.trim();
    if let Some(pos) = s.rfind(['+', '-']).filter(|&p| p > 0) {
        let (b, o) = s.split_at(pos);
        // Negative immediates like `-4` alone are a plain base.
        if let (Ok(base), Ok(off)) = (parse_src(line, b), o.parse::<i64>()) {
            return Ok((base, off));
        }
    }
    Ok((parse_src(line, s)?, 0))
}

fn parse_alu_op(s: &str) -> Option<AluOp> {
    Some(match s {
        "+" => AluOp::Add,
        "-" => AluOp::Sub,
        "&" => AluOp::And,
        "|" => AluOp::Or,
        "^" => AluOp::Xor,
        "<<" => AluOp::Sll,
        ">>u" => AluOp::Srl,
        ">>" => AluOp::Sra,
        "<?" => AluOp::Slt,
        "*" => AluOp::Mul,
        _ => return None,
    })
}

fn parse_cmp_op(s: &str) -> Option<CmpOp> {
    Some(match s {
        "==" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        _ => return None,
    })
}

/// Splits a trailing aliasing tag: `... !3` → tag 3.
fn split_tag(line: usize, s: &str) -> Result<(&str, MemTag), ParseAsmError> {
    match s.rsplit_once('!') {
        Some((body, tag)) => {
            let t = tag.trim().parse::<u16>().map_err(|_| ParseAsmError {
                line,
                message: format!("bad aliasing tag `!{tag}`"),
            })?;
            Ok((body.trim(), MemTag(t)))
        }
        None => Ok((s, MemTag::ANY)),
    }
}

fn parse_terminator<'a>(line: usize, l: &'a str) -> Result<Option<RawTerm<'a>>, ParseAsmError> {
    if l == "halt" {
        return Ok(Some(RawTerm::Halt));
    }
    if let Some(t) = l.strip_prefix("j ") {
        return Ok(Some(RawTerm::Jump(t.trim())));
    }
    if let Some(rest) = l.strip_prefix("br ") {
        let rest = rest.trim();
        let Some(close) = rest.find(')') else {
            return Parser::err(line, "br needs a parenthesised comparison");
        };
        let cond = rest[..close].trim_start_matches('(').trim();
        let tail = rest[close + 1..].trim();
        let mut parts = cond.split_whitespace();
        let a = parse_src(line, parts.next().unwrap_or(""))?;
        let cmp = parts
            .next()
            .and_then(parse_cmp_op)
            .ok_or_else(|| ParseAsmError {
                line,
                message: "bad comparison operator".into(),
            })?;
        let b = parse_src(line, parts.next().unwrap_or(""))?;
        let Some((taken, not_taken)) = tail.split_once(" else ") else {
            return Parser::err(line, "br needs `taken else not_taken` labels");
        };
        return Ok(Some(RawTerm::Branch {
            cmp,
            a,
            b,
            taken: taken.trim(),
            not_taken: not_taken.trim(),
        }));
    }
    Ok(None)
}

fn parse_op(line: usize, l: &str) -> Result<Op, ParseAsmError> {
    if l == "nop" {
        return Ok(Op::Nop);
    }
    let (l, tag) = split_tag(line, l)?;
    // store(base+off) = value
    if let Some(rest) = l.strip_prefix("store(") {
        let Some((addr, value)) = rest.split_once(") =") else {
            return Parser::err(line, "bad store syntax");
        };
        let (base, offset) = parse_addr(line, addr)?;
        return Ok(Op::Store {
            base,
            offset,
            value: parse_src(line, value)?,
            tag,
        });
    }
    // rd = ...
    let Some((dst, rhs)) = l.split_once(" = ") else {
        return Parser::err(line, format!("unrecognised instruction `{l}`"));
    };
    let rd = parse_reg(line, dst.trim())?;
    let rhs = rhs.trim();
    if let Some(rest) = rhs.strip_prefix("load(") {
        let Some(addr) = rest.strip_suffix(')') else {
            return Parser::err(line, "bad load syntax");
        };
        let (base, offset) = parse_addr(line, addr)?;
        return Ok(Op::Load {
            rd,
            base,
            offset,
            tag,
        });
    }
    let parts: Vec<&str> = rhs.split_whitespace().collect();
    match parts.as_slice() {
        [single] => Ok(Op::Copy {
            rd,
            src: parse_src(line, single)?,
        }),
        [a, op, b] => {
            let alu = parse_alu_op(op).ok_or_else(|| ParseAsmError {
                line,
                message: format!("bad operator `{op}`"),
            })?;
            Ok(Op::Alu {
                op: alu,
                rd,
                a: parse_src(line, a)?,
                b: parse_src(line, b)?,
            })
        }
        _ => Parser::err(line, format!("unrecognised expression `{rhs}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EUCLID: &str = r"
.name gcd
.memory 32
.init r1 48
.init r2 36
.liveout r1

loop:
    br (r2 == 0) done else step
step:
    r3 = r1
    r1 = r2
    ; r2 = r3 mod r2 via repeated subtraction
    j sub
sub:
    br (r3 < r2) wrap else take
take:
    r3 = r3 - r2
    j sub
wrap:
    r2 = r3
    j loop
done:
    halt
";

    #[test]
    fn parses_and_runs_euclid() {
        let p = parse_program(EUCLID).expect("parses");
        assert_eq!(p.name, "gcd");
        assert_eq!(p.blocks.len(), 6);
        assert_eq!(p.entry, BlockId(0));
        // gcd(48, 36) = 12 — executed elsewhere (scalar machine lives in
        // another crate); here we check structure only.
        assert_eq!(p.live_out, vec![Reg::new(1)]);
    }

    #[test]
    fn roundtrip_through_to_asm() {
        let p = parse_program(EUCLID).unwrap();
        let text = p.to_asm();
        let q = parse_program(&text).unwrap();
        assert_eq!(p.blocks, q.blocks);
        assert_eq!(p.entry, q.entry);
        assert_eq!(p.init_regs, q.init_regs);
        assert_eq!(p.live_out, q.live_out);
        assert_eq!(p.memory, q.memory);
    }

    #[test]
    fn parses_memory_ops_with_tags() {
        let src = "
.memory 64
only:
    r1 = load(r2+16) !3
    store(r1) = 7 !2
    r4 = load(5)
    halt
";
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.blocks[0].instrs[0],
            Op::Load {
                rd: Reg::new(1),
                base: Src::reg(Reg::new(2)),
                offset: 16,
                tag: MemTag(3)
            }
        );
        assert_eq!(
            p.blocks[0].instrs[1],
            Op::Store {
                base: Src::reg(Reg::new(1)),
                offset: 0,
                value: Src::imm(7),
                tag: MemTag(2)
            }
        );
        assert_eq!(
            p.blocks[0].instrs[2],
            Op::Load {
                rd: Reg::new(4),
                base: Src::imm(5),
                offset: 0,
                tag: MemTag::ANY
            }
        );
    }

    #[test]
    fn negative_offsets_and_immediates() {
        let src = "
.memory 64
b:
    r1 = load(r2-4)
    r3 = -5
    r4 = r3 + -1
    halt
";
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.blocks[0].instrs[0],
            Op::Load {
                rd: Reg::new(1),
                base: Src::reg(Reg::new(2)),
                offset: -4,
                tag: MemTag::ANY
            }
        );
        assert_eq!(
            p.blocks[0].instrs[1],
            Op::Copy {
                rd: Reg::new(3),
                src: Src::imm(-5)
            }
        );
        assert_eq!(
            p.blocks[0].instrs[2],
            Op::Alu {
                op: AluOp::Add,
                rd: Reg::new(4),
                a: Src::reg(Reg::new(3)),
                b: Src::imm(-1)
            }
        );
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let cases = [
            ("a:\n    r1 = r2 $$ r3\n    halt\n", "bad operator"),
            ("a:\n    j nowhere\n", "unknown label"),
            ("a:\n    r1 = r2\n", "no terminator"),
            ("    r1 = r2\na:\n    halt\n", "before the first label"),
            ("a:\n    halt\n    r1 = r2\n", "after the block terminator"),
            ("a:\na:\n    halt\n", "duplicate label"),
            (".bogus 3\na:\n    halt\n", "unknown directive"),
        ];
        for (src, needle) in cases {
            let err = parse_program(src).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{src:?}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn all_alu_ops_roundtrip() {
        let ops = ["+", "-", "&", "|", "^", "<<", ">>u", ">>", "<?", "*"];
        for op in ops {
            let src = format!(".memory 8\nb:\n    r1 = r2 {op} r3\n    halt\n");
            let p = parse_program(&src).unwrap_or_else(|e| panic!("{op}: {e}"));
            let q = parse_program(&p.to_asm()).unwrap();
            assert_eq!(p.blocks, q.blocks, "{op}");
        }
    }

    #[test]
    fn all_cmp_ops_roundtrip() {
        for cmp in ["==", "!=", "<", "<=", ">", ">="] {
            let src = format!(".memory 8\na:\n    br (r1 {cmp} 3) a else b\nb:\n    halt\n");
            let p = parse_program(&src).unwrap_or_else(|e| panic!("{cmp}: {e}"));
            let q = parse_program(&p.to_asm()).unwrap();
            assert_eq!(p.blocks, q.blocks, "{cmp}");
        }
    }
}
