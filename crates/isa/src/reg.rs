//! Register names: general registers and condition (CCR entry) names.

use std::fmt;

/// Number of general registers in the architecture.
///
/// The paper's machine has 32 architectural registers; we provision twice
/// that so the register-renaming transformations of `psb-sched` always find
/// a free register without spilling (the paper's compiler had the same
/// freedom because its benchmarks left plenty of MIPS registers unused).
pub const NUM_REGS: usize = 64;

/// Maximum number of CCR entries (branch conditions) any machine
/// configuration may define.  The paper evaluates K = 1..8 (Figure 8).
pub const MAX_CONDS: usize = 8;

/// A general-purpose register name, `r0` .. `r{NUM_REGS-1}`.
///
/// `r0` is hardwired to zero, as on MIPS: writes to it are discarded and
/// reads always return 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Reg(u8);

impl Reg {
    /// The zero register `r0`.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    #[inline]
    pub fn new(index: usize) -> Reg {
        assert!(index < NUM_REGS, "register index {index} out of range");
        Reg(index as u8)
    }

    /// The register's index, `0..NUM_REGS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register `r0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A condition register name, `c0` .. `c{MAX_CONDS-1}`: one entry of the
/// condition code register (CCR).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CondReg(u8);

impl CondReg {
    /// Creates a condition register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_CONDS`.
    #[inline]
    pub fn new(index: usize) -> CondReg {
        assert!(index < MAX_CONDS, "condition index {index} out of range");
        CondReg(index as u8)
    }

    /// The condition's CCR entry index, `0..MAX_CONDS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all condition registers `c0..cK`.
    pub fn all(k: usize) -> impl Iterator<Item = CondReg> {
        assert!(k <= MAX_CONDS);
        (0..k).map(CondReg::new)
    }
}

impl fmt::Display for CondReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for i in 0..NUM_REGS {
            assert_eq!(Reg::new(i).index(), i);
        }
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert_eq!(Reg::ZERO, Reg::new(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range() {
        let _ = Reg::new(NUM_REGS);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cond_out_of_range() {
        let _ = CondReg::new(MAX_CONDS);
    }

    #[test]
    fn cond_all() {
        let v: Vec<CondReg> = CondReg::all(4).collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[3].index(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::new(5).to_string(), "r5");
        assert_eq!(CondReg::new(2).to_string(), "c2");
    }
}
