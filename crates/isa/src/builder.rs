//! A fluent builder for scalar programs, used by the workload generators,
//! examples and tests.

use crate::op::{AluOp, CmpOp, MemTag, Op, Src};
use crate::reg::Reg;
use crate::scalar::{Block, BlockId, MemImage, ScalarProgram, Terminator};

/// Builds a [`ScalarProgram`] incrementally.
///
/// # Example
///
/// ```
/// use psb_isa::{AluOp, CmpOp, ProgramBuilder, Reg};
///
/// let r1 = Reg::new(1);
/// let mut pb = ProgramBuilder::new("count-to-ten");
/// let loop_b = pb.new_block();
/// let done = pb.new_block();
/// pb.block_mut(loop_b)
///     .alu(AluOp::Add, r1, r1, 1)
///     .branch(CmpOp::Lt, r1, 10, loop_b, done);
/// pb.block_mut(done).halt();
/// pb.set_entry(loop_b);
/// pb.live_out([r1]);
/// let prog = pb.finish().unwrap();
/// assert_eq!(prog.blocks.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    prog: ScalarProgram,
}

impl ProgramBuilder {
    /// Starts a new program with the given name and an empty 1 KiW memory.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            prog: ScalarProgram {
                name: name.into(),
                memory: MemImage::zeroed(1024),
                ..ScalarProgram::default()
            },
        }
    }

    /// Appends a new empty block (terminated by `Halt` until changed) and
    /// returns its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.prog.blocks.len() as u32);
        self.prog.blocks.push(Block::default());
        id
    }

    /// A builder positioned at block `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`ProgramBuilder::new_block`].
    pub fn block_mut(&mut self, id: BlockId) -> BlockBuilder<'_> {
        BlockBuilder {
            block: &mut self.prog.blocks[id.index()],
        }
    }

    /// Sets the entry block.
    pub fn set_entry(&mut self, id: BlockId) {
        self.prog.entry = id;
    }

    /// Sets an initial register value.
    pub fn init_reg(&mut self, r: Reg, value: i64) {
        self.prog.init_regs.push((r, value));
    }

    /// Resizes memory to `size` words.
    pub fn memory_size(&mut self, size: i64) {
        self.prog.memory.size = size;
    }

    /// Sets an initial memory cell.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside `1..size`.
    pub fn mem_cell(&mut self, addr: i64, value: i64) {
        self.prog.memory.set(addr, value);
    }

    /// Declares the observable output registers.
    pub fn live_out(&mut self, regs: impl IntoIterator<Item = Reg>) {
        self.prog.live_out.extend(regs);
    }

    /// Finishes and validates the program.
    ///
    /// # Errors
    ///
    /// Returns the validation error from [`ScalarProgram::validate`].
    pub fn finish(self) -> Result<ScalarProgram, String> {
        self.prog.validate()?;
        Ok(self.prog)
    }
}

/// Appends instructions to one block.  All methods chain.
#[derive(Debug)]
pub struct BlockBuilder<'a> {
    block: &'a mut Block,
}

impl<'a> BlockBuilder<'a> {
    /// Appends `rd = a <op> b`.
    #[must_use]
    pub fn alu(self, op: AluOp, rd: Reg, a: impl Into<Src>, b: impl Into<Src>) -> Self {
        self.block.instrs.push(Op::Alu {
            op,
            rd,
            a: a.into(),
            b: b.into(),
        });
        self
    }

    /// Appends `rd = src`.
    #[must_use]
    pub fn copy(self, rd: Reg, src: impl Into<Src>) -> Self {
        self.block.instrs.push(Op::Copy {
            rd,
            src: src.into(),
        });
        self
    }

    /// Appends `rd = load(base + offset)` with aliasing tag `tag`.
    #[must_use]
    pub fn load(self, rd: Reg, base: impl Into<Src>, offset: i64, tag: MemTag) -> Self {
        self.block.instrs.push(Op::Load {
            rd,
            base: base.into(),
            offset,
            tag,
        });
        self
    }

    /// Appends `store(base + offset) = value` with aliasing tag `tag`.
    #[must_use]
    pub fn store(
        self,
        base: impl Into<Src>,
        offset: i64,
        value: impl Into<Src>,
        tag: MemTag,
    ) -> Self {
        self.block.instrs.push(Op::Store {
            base: base.into(),
            offset,
            value: value.into(),
            tag,
        });
        self
    }

    /// Appends a raw op.
    #[must_use]
    pub fn push(self, op: Op) -> Self {
        self.block.instrs.push(op);
        self
    }

    /// Terminates the block with an unconditional jump.
    pub fn jump(self, target: BlockId) {
        self.block.term = Terminator::Jump(target);
    }

    /// Terminates the block with a conditional branch.
    pub fn branch(
        self,
        cmp: CmpOp,
        a: impl Into<Src>,
        b: impl Into<Src>,
        taken: BlockId,
        not_taken: BlockId,
    ) {
        self.block.term = Terminator::Branch {
            cmp,
            a: a.into(),
            b: b.into(),
            taken,
            not_taken,
        };
    }

    /// Terminates the block with program end.
    pub fn halt(self) {
        self.block.term = Terminator::Halt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_diamond() {
        let r = Reg::new;
        let mut pb = ProgramBuilder::new("diamond");
        let top = pb.new_block();
        let left = pb.new_block();
        let right = pb.new_block();
        let join = pb.new_block();
        pb.block_mut(top).branch(CmpOp::Lt, r(1), 0, left, right);
        pb.block_mut(left).alu(AluOp::Add, r(2), r(2), 1).jump(join);
        pb.block_mut(right)
            .alu(AluOp::Sub, r(2), r(2), 1)
            .jump(join);
        pb.block_mut(join).halt();
        pb.set_entry(top);
        pb.init_reg(r(1), -3);
        pb.live_out([r(2)]);
        let p = pb.finish().unwrap();
        assert_eq!(p.successors(BlockId(0)), vec![BlockId(1), BlockId(2)]);
        assert_eq!(p.live_out, vec![r(2)]);
        assert_eq!(p.init_regs, vec![(r(1), -3)]);
    }

    #[test]
    fn memory_helpers() {
        let mut pb = ProgramBuilder::new("mem");
        pb.memory_size(32);
        pb.mem_cell(5, 99);
        let b = pb.new_block();
        pb.block_mut(b).halt();
        pb.set_entry(b);
        let p = pb.finish().unwrap();
        assert_eq!(p.memory.size, 32);
        assert_eq!(p.memory.cells, vec![(5, 99)]);
    }
}
