//! Disassembly: `Display` implementations mirroring the paper's notation
//! (e.g. `c0&c1 ? r2.s = r2 - 1`).

use crate::op::{AluOp, CmpOp, Op, Src};
use crate::scalar::{ScalarProgram, Terminator};
use crate::vliw::{MultiOp, Slot, SlotOp, VliwProgram};
use std::fmt;

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "+",
            AluOp::Sub => "-",
            AluOp::And => "&",
            AluOp::Or => "|",
            AluOp::Xor => "^",
            AluOp::Sll => "<<",
            AluOp::Srl => ">>u",
            AluOp::Sra => ">>",
            AluOp::Slt => "<?",
            AluOp::Mul => "*",
        };
        f.write_str(s)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg { reg, shadow: false } => write!(f, "{reg}"),
            Src::Reg { reg, shadow: true } => write!(f, "{reg}.s"),
            Src::Imm(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Alu { op, rd, a, b } => write!(f, "{rd} = {a} {op} {b}"),
            Op::Copy { rd, src } => write!(f, "{rd} = {src}"),
            Op::Load {
                rd, base, offset, ..
            } => match offset {
                0 => write!(f, "{rd} = load({base})"),
                o if *o > 0 => write!(f, "{rd} = load({base}+{o})"),
                o => write!(f, "{rd} = load({base}{o})"),
            },
            Op::Store {
                base,
                offset,
                value,
                ..
            } => match offset {
                0 => write!(f, "store({base}) = {value}"),
                o if *o > 0 => write!(f, "store({base}+{o}) = {value}"),
                o => write!(f, "store({base}{o}) = {value}"),
            },
            Op::SetCond { c, cmp, a, b } => write!(f, "{c} = {a} {cmp} {b}"),
            Op::Nop => write!(f, "nop"),
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "j {t}"),
            Terminator::Branch {
                cmp,
                a,
                b,
                taken,
                not_taken,
            } => {
                write!(f, "br ({a} {cmp} {b}) {taken} else {not_taken}")
            }
            Terminator::Halt => write!(f, "halt"),
        }
    }
}

impl fmt::Display for SlotOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotOp::Op(op) => write!(f, "{op}"),
            SlotOp::Jump { target } => write!(f, "j W{target}"),
            SlotOp::CmpBr {
                c,
                cmp,
                a,
                b,
                target,
            } => {
                if let Some(c) = c {
                    write!(f, "{c}=br ({a} {cmp} {b}) W{target}")
                } else {
                    write!(f, "br ({a} {cmp} {b}) W{target}")
                }
            }
            SlotOp::Halt => write!(f, "halt"),
        }
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>9} ? {}", self.pred.to_string(), self.op)
    }
}

impl fmt::Display for MultiOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.slots {
            if !first {
                write!(f, " ;  ")?;
            }
            first = false;
            write!(f, "{s}")?;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

impl fmt::Display for VliwProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; vliw program `{}` (K={})", self.name, self.num_conds)?;
        for (addr, word) in self.words.iter().enumerate() {
            if self.region_starts.binary_search(&addr).is_ok() {
                writeln!(f, "R{addr}:")?;
            }
            writeln!(f, "  W{addr:<4} {word}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ScalarProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; scalar program `{}` entry {}", self.name, self.entry)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "B{i}:")?;
            for op in &b.instrs {
                writeln!(f, "  {op}")?;
            }
            writeln!(f, "  {}", b.term)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MemTag;
    use crate::pred::Predicate;
    use crate::reg::{CondReg, Reg};

    #[test]
    fn paper_notation() {
        let r = Reg::new;
        let op = Op::Alu {
            op: AluOp::Sub,
            rd: r(2),
            a: Src::reg(r(2)),
            b: Src::imm(1),
        };
        assert_eq!(op.to_string(), "r2 = r2 - 1");
        let ld = Op::Load {
            rd: r(5),
            base: Src::reg(r(3)),
            offset: 0,
            tag: MemTag::ANY,
        };
        assert_eq!(ld.to_string(), "r5 = load(r3)");
        let slot = Slot::new(
            Predicate::always()
                .and_pos(CondReg::new(0))
                .and_pos(CondReg::new(1)),
            SlotOp::Op(Op::Alu {
                op: AluOp::Sub,
                rd: r(2),
                a: Src::reg(r(2)),
                b: Src::imm(1),
            }),
        );
        assert!(slot.to_string().contains("c0&c1 ? r2 = r2 - 1"));
    }

    #[test]
    fn shadow_suffix() {
        assert_eq!(Src::shadow(Reg::new(7)).to_string(), "r7.s");
    }

    #[test]
    fn setcond_display() {
        let op = Op::SetCond {
            c: CondReg::new(0),
            cmp: CmpOp::Lt,
            a: Src::reg(Reg::new(3)),
            b: Src::reg(Reg::new(4)),
        };
        assert_eq!(op.to_string(), "c0 = r3 < r4");
    }
}
