//! Property tests for the predicate algebra: the masked match operation
//! (Section 3.2) against a brute-force three-valued reference, and the
//! logical laws the scheduler's legality checks rely on.

use proptest::prelude::*;
use psb_isa::{Ccr, Cond, CondReg, PredTerm, Predicate};

const K: usize = 4;

fn term_strategy() -> impl Strategy<Value = PredTerm> {
    prop_oneof![
        3 => Just(PredTerm::DontCare),
        2 => Just(PredTerm::Pos),
        2 => Just(PredTerm::Neg),
    ]
}

fn pred_strategy() -> impl Strategy<Value = Predicate> {
    proptest::collection::vec(term_strategy(), K).prop_map(|terms| {
        let mut p = Predicate::always();
        for (i, t) in terms.into_iter().enumerate() {
            p = p.with_term(CondReg::new(i), t);
        }
        p
    })
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    prop_oneof![Just(Cond::Unspecified), Just(Cond::True), Just(Cond::False)]
}

fn ccr_strategy() -> impl Strategy<Value = Ccr> {
    proptest::collection::vec(cond_strategy(), K).prop_map(|vals| {
        let mut ccr = Ccr::new(K);
        for (i, v) in vals.into_iter().enumerate() {
            match v {
                Cond::True => ccr.set(CondReg::new(i), true),
                Cond::False => ccr.set(CondReg::new(i), false),
                Cond::Unspecified => {}
            }
        }
        ccr
    })
}

/// Three-valued reference semantics: AND over the participating terms.
fn reference_eval(p: &Predicate, ccr: &Ccr) -> Cond {
    let mut acc = Cond::True;
    for (c, term) in p.terms() {
        let v = ccr.get(c);
        let t = match term {
            PredTerm::Pos => v,
            PredTerm::Neg => v.not(),
            PredTerm::DontCare => unreachable!(),
        };
        acc = acc.and(t);
    }
    acc
}

/// All fully specified CCRs over K conditions.
fn all_assignments() -> Vec<Ccr> {
    (0..(1u32 << K))
        .map(|bits| {
            let mut ccr = Ccr::new(K);
            for i in 0..K {
                ccr.set(CondReg::new(i), bits & (1 << i) != 0);
            }
            ccr
        })
        .collect()
}

fn satisfied(p: &Predicate, ccr: &Ccr) -> bool {
    p.eval(ccr) == Cond::True
}

proptest! {
    #[test]
    fn eval_matches_reference(p in pred_strategy(), ccr in ccr_strategy()) {
        prop_assert_eq!(p.eval(&ccr), reference_eval(&p, &ccr));
    }

    #[test]
    fn conjoin_is_logical_and(a in pred_strategy(), b in pred_strategy()) {
        match a.conjoin(&b) {
            Some(ab) => {
                for ccr in all_assignments() {
                    prop_assert_eq!(
                        satisfied(&ab, &ccr),
                        satisfied(&a, &ccr) && satisfied(&b, &ccr)
                    );
                }
            }
            None => {
                // Unsatisfiable together.
                for ccr in all_assignments() {
                    prop_assert!(!(satisfied(&a, &ccr) && satisfied(&b, &ccr)));
                }
            }
        }
    }

    #[test]
    fn implies_is_semantic_implication(a in pred_strategy(), b in pred_strategy()) {
        let claimed = a.implies(&b);
        let semantic = all_assignments()
            .iter()
            .all(|ccr| !satisfied(&a, ccr) || satisfied(&b, ccr));
        // The syntactic check is exact for ANDed predicates.
        prop_assert_eq!(claimed, semantic);
    }

    #[test]
    fn disjoint_means_unsatisfiable_together(a in pred_strategy(), b in pred_strategy()) {
        let claimed = a.disjoint(&b);
        let coexist = all_assignments()
            .iter()
            .any(|ccr| satisfied(&a, ccr) && satisfied(&b, ccr));
        prop_assert_eq!(claimed, !coexist);
    }

    #[test]
    fn unspecified_monotone(p in pred_strategy(), ccr in ccr_strategy()) {
        // Specifying more conditions never turns False into True or
        // vice versa — it only resolves Unspecified.
        let before = p.eval(&ccr);
        for i in 0..K {
            if ccr.get(CondReg::new(i)).is_specified() {
                continue;
            }
            for v in [true, false] {
                let mut refined = ccr;
                refined.set(CondReg::new(i), v);
                let after = p.eval(&refined);
                match before {
                    Cond::True => prop_assert_eq!(after, Cond::True),
                    Cond::False => prop_assert_eq!(after, Cond::False),
                    Cond::Unspecified => {}
                }
            }
        }
    }

    #[test]
    fn depth_counts_terms(p in pred_strategy()) {
        prop_assert_eq!(p.depth(), p.terms().count());
        prop_assert_eq!(p.is_always(), p.depth() == 0);
    }

    #[test]
    fn display_roundtrips_structure(p in pred_strategy()) {
        // The display form has one fragment per participating term.
        let s = p.to_string();
        if p.is_always() {
            prop_assert_eq!(s, "alw");
        } else {
            prop_assert_eq!(s.split('&').count(), p.depth());
        }
    }
}
