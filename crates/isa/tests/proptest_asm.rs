//! Property test: every structurally valid program round-trips through
//! the assembly text format.

use proptest::prelude::*;
use psb_isa::{
    parse_program, AluOp, Block, BlockId, CmpOp, MemImage, MemTag, Op, Reg, ScalarProgram, Src,
    Terminator,
};

fn src_strategy() -> impl Strategy<Value = Src> {
    prop_oneof![
        (1usize..16).prop_map(|r| Src::reg(Reg::new(r))),
        (-100i64..100).prop_map(Src::imm),
    ]
}

fn alu_strategy() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Mul),
    ]
}

fn cmp_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (alu_strategy(), 1usize..16, src_strategy(), src_strategy()).prop_map(|(op, rd, a, b)| {
            Op::Alu {
                op,
                rd: Reg::new(rd),
                a,
                b,
            }
        }),
        (1usize..16, src_strategy()).prop_map(|(rd, src)| Op::Copy {
            rd: Reg::new(rd),
            src
        }),
        (1usize..16, src_strategy(), -8i64..8, 0u16..4).prop_map(|(rd, base, offset, tag)| {
            Op::Load {
                rd: Reg::new(rd),
                base,
                offset,
                tag: MemTag(tag),
            }
        }),
        (src_strategy(), -8i64..8, src_strategy(), 0u16..4).prop_map(
            |(base, offset, value, tag)| Op::Store {
                base,
                offset,
                value,
                tag: MemTag(tag)
            }
        ),
        Just(Op::Nop),
    ]
}

prop_compose! {
    fn program_strategy()(
        nblocks in 1usize..6,
    )(
        blocks in proptest::collection::vec(
            (proptest::collection::vec(op_strategy(), 0..5), 0..3u8),
            nblocks,
        ),
        term_data in proptest::collection::vec(
            (cmp_strategy(), src_strategy(), src_strategy(), 0usize..6, 0usize..6),
            nblocks,
        ),
        entry in 0usize..nblocks,
        init in proptest::collection::vec((1usize..16, -50i64..50), 0..4),
        cells in proptest::collection::vec((1i64..63, -50i64..50), 0..4),
        outs in proptest::collection::vec(1usize..16, 0..4),
    ) -> ScalarProgram {
        let n = blocks.len();
        let blocks: Vec<Block> = blocks
            .into_iter()
            .zip(term_data)
            .map(|((instrs, kind), (cmp, a, b, t1, t2))| Block {
                instrs,
                term: match kind {
                    0 => Terminator::Halt,
                    1 => Terminator::Jump(BlockId((t1 % n) as u32)),
                    _ => Terminator::Branch {
                        cmp,
                        a,
                        b,
                        taken: BlockId((t1 % n) as u32),
                        not_taken: BlockId((t2 % n) as u32),
                    },
                },
            })
            .collect();
        ScalarProgram {
            name: "roundtrip".into(),
            blocks,
            entry: BlockId(entry as u32),
            init_regs: init.into_iter().map(|(r, v)| (Reg::new(r), v)).collect(),
            memory: {
                let mut m = MemImage::zeroed(64);
                for (a, v) in cells {
                    m.set(a, v);
                }
                m
            },
            live_out: outs.into_iter().map(Reg::new).collect(),
        }
    }
}

proptest! {
    #[test]
    fn to_asm_then_parse_is_identity(p in program_strategy()) {
        prop_assume!(p.validate().is_ok());
        let text = p.to_asm();
        let q = parse_program(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
        prop_assert_eq!(&p.blocks, &q.blocks);
        prop_assert_eq!(p.entry, q.entry);
        prop_assert_eq!(&p.init_regs, &q.init_regs);
        prop_assert_eq!(&p.live_out, &q.live_out);
        prop_assert_eq!(&p.memory, &q.memory);
        prop_assert_eq!(&p.name, &q.name);
    }
}
