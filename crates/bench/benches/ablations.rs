//! Benchmarks for the design-choice ablations DESIGN.md calls out:
//!
//! * footnote 1 — single vs infinite shadow registers;
//! * Section 4.2.1 — vector-form vs counter-form predicates.

use criterion::{criterion_group, criterion_main, Criterion};
use psb_eval::{ablation_counter, ablation_shadow, EvalParams};
use std::hint::black_box;

fn quick() -> EvalParams {
    EvalParams {
        size: 128,
        ..EvalParams::default()
    }
}

fn bench_shadow(c: &mut Criterion) {
    let params = quick();
    c.bench_function("ablation_shadow_registers", |b| {
        b.iter(|| {
            let r = ablation_shadow(black_box(&params));
            // The paper's claim (footnote 1): the single-shadow design
            // gives up at most ~1% against unbounded shadow storage — i.e.
            // storage conflicts are rare.  In our model the unbounded
            // variant additionally pays an operand-disambiguation cost, so
            // we check that the single-shadow design never loses.
            assert!(r.geomeans.0 >= r.geomeans.1 * 0.99);
            black_box(r)
        })
    });
}

fn bench_counter(c: &mut Criterion) {
    let params = quick();
    c.bench_function("ablation_counter_predicates", |b| {
        b.iter(|| {
            let r = ablation_counter(black_box(&params));
            // Ordered condition-sets can only slow trace predicating down.
            assert!(r.geomeans.1 <= r.geomeans.0 * 1.01);
            black_box(r)
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_shadow, bench_counter
}
criterion_main!(ablations);
