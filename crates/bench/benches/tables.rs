//! Benchmarks regenerating the paper's tables.
//!
//! * Table 1: the Section 3.4 machine-state-transition example — a
//!   microbenchmark of the predicating machine on the paper's own
//!   schedule.
//! * Table 2: the benchmark inventory (scalar baseline runs).
//! * Table 3: successive-branch prediction accuracy.

use criterion::{criterion_group, criterion_main, Criterion};
use psb_core::{MachineConfig, VliwMachine};
use psb_eval::{table2, table3, EvalParams};
use psb_isa::{
    AluOp, CmpOp, CondReg, MemImage, MemTag, MultiOp, Op, Predicate, Reg, Slot, SlotOp, Src,
    VliwProgram,
};
use std::hint::black_box;

/// The Figure 4 schedule driving Table 1 (see `examples/paper_walkthrough`).
fn figure4() -> VliwProgram {
    let r = Reg::new;
    let c = CondReg::new;
    let p = Predicate::always;
    let c0c1 = p().and_pos(c(0)).and_pos(c(1));
    let alu = |op, rd, a, b| SlotOp::Op(Op::Alu { op, rd, a, b });
    let load = |rd, base, off| {
        SlotOp::Op(Op::Load {
            rd,
            base,
            offset: off,
            tag: MemTag::ANY,
        })
    };
    let store = |base, off, v| {
        SlotOp::Op(Op::Store {
            base,
            offset: off,
            value: v,
            tag: MemTag::ANY,
        })
    };
    let setc = |cr, cmp, a, b| SlotOp::Op(Op::SetCond { c: cr, cmp, a, b });
    let words = vec![
        MultiOp::new(vec![
            Slot::alw(load(r(1), Src::reg(r(2)), 0)),
            Slot::new(c0c1, alu(AluOp::Sub, r(2), Src::reg(r(2)), Src::imm(1))),
        ]),
        MultiOp::new(vec![
            Slot::new(p().and_neg(c(0)), load(r(5), Src::imm(6), 0)),
            Slot::new(c0c1, store(Src::reg(r(7)), 0, Src::reg(r(5)))),
        ]),
        MultiOp::new(vec![
            Slot::alw(alu(AluOp::Add, r(3), Src::reg(r(1)), Src::imm(1))),
            Slot::new(c0c1, alu(AluOp::Sll, r(7), Src::shadow(r(2)), Src::imm(1))),
        ]),
        MultiOp::new(vec![
            Slot::new(p().and_pos(c(0)), load(r(6), Src::reg(r(3)), 0)),
            Slot::alw(setc(c(0), CmpOp::Lt, Src::reg(r(3)), Src::reg(r(4)))),
        ]),
        MultiOp::new(vec![Slot::alw(setc(
            c(2),
            CmpOp::Lt,
            Src::reg(r(2)),
            Src::imm(0),
        ))]),
        MultiOp::new(vec![
            Slot::alw(setc(c(1), CmpOp::Lt, Src::reg(r(5)), Src::reg(r(6)))),
            Slot::new(p().and_neg(c(0)).and_pos(c(2)), SlotOp::Jump { target: 8 }),
        ]),
        MultiOp::new(vec![
            Slot::new(p().and_pos(c(0)).and_neg(c(1)), SlotOp::Jump { target: 8 }),
            Slot::new(c0c1, SlotOp::Jump { target: 8 }),
        ]),
        MultiOp::new(vec![Slot::new(
            p().and_neg(c(0)).and_neg(c(2)),
            SlotOp::Jump { target: 8 },
        )]),
        MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
    ];
    let mut memory = MemImage::zeroed(64);
    memory.set(4, 10);
    memory.set(11, 50);
    memory.set(6, 77);
    VliwProgram {
        name: "figure4".into(),
        words,
        region_starts: vec![0, 8],
        num_conds: 4,
        init_regs: vec![(r(2), 4), (r(4), 100), (r(5), 5), (r(7), 20)],
        memory,
        live_out: vec![r(2), r(7)],
    }
}

fn bench_table1(c: &mut Criterion) {
    let prog = figure4();
    c.bench_function("table1_state_transition", |b| {
        b.iter(|| {
            let res =
                VliwMachine::run_program(black_box(&prog), MachineConfig::two_issue()).unwrap();
            assert_eq!(res.cycles, 8);
            black_box(res)
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let params = EvalParams {
        size: 256,
        ..EvalParams::default()
    };
    c.bench_function("table2_benchmark_inventory", |b| {
        b.iter(|| black_box(table2(black_box(&params))))
    });
}

fn bench_table3(c: &mut Criterion) {
    let params = EvalParams {
        size: 256,
        ..EvalParams::default()
    };
    c.bench_function("table3_successive_prediction", |b| {
        b.iter(|| black_box(table3(black_box(&params))))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3
}
criterion_main!(tables);
