//! Batched lockstep sweep execution against point-at-a-time solo runs.
//!
//! Both sides execute the identical architecture over the identical
//! configuration grid (the batch differential suite proves every lane
//! byte-equal to its solo run); what this group measures is the
//! amortization the batch buys — one shared decoded arena serving all
//! lanes, admission validated per distinct shape instead of per lane,
//! and `NullSink` lanes whose trace calls monomorphize away — versus
//! re-paying those fixed costs once per grid point.

use criterion::{criterion_group, criterion_main, Criterion};
use psb_compile::{compile_fresh, CompileRequest, CompiledArtifact, ProfileSource};
use psb_core::{BatchedMachine, CommitScan, MachineConfig, NullSink};
use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_sched::{Model, SchedConfig};
use std::hint::black_box;

fn compiled(name: &str) -> CompiledArtifact {
    let w = psb_workloads::by_name(name, 3, 512).unwrap();
    let profile = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap()
        .edge_profile;
    compile_fresh(&CompileRequest {
        program: &w.program,
        profile: ProfileSource::Provided(&profile),
        sched: SchedConfig::new(Model::RegionPred),
    })
    .unwrap()
}

/// The quick sweep's machine-dimension grid: sb × scan × latency,
/// 8 lanes.
fn grid() -> Vec<MachineConfig> {
    let mut cfgs = Vec::new();
    for sb in [4usize, 16] {
        for scan in [CommitScan::Naive, CommitScan::Indexed] {
            for lat in [2u64, 4] {
                cfgs.push(MachineConfig {
                    store_buffer_size: sb,
                    commit_scan: scan,
                    load_latency: lat,
                    ..MachineConfig::default()
                });
            }
        }
    }
    cfgs
}

fn bench_batch(c: &mut Criterion, name: &'static str) {
    let art = compiled(name);
    let cfgs = grid();
    let mut g = c.benchmark_group(format!("sweep_grid_{name}"));
    g.bench_function("solo_points", |b| {
        b.iter(|| {
            for cfg in &cfgs {
                black_box(black_box(&art).run(cfg.clone()).unwrap());
            }
        })
    });
    g.bench_function("batched_lockstep", |b| {
        b.iter(|| {
            let lanes = cfgs.iter().map(|c| (c.clone(), NullSink)).collect();
            let batch = BatchedMachine::with_sinks(&art.program, art.decoded.clone(), lanes);
            for lane in black_box(batch.run()).lanes {
                black_box(lane.unwrap());
            }
        })
    });
    g.finish();
}

fn bench_sweep_batch(c: &mut Criterion) {
    bench_batch(c, "li");
    bench_batch(c, "grep");
}

criterion_group! {
    name = batch;
    config = Criterion::default().sample_size(20);
    targets = bench_sweep_batch
}
criterion_main!(batch);
