//! Issue-loop engine comparison: the table-dispatched and pre-decoded
//! hot paths against the legacy per-cycle decode path, on real scheduled
//! programs.
//!
//! The three engines execute the identical architecture (the
//! differential suite proves byte-equal results); what this group
//! measures is pure simulator cost — the legacy path clones the
//! `MultiOp` and walks `SlotOp::srcs()` allocations every cycle, the
//! pre-decoded path reads `Copy` slots from a dense arena and screens
//! operand hazards with one mask intersection, and the tabled path
//! additionally jumps through build-time-generated handler tables that
//! fuse predicate evaluation, hazard masking and execution into one
//! monomorphized call per slot.

use criterion::{criterion_group, criterion_main, Criterion};
use psb_compile::{compile_fresh, CompileRequest, CompiledArtifact, ProfileSource};
use psb_core::{Engine, MachineConfig};
use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_sched::{Model, SchedConfig};
use std::hint::black_box;

fn compiled(name: &str) -> CompiledArtifact {
    let w = psb_workloads::by_name(name, 3, 512).unwrap();
    let profile = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap()
        .edge_profile;
    compile_fresh(&CompileRequest {
        program: &w.program,
        profile: ProfileSource::Provided(&profile),
        sched: SchedConfig::new(Model::RegionPred),
    })
    .unwrap()
}

fn bench_engines(c: &mut Criterion, name: &'static str) {
    let art = compiled(name);
    let mut g = c.benchmark_group(format!("issue_loop_{name}"));
    for (label, engine) in [
        ("legacy", Engine::Legacy),
        ("predecoded", Engine::Predecoded),
        ("tabled", Engine::Tabled),
    ] {
        let cfg = MachineConfig {
            engine,
            ..MachineConfig::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(black_box(&art).run(cfg.clone())))
        });
    }
    g.finish();
}

fn bench_issue_loop(c: &mut Criterion) {
    bench_engines(c, "li");
    bench_engines(c, "grep");
}

criterion_group! {
    name = issue_loop;
    config = Criterion::default().sample_size(20);
    targets = bench_issue_loop
}
criterion_main!(issue_loop);
