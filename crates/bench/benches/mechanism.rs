//! Microbenchmarks of the predicating mechanism itself: the hardware
//! primitives the paper argues are cheap (Section 4.2.1's "three-gate
//! delay" match operation), plus simulator throughput on real kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use psb_compile::{
    compile_fresh, compile_with, ArtifactCache, CompileRequest, CompiledArtifact, ProfileSource,
};
use psb_core::{
    CommitScan, CountersSink, EventLog, MachineConfig, NullSink, PredicatedRegFile, ShadowMode,
};
use psb_eval::{parallel_map, parallel_map_t};
use psb_isa::{Ccr, CondReg, Predicate, Reg};
use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_sched::{Model, SchedConfig};
use psb_telemetry::Recorder;
use std::hint::black_box;

/// One region-pred artifact for a 512-element workload, compiled through
/// the real pipeline (profiled on the same input the machine benches run).
fn region_pred_artifact(name: &str) -> CompiledArtifact {
    let w = psb_workloads::by_name(name, 3, 512).unwrap();
    let profile = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap()
        .edge_profile;
    compile_fresh(&CompileRequest {
        program: &w.program,
        profile: ProfileSource::Provided(&profile),
        sched: SchedConfig::new(Model::RegionPred),
    })
    .unwrap()
}

fn bench_predicate_eval(c: &mut Criterion) {
    let p = Predicate::always()
        .and_pos(CondReg::new(0))
        .and_neg(CondReg::new(1))
        .and_pos(CondReg::new(3));
    let mut ccr = Ccr::new(4);
    ccr.set(CondReg::new(0), true);
    ccr.set(CondReg::new(1), false);
    c.bench_function("predicate_masked_match", |b| {
        b.iter(|| black_box(black_box(&p).eval(black_box(&ccr))))
    });
}

fn bench_regfile_commit(c: &mut Criterion) {
    c.bench_function("regfile_tick_commit_squash", |b| {
        b.iter(|| {
            let mut rf = PredicatedRegFile::new(64, ShadowMode::Single);
            for i in 1..32 {
                let pred = if i % 2 == 0 {
                    Predicate::always().and_pos(CondReg::new(0))
                } else {
                    Predicate::always().and_neg(CondReg::new(0))
                };
                rf.write_spec(Reg::new(i), i as i64, pred, false).unwrap();
            }
            let mut ccr = Ccr::new(4);
            ccr.set(CondReg::new(0), true);
            let mut log = EventLog::new(false);
            rf.tick(&ccr, 1, &mut log);
            black_box(rf)
        })
    });
}

/// The tentpole comparison: per-cycle commit cost with many buffered
/// entries whose conditions never resolve.  The naive scan re-evaluates
/// every entry every cycle; the indexed scan does work only on the first
/// pass (the entries are pending) and then sleeps until a subscribed
/// condition changes.
fn bench_commit_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit_scan_idle_ticks");
    for (label, scan) in [
        ("naive", CommitScan::Naive),
        ("indexed", CommitScan::Indexed),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut rf = PredicatedRegFile::new(64, ShadowMode::Single).with_commit_scan(scan);
                for i in 1..48usize {
                    let pred = Predicate::always().and_pos(CondReg::new(4 + (i % 4)));
                    rf.write_spec(Reg::new(i), i as i64, pred, false).unwrap();
                }
                let ccr = Ccr::new(8);
                let mut log = EventLog::new(false);
                for cycle in 1..=1_000u64 {
                    rf.tick(&ccr, cycle, &mut log);
                }
                black_box(rf)
            })
        });
    }
    g.finish();
}

/// Same comparison end to end: a whole kernel simulated under each scan
/// strategy (identical architecture, different simulator cost).
fn bench_machine_commit_scan(c: &mut Criterion) {
    let art = region_pred_artifact("li");
    let mut g = c.benchmark_group("machine_commit_scan_li");
    for (label, scan) in [
        ("naive", CommitScan::Naive),
        ("indexed", CommitScan::Indexed),
    ] {
        let cfg = MachineConfig::default().with_commit_scan(scan);
        g.bench_function(label, |b| {
            b.iter(|| black_box(black_box(&art).run(cfg.clone())))
        });
    }
    g.finish();
}

fn machine_throughput(c: &mut Criterion, name: &'static str) {
    let art = region_pred_artifact(name);
    c.bench_function(format!("machine_throughput_{name}"), |b| {
        b.iter(|| black_box(black_box(&art).run(MachineConfig::default())))
    });
}

fn bench_machine(c: &mut Criterion) {
    machine_throughput(c, "grep");
    machine_throughput(c, "li");
}

/// Guard for the observability tentpole: a `NullSink` machine must cost
/// the same as the plain one (the sink's `event_enabled`/`sample_enabled`
/// return constant `false`, so every instrumentation site monomorphizes
/// away), while the counters sink pays only its sampling cost.
fn bench_trace_sink_overhead(c: &mut Criterion) {
    let art = region_pred_artifact("li");
    let mut g = c.benchmark_group("trace_sink_li");
    g.bench_function("baseline", |b| {
        b.iter(|| black_box(black_box(&art).run(MachineConfig::default())))
    });
    g.bench_function("null_sink", |b| {
        b.iter(|| black_box(black_box(&art).run_with_sink(MachineConfig::default(), NullSink)))
    });
    g.bench_function("counters_sink", |b| {
        b.iter(|| {
            black_box(black_box(&art).run_with_sink(MachineConfig::default(), CountersSink::new()))
        })
    });
    g.finish();
}

/// Guard for the host-telemetry tentpole, mirroring `trace_sink_li`: a
/// `parallel_map` with the default `NullTelemetry` must cost the same as
/// a bare sequential loop (`enabled()` is a constant `false`, so every
/// instrumentation site — clock reads, labels, span pushes —
/// monomorphizes away), while the `Recorder` pays only two clock reads
/// and a buffer push per task.
fn bench_telemetry_pmap_overhead(c: &mut Criterion) {
    let items: Vec<u64> = (0..256).collect();
    // Enough work per item that a task is not a pure function call, small
    // enough that fixed per-task overhead would still show in the numbers.
    let work = |&x: &u64| -> u64 {
        let mut acc = x;
        for i in 0..64u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    };
    let mut g = c.benchmark_group("telemetry_pmap");
    g.bench_function("bare_loop", |b| {
        b.iter(|| black_box(black_box(&items).iter().map(work).collect::<Vec<_>>()))
    });
    g.bench_function("null_telemetry", |b| {
        b.iter(|| black_box(parallel_map(black_box(&items), 1, work)))
    });
    g.bench_function("recorder", |b| {
        b.iter(|| {
            let tel = Recorder::new(false);
            black_box(parallel_map_t(
                black_box(&items),
                1,
                &tel,
                |i, _| format!("item{i}"),
                work,
            ))
        })
    });
    g.finish();
}

/// Same guard for the compile cache's hit path: `compile` (the
/// `NullTelemetry` wrapper) against `compile_with` + `Recorder` on a warm
/// cache, where per-call cost is just key hash + shard lock + `Arc`
/// clone and any residual instrumentation cost would be proportionally
/// largest.
fn bench_telemetry_cache_hit_overhead(c: &mut Criterion) {
    let w = psb_workloads::by_name("grep", 3, 256).unwrap();
    let profile = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap()
        .edge_profile;
    let req = CompileRequest {
        program: &w.program,
        profile: ProfileSource::Provided(&profile),
        sched: SchedConfig::new(Model::RegionPred),
    };
    let cache = ArtifactCache::new();
    compile_with(&req, &cache, &Recorder::new(false)).unwrap(); // warm
    let mut g = c.benchmark_group("telemetry_cache_hit");
    g.bench_function("null_telemetry", |b| {
        b.iter(|| black_box(psb_compile::compile(black_box(&req), &cache).unwrap()))
    });
    g.bench_function("recorder", |b| {
        let tel = Recorder::new(false);
        b.iter(|| black_box(compile_with(black_box(&req), &cache, &tel).unwrap()))
    });
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    // schedule + decode cost (the profile is provided, so the scalar
    // training run is excluded from the timed region).
    let w = psb_workloads::by_name("espresso", 3, 512).unwrap();
    let profile = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap()
        .edge_profile;
    c.bench_function("compile_fresh_region_pred_espresso", |b| {
        b.iter(|| {
            black_box(
                compile_fresh(&CompileRequest {
                    program: black_box(&w.program),
                    profile: ProfileSource::Provided(&profile),
                    sched: SchedConfig::new(Model::RegionPred),
                })
                .unwrap(),
            )
        })
    });
}

fn bench_compile_scaling(c: &mut Criterion) {
    // Compiler throughput vs region size: unrolling multiplies the blocks
    // a single region must cover.
    let w = psb_workloads::by_name("espresso", 3, 256).unwrap();
    let mut g = c.benchmark_group("compile_scaling_by_unroll");
    for factor in [1usize, 2, 4, 8] {
        let prog = psb_ir::unroll_loops(&w.program, factor);
        let profile = ScalarMachine::new(&prog, ScalarConfig::default())
            .run()
            .unwrap()
            .edge_profile;
        let mut cfg = SchedConfig::new(Model::RegionPred);
        cfg.num_conds = 8;
        cfg.depth = 8;
        cfg.max_blocks = 64;
        g.bench_function(format!("unroll_{factor}"), |b| {
            b.iter(|| {
                black_box(
                    compile_fresh(&CompileRequest {
                        program: black_box(&prog),
                        profile: ProfileSource::Provided(&profile),
                        sched: cfg.clone(),
                    })
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = mechanism;
    config = Criterion::default().sample_size(20);
    targets = bench_predicate_eval, bench_regfile_commit, bench_commit_scan,
        bench_machine_commit_scan, bench_machine, bench_trace_sink_overhead,
        bench_telemetry_pmap_overhead, bench_telemetry_cache_hit_overhead,
        bench_compile, bench_compile_scaling
}
criterion_main!(mechanism);
