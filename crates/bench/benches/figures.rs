//! Benchmarks regenerating the paper's figures (6, 7 and 8) at a reduced
//! workload size.  Each iteration re-runs the full pipeline — profiling,
//! scheduling under every model, VLIW execution and golden-model checking
//! — so these double as end-to-end throughput benchmarks of the
//! reproduction.  The printed numbers of record come from
//! `cargo run --release -p psb-eval --bin repro`.

use criterion::{criterion_group, criterion_main, Criterion};
use psb_eval::{fig6, fig7, fig8, EvalParams};
use std::hint::black_box;

fn quick() -> EvalParams {
    EvalParams {
        size: 128,
        ..EvalParams::default()
    }
}

fn bench_fig6(c: &mut Criterion) {
    let params = quick();
    c.bench_function("fig6_restricted_models", |b| {
        b.iter(|| black_box(fig6(black_box(&params))))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let params = quick();
    c.bench_function("fig7_predicating_models", |b| {
        b.iter(|| black_box(fig7(black_box(&params))))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let params = EvalParams {
        size: 64,
        ..EvalParams::default()
    };
    let mut g = c.benchmark_group("fig8_full_issue_sweep");
    g.sample_size(10);
    g.bench_function("width2_4_8_x_depth1_2_4_8", |b| {
        b.iter(|| black_box(fig8(black_box(&params))))
    });
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6, bench_fig7, bench_fig8
}
criterion_main!(figures);
