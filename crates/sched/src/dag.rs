//! Dependence-DAG construction over a scope's ops, parameterised by a
//! speculation policy.
//!
//! Edges encode both data dependences and each model's *speculation
//! constraints*:
//!
//! * register RAW follows the scope tree (the producer is the last
//!   definition on the reader's ancestor chain) and decides per-source
//!   shadow bits for the buffering styles;
//! * WAR/WAW edges order writes, with extra *resolution edges* (from the
//!   condition-setters of the earlier value's predicate) that serialise
//!   conflicting speculative writes under the single-shadow register file
//!   — the constraint the infinite-shadow ablation removes;
//! * memory edges use the aliasing tags and skip pairs on disjoint paths;
//! * control edges implement the models: *pinning* (no speculation),
//!   *squash windows* (the predicate must resolve before writeback — the
//!   speculative state lives only in the pipeline) and *buffered depth*
//!   (up to `depth` conditions may still be unresolved at issue,
//!   Figure 8's parameter);
//! * every control transfer waits for its predicate's setters, and no
//!   operation that might be needed on an exit path may be scheduled after
//!   that exit.

use crate::ops::SchedOp;
use psb_isa::{CondReg, Op, Predicate, Reg, SlotOp, Src};
use std::collections::HashMap;

/// Unsafe-op hoisting discipline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Hoist {
    /// Unsafe ops never move above an unresolved branch (global model).
    No,
    /// Unsafe ops may be in flight across a branch but must resolve before
    /// writeback (pipeline squashing).
    Window,
    /// Unsafe results are buffered with their predicate (boosting and
    /// predicating).
    Buffered,
}

/// A model's speculation policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Policy {
    /// Linear (compare-and-branch) or predicated lowering.
    pub linear: bool,
    /// Unsafe-op discipline.
    pub hoist: Hoist,
    /// Maximum branches/conditions an op may pass unresolved.
    pub depth: usize,
    /// Safe (and all predicated) ops are also window-constrained — the
    /// region *scheduling* model, which has squashing hardware only.
    pub window_all: bool,
    /// The register file has a single shadow entry per register, so
    /// conflicting speculative writes must be serialised.
    pub single_shadow: bool,
    /// Counter-form predicate ablation (Section 4.2.1): condition-set
    /// instructions must execute in program order because a counter cannot
    /// represent *which* condition was set.  The paper's vector form
    /// allows reordering; enabling this models the counter alternative.
    pub ordered_cond_sets: bool,
}

/// The built DAG: forward edges with latencies, plus the (possibly
/// shadow-bit-rewritten) ops.
#[derive(Clone, Debug)]
pub struct Dag {
    /// `succs[i]` = `(j, latency)`: op `j` may issue no earlier than
    /// `cycle(i) + latency`.
    pub succs: Vec<Vec<(usize, u64)>>,
}

/// Builds the DAG for `ops`, setting shadow bits on sources read from the
/// speculative state.
pub fn build_dag(ops: &mut [SchedOp], policy: &Policy) -> Dag {
    let n = ops.len();
    let mut succs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let add = |succs: &mut Vec<Vec<(usize, u64)>>, from: usize, to: usize, lat: u64| {
        debug_assert!(from < to, "DAG edges must be forward ({from} -> {to})");
        succs[from].push((to, lat));
    };

    // Condition setters (condition-set ops or condition-writing
    // compare-and-branch), and control ops in program order.
    let mut setter: HashMap<CondReg, usize> = HashMap::new();
    let mut controls: Vec<usize> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if let Some(c) = op.sets_cond() {
            setter.insert(c, i);
        }
        if op.is_control() {
            controls.push(i);
        }
    }
    let resolve = |succs: &mut Vec<Vec<(usize, u64)>>, pred: &Predicate, to: usize, lat: u64| {
        for (c, _) in pred.terms() {
            if let Some(&s) = setter.get(&c) {
                if s < to {
                    succs[s].push((to, lat));
                }
            }
        }
    };

    // Per-register tracking: definitions (op, node) and readers since the
    // last definition.
    let mut defs: HashMap<Reg, Vec<usize>> = HashMap::new();
    let mut readers: HashMap<Reg, Vec<usize>> = HashMap::new();
    let mut mem_ops: Vec<usize> = Vec::new();

    for j in 0..n {
        let op = ops[j].clone();

        // --- Register RAW: producer = last def on j's ancestor chain. ---
        let mut shadow_fixes: Vec<(usize, bool)> = Vec::new(); // (src position, shadow)
        for (src_pos, src) in op.slot_op.srcs().iter().enumerate() {
            let Some(r) = src.as_reg() else { continue };
            if r.is_zero() {
                continue;
            }
            readers.entry(r).or_default().push(j);
            // All earlier defs on compatible (non-disjoint) paths; the
            // last one is the producer when it dominates the reader.
            let compatible: Vec<usize> = defs
                .get(&r)
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&d| !ops[d].home.disjoint(&op.home))
                        .collect()
                })
                .unwrap_or_default();
            let Some(&p) = compatible.last() else {
                continue;
            };
            if op.home.implies(&ops[p].home) {
                add(&mut succs, p, j, ops[p].latency);
                // Shadow bit: read the speculative state when the
                // producer's result is buffered there.
                if !ops[p].pred.is_always() {
                    let weak_reader = op.is_control() || op.is_setcond();
                    let multiple_spec_writers = defs[&r]
                        .iter()
                        .filter(|&&d| !ops[d].pred.is_always() && ops[d].pred != ops[p].pred)
                        .count()
                        > 0;
                    if weak_reader && !policy.single_shadow && multiple_spec_writers {
                        // With unbounded shadow slots an `alw` reader
                        // cannot disambiguate by predicate: wait for
                        // resolution and read the sequential state.
                        resolve(&mut succs, &ops[p].pred.clone(), j, 1);
                    } else {
                        shadow_fixes.push((src_pos, true));
                    }
                }
            } else {
                // Commit dependence (Section 4.2.2): the reader sits at a
                // join below defs it does not post-dominate, so it cannot
                // know whether to fetch the speculative or the sequential
                // state; it must wait until every candidate producer
                // commits or squashes, then read the sequential storage.
                for &d in &compatible {
                    add(&mut succs, d, j, ops[d].latency);
                    let dp = ops[d].pred;
                    if !dp.is_always() {
                        resolve(&mut succs, &dp, j, 1);
                    }
                }
            }
        }
        if !shadow_fixes.is_empty() {
            set_shadow_bits(&mut ops[j].slot_op, &shadow_fixes);
        }

        // --- WAR / WAW on j's definition. ---
        if let Some(rd) = def_reg_of(&op.slot_op) {
            if let Some(rs) = readers.get(&rd) {
                for &r_i in rs {
                    if r_i == j || ops[r_i].home.disjoint(&op.home) {
                        continue;
                    }
                    // Anti dependence: the read happens at issue, the write
                    // at end of cycle, so the same cycle is fine.
                    add(&mut succs, r_i, j, 0);
                    // Recovery safety: a speculative reader may re-execute
                    // during recovery and must still find its operand.
                    let rp = ops[r_i].pred;
                    if !rp.is_always() && !op.pred.implies(&rp) && !op.pred.disjoint(&rp) {
                        resolve(&mut succs, &rp, j, 1);
                    }
                }
            }
            if let Some(ds) = defs.get(&rd) {
                for &d in ds.iter() {
                    let dp = ops[d].pred;
                    if ops[d].home.disjoint(&op.home) {
                        // Parallel-path writers share no execution, but
                        // under a single shadow register their buffered
                        // values would collide.
                        if policy.single_shadow && !dp.is_always() && !op.pred.is_always() {
                            resolve(&mut succs, &dp, j, 1);
                        }
                        continue;
                    }
                    add(&mut succs, d, j, 1);
                    if policy.single_shadow && !dp.is_always() && dp != op.pred {
                        resolve(&mut succs, &dp, j, 1);
                    }
                }
            }
            defs.entry(rd).or_default().push(j);
            // Readers are never cleared: a definition on one path must not
            // hide readers on parallel paths from later writers (WAR edges
            // to already-ordered readers are redundant but harmless).
        }

        // --- Memory dependences. ---
        // `mem_tag()` is `Some` exactly when `is_mem()`, but the type
        // system does not guarantee it, and a panic here would abort the
        // differential fuzz harness mid-shrink.  Route through the checked
        // accessor so a malformed op degrades to "no ordering edge"
        // (caught downstream by the machine's validation) instead.
        if let SlotOp::Op(mop) = op.slot_op {
            if let Some(tag) = mop.mem_tag() {
                let j_store = matches!(mop, Op::Store { .. });
                for &i in &mem_ops {
                    let SlotOp::Op(iop) = ops[i].slot_op else {
                        continue;
                    };
                    let Some(itag) = iop.mem_tag() else {
                        debug_assert!(false, "mem_ops holds a non-memory op");
                        continue;
                    };
                    if !itag.may_alias(tag) || ops[i].home.disjoint(&op.home) {
                        continue;
                    }
                    let i_store = matches!(iop, Op::Store { .. });
                    match (i_store, j_store) {
                        (true, false) => add(&mut succs, i, j, 1), // RAW
                        (false, true) => add(&mut succs, i, j, 0), // WAR
                        (true, true) => add(&mut succs, i, j, 1),  // WAW
                        (false, false) => {}
                    }
                }
                mem_ops.push(j);
            }
        }

        // --- Control constraints. ---
        if op.is_control() {
            // A transfer's predicate must be specified at issue.
            resolve(&mut succs, &op.pred.clone(), j, 1);
            if let Some(a) = op.after {
                add(&mut succs, a, j, 1);
            }
        } else if !op.is_setcond() && !matches!(op.slot_op, SlotOp::Op(Op::Nop)) {
            let pred_setters: Vec<usize> = op
                .pred
                .terms()
                .filter_map(|(c, _)| setter.get(&c).copied())
                .filter(|&s| s < j)
                .collect();
            if policy.linear {
                let before: &[usize] = &controls[..controls.iter().take_while(|&&c| c < j).count()];
                let branches: Vec<usize> = before
                    .iter()
                    .copied()
                    .filter(|&c| matches!(ops[c].slot_op, SlotOp::CmpBr { .. }))
                    .collect();
                match policy.hoist {
                    Hoist::Buffered => {
                        // Boosting: pass up to `depth` branches buffered.
                        let keep = branches.len().saturating_sub(policy.depth);
                        for &b in &branches[..keep] {
                            add(&mut succs, b, j, 1);
                        }
                    }
                    Hoist::No | Hoist::Window => {
                        if op.pinned || (op.is_unsafe() && policy.hoist == Hoist::No) {
                            for &b in &branches {
                                add(&mut succs, b, j, 1);
                            }
                        } else if op.is_unsafe() {
                            // Window: resolve before writeback; only
                            // `depth` branches may be within the window.
                            let keep = branches.len().saturating_sub(policy.depth);
                            for (k, &b) in branches.iter().enumerate() {
                                let lat = if k < keep {
                                    1
                                } else {
                                    2u64.saturating_sub(op.latency)
                                };
                                add(&mut succs, b, j, lat);
                            }
                        }
                        // Safe renamed ops move freely.
                    }
                }
            } else {
                // Predicated styles.
                if policy.window_all {
                    let lat = 2u64.saturating_sub(op.latency);
                    for &s in &pred_setters {
                        add(&mut succs, s, j, lat);
                    }
                } else {
                    let keep = pred_setters.len().saturating_sub(policy.depth);
                    for &s in &pred_setters[..keep] {
                        add(&mut succs, s, j, 1);
                    }
                }
            }
        }
    }

    // Counter-form predicates: condition-sets execute strictly in order.
    if policy.ordered_cond_sets {
        let setcond_ops: Vec<usize> = (0..n).filter(|&i| ops[i].is_setcond()).collect();
        for w in setcond_ops.windows(2) {
            add(&mut succs, w[0], w[1], 1);
        }
    }

    // --- Exit barriers. ---
    // Linear control transfers are strictly ordered among themselves; any
    // op that might still be needed when an exit fires must not be
    // scheduled after it.
    if policy.linear {
        for w in controls.windows(2) {
            add(&mut succs, w[0], w[1], 1);
        }
    }
    for &x in &controls {
        let Some(exit_cond) = ops[x].exit_cond.clone() else {
            continue;
        };
        for (y, op) in ops.iter().enumerate() {
            if y == x
                || op.is_control()
                || op.is_setcond()
                || matches!(op.slot_op, SlotOp::Op(Op::Nop))
            {
                continue;
            }
            if !op.home.disjoint(&exit_cond) && y < x {
                add(&mut succs, y, x, 0);
            }
        }
    }

    Dag { succs }
}

fn def_reg_of(s: &SlotOp) -> Option<Reg> {
    match s {
        SlotOp::Op(op) => op.def_reg(),
        _ => None,
    }
}

fn set_shadow_bits(slot: &mut SlotOp, fixes: &[(usize, bool)]) {
    let mut pos = 0usize;
    let mut fix = |s: Src| -> Src {
        let out = if fixes.iter().any(|&(p, sh)| p == pos && sh) {
            s.with_shadow(true)
        } else {
            s
        };
        pos += 1;
        out
    };
    match slot {
        SlotOp::Op(op) => *op = op.map_srcs(&mut fix),
        SlotOp::CmpBr { a, b, .. } => {
            *a = fix(*a);
            *b = fix(*b);
        }
        SlotOp::Jump { .. } | SlotOp::Halt => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathcond::PathCond;
    use psb_isa::{AluOp, CmpOp, MemTag, Predicate};

    fn alw_op(slot: SlotOp, node: usize, level: usize) -> SchedOp {
        sched_op(slot, Predicate::always(), PathCond::root(), node, level)
    }

    fn sched_op(
        slot: SlotOp,
        pred: Predicate,
        home: PathCond,
        node: usize,
        level: usize,
    ) -> SchedOp {
        let latency = match slot {
            SlotOp::Op(Op::Load { .. }) => 2,
            _ => 1,
        };
        SchedOp {
            slot_op: slot,
            pred,
            home,
            exit_cond: None,
            node,
            level,
            exit_target: None,
            after: None,
            latency,
            pinned: false,
            prob: 1.0,
        }
    }

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    fn policy() -> Policy {
        Policy {
            linear: false,
            hoist: Hoist::Buffered,
            depth: 4,
            window_all: false,
            single_shadow: true,
            ordered_cond_sets: false,
        }
    }

    fn edges_of(dag: &Dag, from: usize) -> Vec<(usize, u64)> {
        dag.succs[from].clone()
    }

    #[test]
    fn raw_edge_with_latency() {
        let mut ops = vec![
            alw_op(
                SlotOp::Op(Op::Load {
                    rd: r(1),
                    base: Src::imm(4),
                    offset: 0,
                    tag: MemTag::ANY,
                }),
                0,
                0,
            ),
            alw_op(
                SlotOp::Op(Op::Alu {
                    op: AluOp::Add,
                    rd: r(2),
                    a: Src::reg(r(1)),
                    b: Src::imm(1),
                }),
                0,
                0,
            ),
        ];
        let dag = build_dag(&mut ops, &policy());
        assert!(
            edges_of(&dag, 0).contains(&(1, 2)),
            "load latency 2 on RAW edge"
        );
    }

    #[test]
    fn raw_skips_disjoint_paths() {
        // Producer on path (0,true), reader on (0,false): no edge.
        let p_home = PathCond::root().extend(0, true);
        let q_home = PathCond::root().extend(0, false);
        let mut ops = vec![
            sched_op(
                SlotOp::Op(Op::Copy {
                    rd: r(1),
                    src: Src::imm(1),
                }),
                Predicate::always().and_pos(psb_isa::CondReg::new(0)),
                p_home,
                1,
                1,
            ),
            sched_op(
                SlotOp::Op(Op::Alu {
                    op: AluOp::Add,
                    rd: r(2),
                    a: Src::reg(r(1)),
                    b: Src::imm(1),
                }),
                Predicate::always().and_neg(psb_isa::CondReg::new(0)),
                q_home,
                2,
                1,
            ),
        ];
        let dag = build_dag(&mut ops, &policy());
        assert!(
            !dag.succs[0].iter().any(|&(t, _)| t == 1),
            "disjoint paths share no RAW"
        );
    }

    #[test]
    fn shadow_bit_set_for_speculative_producer() {
        let c0 = psb_isa::CondReg::new(0);
        let home = PathCond::root().extend(0, true);
        let mut ops = vec![
            sched_op(
                SlotOp::Op(Op::Copy {
                    rd: r(1),
                    src: Src::imm(1),
                }),
                Predicate::always().and_pos(c0),
                home.clone(),
                1,
                1,
            ),
            sched_op(
                SlotOp::Op(Op::Alu {
                    op: AluOp::Add,
                    rd: r(2),
                    a: Src::reg(r(1)),
                    b: Src::imm(1),
                }),
                Predicate::always().and_pos(c0),
                home,
                1,
                1,
            ),
        ];
        build_dag(&mut ops, &policy());
        if let SlotOp::Op(Op::Alu { a, .. }) = ops[1].slot_op {
            assert_eq!(a, Src::shadow(r(1)));
        } else {
            panic!("unexpected op");
        }
    }

    #[test]
    fn single_shadow_serialises_parallel_writers() {
        let c0 = psb_isa::CondReg::new(0);
        let setc = alw_op(
            SlotOp::Op(Op::SetCond {
                c: c0,
                cmp: CmpOp::Lt,
                a: Src::imm(0),
                b: Src::imm(1),
            }),
            0,
            0,
        );
        let w1 = sched_op(
            SlotOp::Op(Op::Copy {
                rd: r(1),
                src: Src::imm(1),
            }),
            Predicate::always().and_pos(c0),
            PathCond::root().extend(0, true),
            1,
            1,
        );
        let w2 = sched_op(
            SlotOp::Op(Op::Copy {
                rd: r(1),
                src: Src::imm(2),
            }),
            Predicate::always().and_neg(c0),
            PathCond::root().extend(0, false),
            2,
            1,
        );
        let mut ops = vec![setc.clone(), w1.clone(), w2.clone()];
        let dag = build_dag(&mut ops, &policy());
        // The second writer must wait for the first predicate's setter.
        assert!(dag.succs[0].iter().any(|&(t, l)| t == 2 && l == 1));

        // Infinite shadow mode drops the constraint.
        let mut ops2 = vec![setc, w1, w2];
        let mut p = policy();
        p.single_shadow = false;
        let dag2 = build_dag(&mut ops2, &p);
        assert!(!dag2.succs[0].iter().any(|&(t, _)| t == 2));
    }

    #[test]
    fn control_transfer_waits_for_resolution() {
        let c0 = psb_isa::CondReg::new(0);
        let mut ops = vec![
            alw_op(
                SlotOp::Op(Op::SetCond {
                    c: c0,
                    cmp: CmpOp::Lt,
                    a: Src::imm(0),
                    b: Src::imm(1),
                }),
                0,
                0,
            ),
            sched_op(
                SlotOp::Jump { target: 0 },
                Predicate::always().and_pos(c0),
                PathCond::root(),
                0,
                0,
            ),
        ];
        let dag = build_dag(&mut ops, &policy());
        assert!(dag.succs[0].contains(&(1, 1)));
    }

    #[test]
    fn depth_limits_speculation() {
        // Two setters; depth 1: the op must wait for the first setter.
        let c0 = psb_isa::CondReg::new(0);
        let c1 = psb_isa::CondReg::new(1);
        let mk_set = |c, node| {
            alw_op(
                SlotOp::Op(Op::SetCond {
                    c,
                    cmp: CmpOp::Lt,
                    a: Src::imm(0),
                    b: Src::imm(1),
                }),
                node,
                node,
            )
        };
        let deep = sched_op(
            SlotOp::Op(Op::Copy {
                rd: r(1),
                src: Src::imm(1),
            }),
            Predicate::always().and_pos(c0).and_pos(c1),
            PathCond::root().extend(0, true).extend(1, true),
            2,
            2,
        );
        let mut ops = vec![mk_set(c0, 0), mk_set(c1, 1), deep.clone()];
        let mut p = policy();
        p.depth = 1;
        let dag = build_dag(&mut ops, &p);
        assert!(dag.succs[0].iter().any(|&(t, l)| t == 2 && l == 1));
        assert!(!dag.succs[1].iter().any(|&(t, _)| t == 2));

        // Depth 2: unconstrained.
        let mut ops2 = vec![mk_set(c0, 0), mk_set(c1, 1), deep];
        p.depth = 2;
        let dag2 = build_dag(&mut ops2, &p);
        assert!(!dag2.succs[0].iter().any(|&(t, _)| t == 2));
    }

    #[test]
    fn window_constrains_writeback() {
        // window_all: a 1-cycle op waits a full cycle after its setter; a
        // load may issue the same cycle.
        let c0 = psb_isa::CondReg::new(0);
        let set = alw_op(
            SlotOp::Op(Op::SetCond {
                c: c0,
                cmp: CmpOp::Lt,
                a: Src::imm(0),
                b: Src::imm(1),
            }),
            0,
            0,
        );
        let alu = sched_op(
            SlotOp::Op(Op::Copy {
                rd: r(1),
                src: Src::imm(1),
            }),
            Predicate::always().and_pos(c0),
            PathCond::root().extend(0, true),
            1,
            1,
        );
        let load = sched_op(
            SlotOp::Op(Op::Load {
                rd: r(2),
                base: Src::imm(4),
                offset: 0,
                tag: MemTag::ANY,
            }),
            Predicate::always().and_pos(c0),
            PathCond::root().extend(0, true),
            1,
            1,
        );
        let mut ops = vec![set, alu, load];
        let mut p = policy();
        p.window_all = true;
        let dag = build_dag(&mut ops, &p);
        assert!(dag.succs[0].contains(&(1, 1)), "ALU waits for resolution");
        assert!(
            dag.succs[0].contains(&(2, 0)),
            "load window allows same-cycle issue"
        );
    }

    #[test]
    fn exit_barrier_orders_ancestor_ops() {
        let c0 = psb_isa::CondReg::new(0);
        let mut ops = vec![
            alw_op(
                SlotOp::Op(Op::Copy {
                    rd: r(1),
                    src: Src::imm(1),
                }),
                0,
                0,
            ),
            alw_op(
                SlotOp::Op(Op::SetCond {
                    c: c0,
                    cmp: CmpOp::Lt,
                    a: Src::imm(0),
                    b: Src::imm(1),
                }),
                0,
                0,
            ),
            {
                let mut j = sched_op(
                    SlotOp::Jump { target: 0 },
                    Predicate::always().and_pos(c0),
                    PathCond::root(),
                    0,
                    0,
                );
                j.exit_cond = Some(PathCond::root().extend(0, true));
                j
            },
        ];
        let dag = build_dag(&mut ops, &policy());
        // The copy (home = root, not disjoint with the exit) must complete
        // before the exit.
        assert!(dag.succs[0].contains(&(2, 0)));
    }

    #[test]
    fn memory_edges_respect_tags_and_paths() {
        let st = |tag| {
            alw_op(
                SlotOp::Op(Op::Store {
                    base: Src::imm(4),
                    offset: 0,
                    value: Src::imm(1),
                    tag,
                }),
                0,
                0,
            )
        };
        let ld = |tag| {
            alw_op(
                SlotOp::Op(Op::Load {
                    rd: r(1),
                    base: Src::imm(4),
                    offset: 0,
                    tag,
                }),
                0,
                0,
            )
        };
        let mut ops = vec![st(MemTag(1)), ld(MemTag(1)), ld(MemTag(2))];
        let dag = build_dag(&mut ops, &policy());
        assert!(dag.succs[0].contains(&(1, 1)), "aliasing RAW");
        assert!(
            !dag.succs[0].iter().any(|&(t, _)| t == 2),
            "different tags independent"
        );
    }
}
