//! Resource-constrained list scheduling and word emission.

use crate::dag::Dag;
use crate::ops::SchedOp;
use psb_isa::{BlockId, FuClass, MultiOp, Resources, Slot};

/// One scheduled scope: its instruction words and the exits to patch once
/// every scope has an address.
#[derive(Clone, Debug)]
pub struct ScheduledScope {
    /// The emitted words (one per cycle; words may be empty).
    pub words: Vec<MultiOp>,
    /// `(word, slot, target_head)` triples: the slot's jump target must be
    /// patched to the scope headed by `target_head`.
    pub patches: Vec<(usize, usize, BlockId)>,
}

/// Critical-path list scheduling of `ops` under `dag`.
///
/// Priority is the classic critical-path height (longest latency path to
/// any leaf); ties break on program order, keeping the schedule
/// deterministic.
pub fn list_schedule(
    ops: &[SchedOp],
    dag: &Dag,
    issue_width: usize,
    resources: &Resources,
) -> ScheduledScope {
    let n = ops.len();
    // Priorities: longest path to a leaf.
    let mut height = vec![0u64; n];
    for i in (0..n).rev() {
        for &(j, lat) in &dag.succs[i] {
            height[i] = height[i].max(lat.max(1) + height[j]);
        }
    }
    let mut indeg = vec![0usize; n];
    for i in 0..n {
        for &(j, _) in &dag.succs[i] {
            indeg[j] += 1;
        }
    }
    let mut earliest = vec![0u64; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut scheduled = vec![false; n];
    let mut remaining = n;
    let mut cycle: u64 = 0;
    let mut words: Vec<Vec<usize>> = Vec::new();

    while remaining > 0 {
        let mut used = [0usize; 4];
        let classes = [FuClass::Alu, FuClass::Branch, FuClass::Load, FuClass::Store];
        let mut this_word: Vec<usize> = Vec::new();
        // Latency-0 edges let a dependent issue in its producer's cycle,
        // so re-collect ready ops until the word stops growing.
        loop {
            let mut avail: Vec<usize> = ready
                .iter()
                .copied()
                .filter(|&i| earliest[i] <= cycle && !scheduled[i])
                .collect();
            // Critical path first; then common-path before rare-path
            // (profile-driven slot allocation); then program order.
            avail.sort_by_key(|&i| {
                (
                    std::cmp::Reverse(height[i]),
                    std::cmp::Reverse((ops[i].prob * 4096.0) as u64),
                    i,
                )
            });
            let mut progressed = false;
            for &i in &avail {
                if this_word.len() >= issue_width {
                    break;
                }
                let class = ops[i].slot_op.fu_class();
                let ci = classes.iter().position(|&c| c == class).expect("class");
                if used[ci] >= resources.of(class) {
                    continue;
                }
                used[ci] += 1;
                this_word.push(i);
                scheduled[i] = true;
                progressed = true;
                ready.retain(|&x| x != i);
                remaining -= 1;
                for &(j, lat) in &dag.succs[i] {
                    earliest[j] = earliest[j].max(cycle + lat);
                    indeg[j] -= 1;
                    if indeg[j] == 0 {
                        ready.push(j);
                    }
                }
            }
            if !progressed || this_word.len() >= issue_width {
                break;
            }
        }
        words.push(this_word);
        cycle += 1;
        assert!(
            cycle < 10_000_000,
            "list scheduler did not converge (dependence cycle?)"
        );
    }

    // Trim trailing empty words, then emit.
    while words.last().is_some_and(|w| w.is_empty()) {
        words.pop();
    }
    let mut out = ScheduledScope {
        words: Vec::with_capacity(words.len()),
        patches: Vec::new(),
    };
    for (w, idxs) in words.iter().enumerate() {
        let mut slots = Vec::with_capacity(idxs.len());
        for (s, &i) in idxs.iter().enumerate() {
            if let Some(t) = ops[i].exit_target {
                out.patches.push((w, s, t));
            }
            slots.push(Slot::new(ops[i].pred, ops[i].slot_op));
        }
        out.words.push(MultiOp::new(slots));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{build_dag, Hoist, Policy};
    use crate::pathcond::PathCond;
    use psb_isa::{AluOp, Op, Predicate, Reg, SlotOp, Src};

    fn alu(rd: usize, a: usize) -> SchedOp {
        SchedOp {
            slot_op: SlotOp::Op(Op::Alu {
                op: AluOp::Add,
                rd: Reg::new(rd),
                a: Src::reg(Reg::new(a)),
                b: Src::imm(1),
            }),
            pred: Predicate::always(),
            home: PathCond::root(),
            exit_cond: None,
            node: 0,
            level: 0,
            exit_target: None,
            after: None,
            latency: 1,
            pinned: false,
            prob: 1.0,
        }
    }

    fn policy() -> Policy {
        Policy {
            linear: false,
            hoist: Hoist::Buffered,
            depth: 4,
            window_all: false,
            single_shadow: true,
            ordered_cond_sets: false,
        }
    }

    #[test]
    fn independent_ops_pack_into_one_word() {
        let mut ops = vec![alu(1, 10), alu(2, 11), alu(3, 12), alu(4, 13)];
        let dag = build_dag(&mut ops, &policy());
        let s = list_schedule(&ops, &dag, 4, &Resources::paper_base());
        assert_eq!(s.words.len(), 1);
        assert_eq!(s.words[0].slots.len(), 4);
    }

    #[test]
    fn dependent_chain_takes_one_cycle_each() {
        let mut ops = vec![alu(1, 10), alu(2, 1), alu(3, 2)];
        let dag = build_dag(&mut ops, &policy());
        let s = list_schedule(&ops, &dag, 4, &Resources::paper_base());
        assert_eq!(s.words.len(), 3);
    }

    #[test]
    fn issue_width_respected() {
        let mut ops: Vec<SchedOp> = (0..6).map(|i| alu(i + 1, 10 + i)).collect();
        let dag = build_dag(&mut ops, &policy());
        let s = list_schedule(&ops, &dag, 2, &Resources::paper_base());
        assert_eq!(s.words.len(), 3);
        for w in &s.words {
            assert!(w.slots.len() <= 2);
        }
    }

    #[test]
    fn critical_path_prioritised() {
        // Chain a→b→c plus three independent ops, width 2: the chain head
        // must be scheduled in cycle 0.
        let mut ops = vec![
            alu(1, 10),
            alu(2, 1),
            alu(3, 2),
            alu(4, 11),
            alu(5, 12),
            alu(6, 13),
        ];
        let dag = build_dag(&mut ops, &policy());
        let s = list_schedule(&ops, &dag, 2, &Resources::paper_base());
        assert_eq!(s.words.len(), 3);
        // Total work 6 ops in 3 words of width 2: full utilisation only
        // possible when the chain is prioritised.
        assert!(s.words.iter().all(|w| w.slots.len() == 2));
    }

    #[test]
    fn load_unit_limit() {
        let ld = |rd: usize| SchedOp {
            slot_op: SlotOp::Op(Op::Load {
                rd: Reg::new(rd),
                base: Src::imm(4),
                offset: 0,
                tag: Default::default(),
            }),
            latency: 2,
            ..alu(rd, 10)
        };
        let mut ops = vec![ld(1), ld(2), ld(3), ld(4)];
        let dag = build_dag(&mut ops, &policy());
        let s = list_schedule(&ops, &dag, 4, &Resources::paper_base());
        assert_eq!(s.words.len(), 2, "two load units -> two loads per word");
    }
}
