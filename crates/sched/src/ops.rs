//! Lowering a scope into schedulable operations.
//!
//! Two lowering *styles* exist, matching the two machine families the
//! paper evaluates:
//!
//! * **Linear** (global scheduling, squashing, trace scheduling, boosting):
//!   the scope is a superblock.  Branches stay as compare-and-branch
//!   instructions whose comparison is normalised so that *true* means
//!   "leave the trace" (the condition-set conversion of Section 4.2.1).
//!   In the renaming variant, a hoisted definition that is live on an
//!   earlier off-trace path is renamed into a free register and a copy is
//!   left at the home position; in the boosting variant, results are
//!   buffered under the conjunction of the not-taken conditions instead.
//! * **Predicated** (the region scheduling, trace predicating, and region
//!   predicating models): control transfers inside the scope are removed.
//!   Each branch becomes a condition-set instruction (predicate `alw`,
//!   Section 3.4) and each scope exit becomes a predicated jump; every
//!   operation carries its path condition as its predicate.

use crate::pathcond::PathCond;
use crate::scope::{Scope, ScopeEdge};
use psb_ir::{Liveness, RegSet};
use psb_isa::{BlockId, Op, Predicate, Reg, ScalarProgram, SlotOp, Src, Terminator, NUM_REGS};
use std::collections::HashMap;

/// How a scope is lowered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Style {
    /// Linear superblock with register renaming; `pred_unsafe` gives
    /// hoistable unsafe ops a squash-window predicate (squashing/trace
    /// models) instead of pinning them (global model).
    LinearRename {
        /// Predicate unsafe ops for pipeline squashing.
        pred_unsafe: bool,
    },
    /// Linear superblock with predicated buffering (boosting).
    LinearBoost,
    /// Fully predicated region/trace lowering.
    Predicated,
}

impl Style {
    /// Whether this style lowers branches to compare-and-branch (linear)
    /// rather than condition-set plus predicated jumps.
    pub fn is_linear(self) -> bool {
        !matches!(self, Style::Predicated)
    }
}

/// A schedulable operation with its scheduling metadata.
#[derive(Clone, PartialEq, Debug)]
pub struct SchedOp {
    /// The machine operation (jump/compare-and-branch targets are
    /// placeholders patched by the linker via `exit_target`).
    pub slot_op: SlotOp,
    /// The issue predicate.
    pub pred: Predicate,
    /// The path condition of the op's home node (polarities are CCR
    /// values: in linear lowering `false` = stayed on trace).
    pub home: PathCond,
    /// For control transfers: the path condition under which control
    /// actually leaves here.
    pub exit_cond: Option<PathCond>,
    /// Home node index within the scope.
    pub node: usize,
    /// Number of in-scope branches strictly before this op in program
    /// order (the linear models' hoist distance).
    pub level: usize,
    /// CFG block this control transfer exits to (patched by the linker).
    pub exit_target: Option<BlockId>,
    /// This op must issue at least one cycle after `ops[after]` (the
    /// compare-and-branch / jump pair of an unconditioned leaf branch).
    pub after: Option<usize>,
    /// Result latency in cycles.
    pub latency: u64,
    /// The op may not be hoisted above any preceding branch (copies,
    /// stores and unrenamed live definitions in the renaming style).
    pub pinned: bool,
    /// Profile probability of the op's home path (scheduling priority:
    /// common-path operations win slot ties over rare-path ones).
    pub prob: f64,
}

impl SchedOp {
    /// Whether this is a control transfer (jump, compare-and-branch,
    /// halt).
    pub fn is_control(&self) -> bool {
        matches!(
            self.slot_op,
            SlotOp::Jump { .. } | SlotOp::CmpBr { .. } | SlotOp::Halt
        )
    }

    /// Whether this is a condition-set instruction.
    pub fn is_setcond(&self) -> bool {
        matches!(self.slot_op, SlotOp::Op(Op::SetCond { .. }))
    }

    /// Whether this op writes a condition register (condition-set or
    /// condition-writing compare-and-branch).
    pub fn sets_cond(&self) -> Option<psb_isa::CondReg> {
        match self.slot_op {
            SlotOp::Op(Op::SetCond { c, .. }) => Some(c),
            SlotOp::CmpBr { c, .. } => c,
            _ => None,
        }
    }

    /// Whether this op may raise a memory exception.
    pub fn is_unsafe(&self) -> bool {
        matches!(self.slot_op, SlotOp::Op(op) if op.is_unsafe())
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        matches!(self.slot_op, SlotOp::Op(Op::Store { .. }))
    }

    fn new(slot_op: SlotOp, pred: Predicate, home: PathCond, node: usize, level: usize) -> SchedOp {
        let latency = match slot_op {
            SlotOp::Op(Op::Load { .. }) => 2,
            _ => 1,
        };
        SchedOp {
            slot_op,
            pred,
            home,
            exit_cond: None,
            node,
            level,
            exit_target: None,
            after: None,
            latency,
            pinned: false,
            prob: 1.0,
        }
    }
}

/// Lowers `scope` into schedulable ops in program (growth) order.
///
/// `lv` is the liveness of the *original* program and `used_regs` the set
/// of registers appearing anywhere in it — the renaming pool is its
/// complement.
pub fn build_ops(
    prog: &ScalarProgram,
    scope: &Scope,
    style: Style,
    lv: &Liveness,
    used_regs: RegSet,
) -> Vec<SchedOp> {
    let mut ops = match style {
        Style::Predicated => build_predicated(prog, scope),
        Style::LinearRename { pred_unsafe } => {
            build_linear(prog, scope, lv, used_regs, Some(pred_unsafe))
        }
        Style::LinearBoost => build_linear(prog, scope, lv, used_regs, None),
    };
    for op in &mut ops {
        op.prob = scope.nodes[op.node].path_prob;
    }
    ops
}

fn build_predicated(prog: &ScalarProgram, scope: &Scope) -> Vec<SchedOp> {
    let mut ops = Vec::new();
    for (idx, node) in scope.nodes.iter().enumerate() {
        let home = node.path.clone();
        let level = home.depth();
        let pred = home.to_predicate(&scope.cond_of_branch);
        for &op in &prog.block(node.orig).instrs {
            ops.push(SchedOp::new(SlotOp::Op(op), pred, home.clone(), idx, level));
        }
        match prog.block(node.orig).term {
            Terminator::Halt => {
                let mut h = SchedOp::new(SlotOp::Halt, pred, home.clone(), idx, level);
                h.exit_cond = Some(home.clone());
                ops.push(h);
            }
            Terminator::Jump(t) => match node.edges[0] {
                ScopeEdge::Internal(_) => {}
                ScopeEdge::Exit(_) => {
                    let mut j =
                        SchedOp::new(SlotOp::Jump { target: 0 }, pred, home.clone(), idx, level);
                    j.exit_cond = Some(home.clone());
                    j.exit_target = Some(t);
                    ops.push(j);
                }
            },
            Terminator::Branch {
                cmp,
                a,
                b,
                taken,
                not_taken,
            } => {
                if let Some(c) = node.cond {
                    ops.push(SchedOp::new(
                        SlotOp::Op(Op::SetCond { c, cmp, a, b }),
                        Predicate::always(),
                        home.clone(),
                        idx,
                        level,
                    ));
                    let sides = [(taken, true, 0usize), (not_taken, false, 1usize)];
                    for &(target, polarity, e) in &sides {
                        if let ScopeEdge::Exit(_) = node.edges[e] {
                            let exit_path = home.extend(idx, polarity);
                            let jpred = exit_path.to_predicate(&scope.cond_of_branch);
                            let mut j = SchedOp::new(
                                SlotOp::Jump { target: 0 },
                                jpred,
                                home.clone(),
                                idx,
                                level,
                            );
                            j.exit_cond = Some(exit_path);
                            j.exit_target = Some(target);
                            ops.push(j);
                        }
                    }
                } else {
                    // Condition budget exhausted: a predicated
                    // compare-and-branch leaf plus a paired jump.
                    let mut cb = SchedOp::new(
                        SlotOp::CmpBr {
                            c: None,
                            cmp,
                            a,
                            b,
                            target: 0,
                        },
                        pred,
                        home.clone(),
                        idx,
                        level,
                    );
                    cb.exit_cond = Some(home.extend(idx, true));
                    cb.exit_target = Some(taken);
                    let cb_idx = ops.len();
                    ops.push(cb);
                    let mut j =
                        SchedOp::new(SlotOp::Jump { target: 0 }, pred, home.clone(), idx, level);
                    j.exit_cond = Some(home.extend(idx, false));
                    j.exit_target = Some(not_taken);
                    j.after = Some(cb_idx);
                    ops.push(j);
                }
            }
        }
    }
    ops
}

/// Linear lowering.  `rename` is `Some(pred_unsafe)` for the renaming
/// styles and `None` for boosting.
fn build_linear(
    prog: &ScalarProgram,
    scope: &Scope,
    lv: &Liveness,
    used_regs: RegSet,
    rename: Option<bool>,
) -> Vec<SchedOp> {
    // Path order: node 0, 1, ... (a trace is a path, so growth order is
    // path order).
    let n = scope.nodes.len();

    // Home path conditions with CCR-value polarity: on-trace = false.
    let mut homes: Vec<PathCond> = Vec::with_capacity(n);
    let mut levels: Vec<usize> = Vec::with_capacity(n);
    for node in scope.nodes.iter() {
        match node.parent {
            None => {
                homes.push(PathCond::root());
                levels.push(0);
            }
            Some(p) => {
                let parent_branches = matches!(
                    prog.block(scope.nodes[p].orig).term,
                    Terminator::Branch { .. }
                );
                if parent_branches {
                    homes.push(homes[p].extend(p, false));
                    levels.push(levels[p] + 1);
                } else {
                    homes.push(homes[p].clone());
                    levels.push(levels[p]);
                }
            }
        }
    }

    // Off-trace liveness: for renaming decisions, the union of live-in
    // sets of branch-exit targets at nodes < i; for copy decisions, the
    // union over nodes >= i of every exit target's live-in (plus the
    // program outputs under a halt).
    let exit_live_of = |idx: usize| -> RegSet {
        let node = &scope.nodes[idx];
        let mut s = RegSet::EMPTY;
        match prog.block(node.orig).term {
            Terminator::Halt => s.extend(prog.live_out.iter().copied()),
            _ => {
                for e in &node.edges {
                    if let ScopeEdge::Exit(t) = e {
                        s = s.union(lv.live_in(*t));
                    }
                }
            }
        }
        s
    };
    let mut off_live_before = vec![RegSet::EMPTY; n + 1];
    for i in 0..n {
        off_live_before[i + 1] = off_live_before[i].union(exit_live_of(i));
    }
    let mut future_live = vec![RegSet::EMPTY; n + 1];
    for i in (0..n).rev() {
        future_live[i] = future_live[i + 1].union(exit_live_of(i));
    }

    // Renaming pool: registers unused by the whole program.
    let mut pool: Vec<Reg> = (1..NUM_REGS)
        .map(Reg::new)
        .filter(|r| !used_regs.contains(*r))
        .rev()
        .collect();

    let mut ops: Vec<SchedOp> = Vec::new();
    let mut cur_name: HashMap<Reg, Reg> = HashMap::new();
    let map_src = |cur: &HashMap<Reg, Reg>, s: Src| -> Src {
        match s {
            Src::Reg { reg, shadow } => Src::Reg {
                reg: *cur.get(&reg).unwrap_or(&reg),
                shadow,
            },
            imm => imm,
        }
    };

    for (idx, node) in scope.nodes.iter().enumerate() {
        let home = homes[idx].clone();
        let level = levels[idx];
        // Boosting buffers results under the on-trace predicate; the
        // renaming styles issue everything `alw` except predicated unsafe
        // ops.
        let trace_pred = home.to_predicate(&scope.cond_of_branch);
        for &op in &prog.block(node.orig).instrs {
            let op = op.map_srcs(|s| map_src(&cur_name, s));
            match rename {
                None => {
                    // Boosting: predicate everything, rename nothing.
                    ops.push(SchedOp::new(
                        SlotOp::Op(op),
                        trace_pred,
                        home.clone(),
                        idx,
                        level,
                    ));
                }
                Some(pred_unsafe) => {
                    let mut emitted = op;
                    let mut pinned = false;
                    if let Some(r) = op.def_reg() {
                        let needs_rename = idx > 0 && off_live_before[idx].contains(r);
                        if needs_rename {
                            if let Some(fresh) = pool.pop() {
                                emitted = op.with_def(fresh);
                                cur_name.insert(r, fresh);
                                let pred = if pred_unsafe && emitted.is_unsafe() {
                                    trace_pred
                                } else {
                                    Predicate::always()
                                };
                                ops.push(SchedOp::new(
                                    SlotOp::Op(emitted),
                                    pred,
                                    home.clone(),
                                    idx,
                                    level,
                                ));
                                if future_live[idx].contains(r) {
                                    let mut cp = SchedOp::new(
                                        SlotOp::Op(Op::Copy {
                                            rd: r,
                                            src: Src::reg(fresh),
                                        }),
                                        Predicate::always(),
                                        home.clone(),
                                        idx,
                                        level,
                                    );
                                    cp.pinned = true;
                                    ops.push(cp);
                                }
                                continue;
                            }
                            // Pool exhausted: keep the definition in place.
                            pinned = true;
                        }
                        cur_name.remove(&r);
                    }
                    let is_store = emitted.is_mem_store();
                    let pred = if pred_unsafe && emitted.is_unsafe() && !pinned && !is_store {
                        trace_pred
                    } else {
                        Predicate::always()
                    };
                    let mut so = SchedOp::new(SlotOp::Op(emitted), pred, home.clone(), idx, level);
                    so.pinned = pinned || is_store;
                    ops.push(so);
                }
            }
        }
        match prog.block(node.orig).term {
            Terminator::Halt => {
                let mut h =
                    SchedOp::new(SlotOp::Halt, Predicate::always(), home.clone(), idx, level);
                h.exit_cond = Some(home.clone());
                ops.push(h);
            }
            Terminator::Jump(t) => match node.edges[0] {
                ScopeEdge::Internal(_) => {}
                ScopeEdge::Exit(_) => {
                    let mut j = SchedOp::new(
                        SlotOp::Jump { target: 0 },
                        Predicate::always(),
                        home.clone(),
                        idx,
                        level,
                    );
                    j.exit_cond = Some(home.clone());
                    j.exit_target = Some(t);
                    ops.push(j);
                }
            },
            Terminator::Branch {
                cmp,
                a,
                b,
                taken,
                not_taken,
            } => {
                let a = map_src(&cur_name, a);
                let b = map_src(&cur_name, b);
                let grown: Vec<bool> = node
                    .edges
                    .iter()
                    .map(|e| matches!(e, ScopeEdge::Internal(_)))
                    .collect();
                match (grown[0], grown[1]) {
                    (true, false) => {
                        // Trace continues on the taken side: exit when the
                        // comparison fails (negated condition-set,
                        // Section 4.2.1).
                        let mut cb = SchedOp::new(
                            SlotOp::CmpBr {
                                c: node.cond,
                                cmp: cmp.negate(),
                                a,
                                b,
                                target: 0,
                            },
                            Predicate::always(),
                            home.clone(),
                            idx,
                            level,
                        );
                        cb.exit_cond = Some(home.extend(idx, true));
                        cb.exit_target = Some(not_taken);
                        ops.push(cb);
                    }
                    (false, true) => {
                        let mut cb = SchedOp::new(
                            SlotOp::CmpBr {
                                c: node.cond,
                                cmp,
                                a,
                                b,
                                target: 0,
                            },
                            Predicate::always(),
                            home.clone(),
                            idx,
                            level,
                        );
                        cb.exit_cond = Some(home.extend(idx, true));
                        cb.exit_target = Some(taken);
                        ops.push(cb);
                    }
                    (false, false) => {
                        // Leaf: compare-and-branch to the taken side, then
                        // an unconditional jump to the other.
                        let mut cb = SchedOp::new(
                            SlotOp::CmpBr {
                                c: node.cond,
                                cmp,
                                a,
                                b,
                                target: 0,
                            },
                            Predicate::always(),
                            home.clone(),
                            idx,
                            level,
                        );
                        cb.exit_cond = Some(home.extend(idx, true));
                        cb.exit_target = Some(taken);
                        let cb_idx = ops.len();
                        ops.push(cb);
                        let mut j = SchedOp::new(
                            SlotOp::Jump { target: 0 },
                            Predicate::always(),
                            home.clone(),
                            idx,
                            level,
                        );
                        j.exit_cond = Some(home.extend(idx, false));
                        j.exit_target = Some(not_taken);
                        j.after = Some(cb_idx);
                        ops.push(j);
                    }
                    (true, true) => {
                        unreachable!("linear scopes grow at most one branch side")
                    }
                }
            }
        }
    }
    ops
}

/// Helper: whether an op is a store (used by the builder for pinning).
trait OpExt {
    fn is_mem_store(&self) -> bool;
}

impl OpExt for Op {
    fn is_mem_store(&self) -> bool {
        matches!(self, Op::Store { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::{form_scopes, ScopeParams};
    use psb_ir::Cfg;
    use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder};
    use psb_scalar::{ScalarConfig, ScalarMachine};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    /// head: r3 = load(r1); branch r3 < 5 → hot | cold
    /// hot:  r2 = r2 + r3; jump back-ish → exit (keep simple: jump exit)
    /// cold: r2 = 0; jump exit.
    fn small_prog() -> ScalarProgram {
        let mut pb = ProgramBuilder::new("small");
        pb.memory_size(64);
        pb.mem_cell(8, 3);
        pb.init_reg(r(1), 8);
        let head = pb.new_block();
        let hot = pb.new_block();
        let cold = pb.new_block();
        let exit = pb.new_block();
        pb.block_mut(head)
            .load(r(3), r(1), 0, MemTag(1))
            .branch(CmpOp::Lt, r(3), 5, hot, cold);
        pb.block_mut(hot)
            .alu(AluOp::Add, r(2), r(2), r(3))
            .jump(exit);
        pb.block_mut(cold).alu(AluOp::Add, r(2), r(2), 7).jump(exit);
        pb.block_mut(exit).halt();
        pb.set_entry(head);
        pb.live_out([r(2)]);
        pb.finish().unwrap()
    }

    fn used_regs(p: &ScalarProgram) -> RegSet {
        let mut s = RegSet::EMPTY;
        for b in &p.blocks {
            for op in &b.instrs {
                s.extend(op.used_regs());
                s.extend(op.def_reg());
            }
            s.extend(b.term.used_regs());
        }
        s.extend(p.live_out.iter().copied());
        s.extend(p.init_regs.iter().map(|&(r, _)| r));
        s
    }

    fn setup(params: ScopeParams) -> (ScalarProgram, Scope, Liveness, RegSet) {
        let p = small_prog();
        let profile = ScalarMachine::new(&p, ScalarConfig::default())
            .run()
            .unwrap()
            .edge_profile;
        let scopes = form_scopes(&p, &profile, &params);
        let cfg = Cfg::new(&p);
        let lv = Liveness::new(&p, &cfg);
        let u = used_regs(&p);
        (p.clone(), scopes[0].clone(), lv, u)
    }

    #[test]
    fn predicated_lowering_emits_setcond_and_exit_jumps() {
        let (p, scope, lv, u) = setup(ScopeParams::region(8, 4));
        let ops = build_ops(&p, &scope, Style::Predicated, &lv, u);
        assert!(ops.iter().any(|o| o.is_setcond()));
        // The profiled (hot) path is grown through to the halting exit
        // block; the never-taken cold side leaves the region through a
        // predicated exit jump.
        let halts: Vec<_> = ops
            .iter()
            .filter(|o| matches!(o.slot_op, SlotOp::Halt))
            .collect();
        assert_eq!(halts.len(), 1);
        assert_eq!(halts[0].pred.to_string(), "c0");
        let jumps: Vec<_> = ops
            .iter()
            .filter(|o| matches!(o.slot_op, SlotOp::Jump { .. }))
            .collect();
        assert_eq!(jumps.len(), 1);
        assert_eq!(jumps[0].pred.to_string(), "!c0");
        assert!(jumps[0].exit_target.is_some());
        assert!(jumps[0].exit_cond.is_some());
        // Ops of the hot block carry the c0 predicate.
        let hot_add = ops
            .iter()
            .find(|o| matches!(o.slot_op, SlotOp::Op(Op::Alu { op: AluOp::Add, .. })))
            .unwrap();
        assert_eq!(hot_add.pred.depth(), 1);
    }

    #[test]
    fn linear_lowering_normalises_exit_condition() {
        let (p, scope, lv, u) = setup(ScopeParams::trace(8, 4));
        let ops = build_ops(
            &p,
            &scope,
            Style::LinearRename { pred_unsafe: true },
            &lv,
            u,
        );
        // The trace follows the likelier side; the compare-and-branch must
        // exit on true.
        let cb = ops
            .iter()
            .find(|o| matches!(o.slot_op, SlotOp::CmpBr { .. }))
            .unwrap();
        assert!(cb.exit_target.is_some());
        if let SlotOp::CmpBr { c, .. } = cb.slot_op {
            assert!(c.is_some(), "trace branches hold a condition register");
        }
    }

    #[test]
    fn rename_inserts_copy_for_live_defs() {
        let (p, scope, lv, u) = setup(ScopeParams::trace(8, 4));
        let ops = build_ops(
            &p,
            &scope,
            Style::LinearRename { pred_unsafe: true },
            &lv,
            u,
        );
        // r2 is live at the off-trace exit (cold needs nothing... r2 is
        // live-out of the program through `exit`), so the hot-side def of
        // r2 must be renamed with a pinned copy left behind.
        let copy = ops
            .iter()
            .find(|o| matches!(o.slot_op, SlotOp::Op(Op::Copy { rd, .. }) if rd == r(2)));
        assert!(copy.is_some(), "expected a pinned copy back into r2");
        assert!(copy.unwrap().pinned);
        // The renamed def writes a pool register (one unused by the
        // program).
        let def = ops
            .iter()
            .find_map(|o| match o.slot_op {
                SlotOp::Op(op @ Op::Alu { .. }) => op.def_reg(),
                _ => None,
            })
            .unwrap();
        assert!(!u.contains(def), "definition renamed into a free register");
    }

    #[test]
    fn boost_predicates_instead_of_renaming() {
        let (p, scope, lv, u) = setup(ScopeParams::trace(8, 4));
        let ops = build_ops(&p, &scope, Style::LinearBoost, &lv, u);
        assert!(!ops
            .iter()
            .any(|o| matches!(o.slot_op, SlotOp::Op(Op::Copy { .. }))));
        // Ops past the branch carry the not-taken predicate (!c0).
        let boosted = ops
            .iter()
            .find(|o| o.level > 0 && !o.is_control())
            .expect("an op past the branch");
        assert_eq!(boosted.pred.to_string(), "!c0");
    }

    #[test]
    fn levels_count_preceding_branches() {
        let (p, scope, lv, u) = setup(ScopeParams::trace(8, 4));
        let ops = build_ops(&p, &scope, Style::LinearBoost, &lv, u);
        let cb_pos = ops
            .iter()
            .position(|o| matches!(o.slot_op, SlotOp::CmpBr { .. }))
            .unwrap();
        for (i, o) in ops.iter().enumerate() {
            if i < cb_pos {
                assert_eq!(o.level, 0);
            }
            if i > cb_pos && !o.is_control() {
                assert_eq!(o.level, 1);
            }
        }
    }
}
