//! Path conditions: the control condition under which a scope block
//! executes, expressed as an ANDed set of branch outcomes.
//!
//! Because scope formation duplicates every join block (the paper's
//! fallback for keeping predicates in the ANDed form, Section 3.3), every
//! block of a scope is reached by exactly one path from the header, and
//! its condition is a pure conjunction of `(branch, polarity)` terms — one
//! per branch node on that path.  Terms are keyed by the *scope node index*
//! of the branch (not the CFG block), since duplication can place the same
//! CFG block at several tree positions.

use psb_isa::{CondReg, Predicate};
use std::collections::BTreeMap;

/// An ANDed set of branch outcomes along the unique path from a scope
/// header to a node.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PathCond {
    terms: BTreeMap<usize, bool>,
}

impl PathCond {
    /// The empty condition (the scope header's path).
    pub fn root() -> PathCond {
        PathCond::default()
    }

    /// Extends the path with one more branch outcome.
    ///
    /// # Panics
    ///
    /// Panics if the branch already appears (a path passes each tree node
    /// once).
    #[must_use]
    pub fn extend(&self, branch_node: usize, taken: bool) -> PathCond {
        let mut t = self.terms.clone();
        let prev = t.insert(branch_node, taken);
        assert!(
            prev.is_none(),
            "branch node {branch_node} already on the path"
        );
        PathCond { terms: t }
    }

    /// Number of branches on the path (the speculation depth of
    /// instructions at this node).
    pub fn depth(&self) -> usize {
        self.terms.len()
    }

    /// Whether this is the header's (empty) condition.
    pub fn is_root(&self) -> bool {
        self.terms.is_empty()
    }

    /// The `(branch_node, polarity)` terms in path (tree) order — branch
    /// node indices increase from root to leaf because scope formation
    /// numbers nodes in growth order.
    pub fn terms(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        self.terms.iter().map(|(&k, &v)| (k, v))
    }

    /// Whether `self` implies `other` (its terms are a superset).
    pub fn implies(&self, other: &PathCond) -> bool {
        other
            .terms
            .iter()
            .all(|(k, v)| self.terms.get(k) == Some(v))
    }

    /// Whether the two conditions cannot hold together (some branch
    /// appears with opposite polarity).
    pub fn disjoint(&self, other: &PathCond) -> bool {
        self.terms
            .iter()
            .any(|(k, v)| matches!(other.terms.get(k), Some(o) if o != v))
    }

    /// The disjunction of two path conditions, if it is still expressible
    /// in the ANDed form (Section 3.2's predicate limitation).
    ///
    /// This is the *equivalent block* rule of Section 3.3: at a join block
    /// the two incoming conditions `P & c` and `P & !c` merge back to `P`;
    /// a condition that implies the other is absorbed by it.  Returns
    /// `None` when the disjunction is not ANDed-representable, in which
    /// case the join must be duplicated.
    pub fn merge(&self, other: &PathCond) -> Option<PathCond> {
        if self.implies(other) {
            return Some(other.clone());
        }
        if other.implies(self) {
            return Some(self.clone());
        }
        if self.terms.len() == other.terms.len() && self.terms.keys().eq(other.terms.keys()) {
            let diffs: Vec<usize> = self
                .terms
                .iter()
                .filter(|(k, v)| other.terms[k] != **v)
                .map(|(&k, _)| k)
                .collect();
            if diffs.len() == 1 {
                let mut t = self.terms.clone();
                t.remove(&diffs[0]);
                return Some(PathCond { terms: t });
            }
        }
        None
    }

    /// Encodes the condition as a machine [`Predicate`] using the scope's
    /// branch-to-CCR assignment.
    ///
    /// # Panics
    ///
    /// Panics if a branch on the path has no assigned condition register —
    /// scope formation assigns one to every in-scope branch.
    pub fn to_predicate(&self, cond_of_branch: &BTreeMap<usize, CondReg>) -> Predicate {
        let mut p = Predicate::always();
        for (node, taken) in self.terms() {
            let c = *cond_of_branch
                .get(&node)
                .unwrap_or_else(|| panic!("branch node {node} has no condition register"));
            p = if taken { p.and_pos(c) } else { p.and_neg(c) };
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_and_depth() {
        let p = PathCond::root();
        assert!(p.is_root());
        let p1 = p.extend(0, true);
        let p2 = p1.extend(3, false);
        assert_eq!(p2.depth(), 2);
        assert_eq!(p2.terms().collect::<Vec<_>>(), vec![(0, true), (3, false)]);
    }

    #[test]
    #[should_panic(expected = "already on the path")]
    fn double_extend_panics() {
        let _ = PathCond::root().extend(0, true).extend(0, false);
    }

    #[test]
    fn implication_and_disjointness() {
        let shallow = PathCond::root().extend(0, true);
        let deep = shallow.extend(1, false);
        let other = PathCond::root().extend(0, false);
        assert!(deep.implies(&shallow));
        assert!(!shallow.implies(&deep));
        assert!(deep.implies(&deep));
        assert!(shallow.disjoint(&other));
        assert!(deep.disjoint(&other));
        assert!(!deep.disjoint(&shallow));
    }

    #[test]
    fn merge_diamond_join() {
        let p = PathCond::root().extend(0, true);
        let a = p.extend(1, true);
        let b = p.extend(1, false);
        assert_eq!(a.merge(&b), Some(p.clone()));
        assert_eq!(b.merge(&a), Some(p));
    }

    #[test]
    fn merge_absorption() {
        let p = PathCond::root().extend(0, true);
        let deeper = p.extend(1, false);
        assert_eq!(p.merge(&deeper), Some(p.clone()));
        assert_eq!(deeper.merge(&p), Some(p.clone()));
        assert_eq!(p.merge(&p), Some(p));
    }

    #[test]
    fn merge_unrepresentable() {
        // c0&c1 | !c0&!c1 is not an ANDed predicate.
        let a = PathCond::root().extend(0, true).extend(1, true);
        let b = PathCond::root().extend(0, false).extend(1, false);
        assert_eq!(a.merge(&b), None);
        // Different key sets without implication.
        let c = PathCond::root().extend(0, true).extend(2, true);
        let d = PathCond::root().extend(0, false).extend(1, true);
        assert_eq!(c.merge(&d), None);
    }

    #[test]
    fn predicate_encoding() {
        let mut map = BTreeMap::new();
        map.insert(0usize, CondReg::new(0));
        map.insert(2usize, CondReg::new(1));
        let p = PathCond::root().extend(0, true).extend(2, false);
        assert_eq!(p.to_predicate(&map).to_string(), "c0&!c1");
        assert!(PathCond::root().to_predicate(&map).is_always());
    }
}
