//! Scheduling-scope formation: traces (for the linear models) and regions
//! (for the predicated models).
//!
//! A scope is grown from a header block by following CFG edges that the
//! training profile says are worth including.  A join block whose incoming
//! path conditions disjoin back into the ANDed predicate form is *merged*
//! (the equivalent-block rule of Section 3.3, e.g. a diamond join); any
//! other join is *duplicated* (the paper's fallback), so every block
//! instance has a single conjunctive path condition and the header
//! dominates every node.  Trace formation is the degenerate case that
//! grows at most one successor per branch, yielding a superblock.
//!
//! Every edge leaving a scope targets an original CFG block, which becomes
//! the header of its own scope; the linker resolves these exits to region
//! entry addresses.

use crate::pathcond::PathCond;
use psb_isa::{BlockId, CondReg, ScalarProgram, Terminator};
use psb_scalar::EdgeProfile;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Where one successor edge of a scope node leads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScopeEdge {
    /// The successor was grown into this scope, at the given node index.
    Internal(usize),
    /// The successor is outside the scope: control exits to this original
    /// CFG block (always the header of some scope).
    Exit(BlockId),
}

/// One block instance inside a scope.
#[derive(Clone, PartialEq, Debug)]
pub struct ScopeNode {
    /// The original CFG block this node instantiates.
    pub orig: BlockId,
    /// Parent node index (`None` for the header).
    pub parent: Option<usize>,
    /// Path condition from the header to this node.
    pub path: PathCond,
    /// Estimated probability of reaching this node from the header.
    pub path_prob: f64,
    /// The CCR entry assigned to this node's branch, if it has a branch
    /// terminator and the condition budget allowed one.
    pub cond: Option<CondReg>,
    /// One entry per terminator successor (taken edge first).
    pub edges: Vec<ScopeEdge>,
}

/// A scheduling scope: a tree of block instances.
#[derive(Clone, PartialEq, Debug)]
pub struct Scope {
    /// The header block (the scope's unique entry).
    pub head: BlockId,
    /// Nodes in growth (BFS) order; node 0 is the header instance.
    pub nodes: Vec<ScopeNode>,
    /// CCR assignment for in-scope branches, keyed by node index.
    pub cond_of_branch: BTreeMap<usize, CondReg>,
}

impl Scope {
    /// All exit targets of the scope (with duplicates).
    pub fn exit_targets(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.nodes.iter().flat_map(|n| {
            n.edges.iter().filter_map(|e| match e {
                ScopeEdge::Exit(t) => Some(*t),
                ScopeEdge::Internal(_) => None,
            })
        })
    }

    /// Number of branch nodes holding a condition register.
    pub fn num_conds(&self) -> usize {
        self.cond_of_branch.len()
    }

    /// Whether `anc` is an ancestor of `node` (reflexive).
    pub fn is_ancestor(&self, anc: usize, node: usize) -> bool {
        let mut cur = Some(node);
        while let Some(i) = cur {
            if i == anc {
                return true;
            }
            cur = self.nodes[i].parent;
        }
        false
    }
}

/// Scope-growth parameters; each scheduling model provides its own.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ScopeParams {
    /// Grow both branch successors (region) or at most the likelier one
    /// (trace).
    pub follow_both: bool,
    /// Maximum nodes per scope.
    pub max_blocks: usize,
    /// Maximum in-scope branches (bounded by the machine's CCR size `K`).
    pub max_branches: usize,
    /// Minimum profile probability of an edge to grow along it.
    pub edge_threshold: f64,
    /// Minimum cumulative path probability to keep growing.
    pub path_threshold: f64,
}

impl ScopeParams {
    /// Trace parameters: follow the predicted direction only.
    pub fn trace(max_blocks: usize, max_branches: usize) -> ScopeParams {
        ScopeParams {
            follow_both: false,
            max_blocks,
            max_branches,
            edge_threshold: 0.5,
            path_threshold: 0.1,
        }
    }

    /// Region parameters: follow every sufficiently likely direction.
    pub fn region(max_blocks: usize, max_branches: usize) -> ScopeParams {
        ScopeParams {
            follow_both: true,
            max_blocks,
            max_branches,
            edge_threshold: 0.08,
            path_threshold: 0.02,
        }
    }
}

/// Forms the scopes covering `prog`, headed by the entry block and by
/// every block targeted from outside a scope.  The first scope is headed
/// by the program entry.
pub fn form_scopes(
    prog: &ScalarProgram,
    profile: &EdgeProfile,
    params: &ScopeParams,
) -> Vec<Scope> {
    let mut queue = VecDeque::new();
    let mut seen: HashSet<BlockId> = HashSet::new();
    queue.push_back(prog.entry);
    seen.insert(prog.entry);
    let mut scopes = Vec::new();
    while let Some(head) = queue.pop_front() {
        let scope = grow_scope(prog, profile, params, head);
        for t in scope.exit_targets() {
            if seen.insert(t) {
                queue.push_back(t);
            }
        }
        scopes.push(scope);
    }
    scopes
}

fn grow_scope(
    prog: &ScalarProgram,
    profile: &EdgeProfile,
    params: &ScopeParams,
    head: BlockId,
) -> Scope {
    let mut scope = Scope {
        head,
        nodes: vec![ScopeNode {
            orig: head,
            parent: None,
            path: PathCond::root(),
            path_prob: 1.0,
            cond: None,
            edges: Vec::new(),
        }],
        cond_of_branch: BTreeMap::new(),
    };
    let mut work = VecDeque::new();
    work.push_back(0usize);
    // Unexpanded nodes, by block: join-merge candidates (regions only).
    let mut pending: std::collections::HashMap<BlockId, Vec<usize>> =
        std::collections::HashMap::new();
    while let Some(idx) = work.pop_front() {
        let orig = scope.nodes[idx].orig;
        if let Some(v) = pending.get_mut(&orig) {
            v.retain(|&x| x != idx);
        }
        let path = scope.nodes[idx].path.clone();
        let prob = scope.nodes[idx].path_prob;
        match prog.block(orig).term {
            Terminator::Halt => {}
            Terminator::Jump(t) => {
                // Prefer duplicating the join while the condition and
                // block budgets are comfortable (footnote 3: duplication
                // avoids commit dependences); merge when they are not.
                let prefer_dup = prefers_duplication(&scope, params);
                let mut edge = None;
                if !prefer_dup {
                    if let Some(m) = try_merge(&mut scope, &pending, params, t, &path, prob) {
                        edge = Some(ScopeEdge::Internal(m));
                    }
                }
                if edge.is_none()
                    && (!params.follow_both || growth_beneficial(prog, t, prob))
                    && can_grow(&scope, params, idx, t, prob)
                {
                    let new = add_node(&mut scope, idx, t, path.clone(), prob);
                    work.push_back(new);
                    pending.entry(t).or_default().push(new);
                    edge = Some(ScopeEdge::Internal(new));
                }
                if edge.is_none() {
                    if let Some(m) = try_merge(&mut scope, &pending, params, t, &path, prob) {
                        edge = Some(ScopeEdge::Internal(m));
                    }
                }
                scope.nodes[idx]
                    .edges
                    .push(edge.unwrap_or(ScopeEdge::Exit(t)));
            }
            Terminator::Branch {
                taken, not_taken, ..
            } => {
                let have_cond = scope.cond_of_branch.len() < params.max_branches;
                if have_cond {
                    let c = CondReg::new(scope.cond_of_branch.len());
                    scope.cond_of_branch.insert(idx, c);
                    scope.nodes[idx].cond = Some(c);
                    let p_taken = profile.taken_fraction(orig);
                    let sides = [(taken, true, p_taken), (not_taken, false, 1.0 - p_taken)];
                    // Trace mode grows at most the likelier side.
                    let best = if p_taken >= 0.5 { 0 } else { 1 };
                    let mut edges = Vec::new();
                    for (i, &(succ, polarity, p_edge)) in sides.iter().enumerate() {
                        let allowed = params.follow_both || i == best;
                        if !allowed {
                            edges.push(ScopeEdge::Exit(succ));
                            continue;
                        }
                        let new_path = path.extend(idx, polarity);
                        let prefer_dup = prefers_duplication(&scope, params);
                        if !prefer_dup {
                            if let Some(m) = try_merge(
                                &mut scope,
                                &pending,
                                params,
                                succ,
                                &new_path,
                                prob * p_edge,
                            ) {
                                edges.push(ScopeEdge::Internal(m));
                                continue;
                            }
                        }
                        let grow = p_edge >= params.edge_threshold
                            && prob * p_edge >= params.path_threshold
                            && (!params.follow_both
                                || growth_beneficial(prog, succ, prob * p_edge))
                            && can_grow(&scope, params, idx, succ, prob * p_edge);
                        if !grow {
                            if let Some(m) = try_merge(
                                &mut scope,
                                &pending,
                                params,
                                succ,
                                &new_path,
                                prob * p_edge,
                            ) {
                                edges.push(ScopeEdge::Internal(m));
                                continue;
                            }
                        }
                        if grow {
                            let new =
                                add_node_with_path(&mut scope, idx, succ, new_path, prob * p_edge);
                            work.push_back(new);
                            pending.entry(succ).or_default().push(new);
                            edges.push(ScopeEdge::Internal(new));
                        } else {
                            edges.push(ScopeEdge::Exit(succ));
                        }
                    }
                    scope.nodes[idx].edges = edges;
                } else {
                    // Condition budget exhausted: the branch stays a
                    // compare-and-branch leaf; both sides exit.
                    scope.nodes[idx].edges =
                        vec![ScopeEdge::Exit(taken), ScopeEdge::Exit(not_taken)];
                }
            }
        }
    }
    scope
}

/// Expected-benefit test for growing `succ` on a path of probability
/// `prob`: including the block saves a region restart when the path is
/// taken but wastes issue slots on squashed operations when it is not
/// (the paper's region-growth heuristic trades exactly this off).
fn growth_beneficial(prog: &ScalarProgram, succ: BlockId, prob: f64) -> bool {
    const RESTART_COST: f64 = 4.0; // approximate region re-entry cycles
    const WIDTH: f64 = 4.0; // slots wasted ~ ops / width
    let b = prog.block(succ);
    let ops = b.instrs.len() as f64 + 1.0;
    prob * RESTART_COST >= (1.0 - prob) * (ops / WIDTH) * 0.8
}

/// Whether the scope still has room to duplicate joins rather than merge
/// them: duplication spends conditions and blocks but eliminates commit
/// dependences (Section 4.2.2 / footnote 3).
fn prefers_duplication(scope: &Scope, params: &ScopeParams) -> bool {
    scope.cond_of_branch.len() < params.max_branches && scope.nodes.len() + 2 < params.max_blocks
}

/// Join merging (the paper's *equivalent block* rule): if an unexpanded
/// node for `succ` exists whose path condition disjoins with `new_path`
/// into the ANDed form, reuse it instead of duplicating.
fn try_merge(
    scope: &mut Scope,
    pending: &std::collections::HashMap<BlockId, Vec<usize>>,
    params: &ScopeParams,
    succ: BlockId,
    new_path: &PathCond,
    prob: f64,
) -> Option<usize> {
    if !params.follow_both {
        return None;
    }
    for &cand in pending.get(&succ)?.iter() {
        if let Some(merged) = scope.nodes[cand].path.merge(new_path) {
            scope.nodes[cand].path = merged;
            scope.nodes[cand].path_prob += prob;
            return Some(cand);
        }
    }
    None
}

fn can_grow(scope: &Scope, params: &ScopeParams, from: usize, succ: BlockId, prob: f64) -> bool {
    if scope.nodes.len() >= params.max_blocks || prob < params.path_threshold {
        return false;
    }
    // Never grow into an ancestor: regions are acyclic; a back edge
    // becomes an exit jump to the scope's own entry.
    let mut cur = Some(from);
    while let Some(i) = cur {
        if scope.nodes[i].orig == succ {
            return false;
        }
        cur = scope.nodes[i].parent;
    }
    true
}

fn add_node(scope: &mut Scope, parent: usize, orig: BlockId, path: PathCond, prob: f64) -> usize {
    add_node_with_path(scope, parent, orig, path, prob)
}

fn add_node_with_path(
    scope: &mut Scope,
    parent: usize,
    orig: BlockId,
    path: PathCond,
    prob: f64,
) -> usize {
    scope.nodes.push(ScopeNode {
        orig,
        parent: Some(parent),
        path,
        path_prob: prob,
        cond: None,
        edges: Vec::new(),
    });
    scope.nodes.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{AluOp, CmpOp, ProgramBuilder, Reg, ScalarProgram};
    use psb_scalar::{ScalarConfig, ScalarMachine};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    /// A loop whose body is a diamond:
    /// head → {left(70%), right(30%)} → join → head (×N) | exit.
    fn diamond_loop() -> ScalarProgram {
        let mut pb = ProgramBuilder::new("diamond-loop");
        let head = pb.new_block();
        let left = pb.new_block();
        let right = pb.new_block();
        let join = pb.new_block();
        let exit = pb.new_block();
        // r1 = iteration counter, r2 = accumulator; branch on r1 % 10 < 7.
        pb.block_mut(head)
            .alu(AluOp::And, r(3), r(1), 7)
            .branch(CmpOp::Lt, r(3), 5, left, right);
        pb.block_mut(left).alu(AluOp::Add, r(2), r(2), 1).jump(join);
        pb.block_mut(right)
            .alu(AluOp::Add, r(2), r(2), 100)
            .jump(join);
        pb.block_mut(join)
            .alu(AluOp::Add, r(1), r(1), 1)
            .branch(CmpOp::Lt, r(1), 64, head, exit);
        pb.block_mut(exit).halt();
        pb.set_entry(head);
        pb.live_out([r(2)]);
        pb.finish().unwrap()
    }

    fn profile_of(p: &ScalarProgram) -> EdgeProfile {
        ScalarMachine::new(p, ScalarConfig::default())
            .run()
            .unwrap()
            .edge_profile
    }

    #[test]
    fn region_merges_diamond_join() {
        let p = diamond_loop();
        let profile = profile_of(&p);
        // A tight block budget forces the equivalent-block merge (with
        // room to spare the scheduler prefers duplication).
        let scopes = form_scopes(&p, &profile, &ScopeParams::region(5, 4));
        // One region covers the whole loop body; the join block merges
        // back to the header's path condition (the equivalent-block rule)
        // instead of being duplicated.
        let s0 = &scopes[0];
        assert_eq!(s0.head, p.entry);
        let joins: Vec<_> = s0.nodes.iter().filter(|n| n.orig == BlockId(3)).collect();
        assert_eq!(joins.len(), 1, "diamond join must merge, not duplicate");
        assert!(
            joins[0].path.is_root(),
            "merged join is control-equivalent to the header"
        );
        assert!((joins[0].path_prob - 1.0).abs() < 1e-9);
        // Back edges to the head become exits targeting the head.
        assert!(s0.exit_targets().any(|t| t == p.entry));
        // The arms keep their depth-1 conditions.
        let left = s0.nodes.iter().find(|n| n.orig == BlockId(1)).unwrap();
        assert_eq!(left.path.depth(), 1);
    }

    #[test]
    fn trace_follows_likely_path_only() {
        let p = diamond_loop();
        let profile = profile_of(&p);
        let scopes = form_scopes(&p, &profile, &ScopeParams::trace(16, 4));
        let s0 = &scopes[0];
        // Likely side (left, ~62%) grown; right side is an exit.
        assert!(
            s0.nodes.iter().any(|n| n.orig == BlockId(1)),
            "left in trace"
        );
        assert!(
            !s0.nodes.iter().any(|n| n.orig == BlockId(2)),
            "right not in trace"
        );
        assert!(s0.exit_targets().any(|t| t == BlockId(2)));
        // Every node has at most one internal successor (a path).
        for n in &s0.nodes {
            let internal = n
                .edges
                .iter()
                .filter(|e| matches!(e, ScopeEdge::Internal(_)))
                .count();
            assert!(internal <= 1);
        }
        // The right block gets its own scope.
        assert!(scopes.iter().any(|s| s.head == BlockId(2)));
    }

    #[test]
    fn branch_budget_respected() {
        let p = diamond_loop();
        let profile = profile_of(&p);
        let scopes = form_scopes(&p, &profile, &ScopeParams::region(32, 1));
        for s in &scopes {
            assert!(s.num_conds() <= 1);
        }
    }

    #[test]
    fn every_exit_target_becomes_a_head() {
        let p = diamond_loop();
        let profile = profile_of(&p);
        let scopes = form_scopes(&p, &profile, &ScopeParams::region(8, 2));
        let heads: HashSet<BlockId> = scopes.iter().map(|s| s.head).collect();
        for s in &scopes {
            for t in s.exit_targets() {
                assert!(heads.contains(&t), "exit target {t} must be a scope head");
            }
        }
    }

    #[test]
    fn no_node_is_its_own_ancestor_block() {
        let p = diamond_loop();
        let profile = profile_of(&p);
        for s in form_scopes(&p, &profile, &ScopeParams::region(32, 4)) {
            for (i, n) in s.nodes.iter().enumerate() {
                let mut cur = n.parent;
                while let Some(a) = cur {
                    assert_ne!(
                        s.nodes[a].orig, n.orig,
                        "node {i} repeats an ancestor block"
                    );
                    cur = s.nodes[a].parent;
                }
            }
        }
    }

    #[test]
    fn condition_registers_assigned_in_growth_order() {
        let p = diamond_loop();
        let profile = profile_of(&p);
        let scopes = form_scopes(&p, &profile, &ScopeParams::region(16, 4));
        let s0 = &scopes[0];
        let mut last = None;
        for (&node, &c) in &s0.cond_of_branch {
            if let Some((ln, lc)) = last {
                assert!(node > ln);
                let _: CondReg = lc;
            }
            last = Some((node, c));
        }
        assert_eq!(s0.cond_of_branch.values().next(), Some(&CondReg::new(0)));
    }
}
