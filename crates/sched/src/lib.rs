//! Instruction scheduling for the predicated-state-buffering architecture.
//!
//! Implements the seven speculative-execution models of the paper's
//! evaluation (Sections 4.1–4.2) over a common pipeline:
//!
//! 1. **Scope formation** ([`form_scopes`]): traces (superblocks) for the
//!    linear models and regions for the predicated models, grown from
//!    profile data with all join blocks duplicated;
//! 2. **Lowering** ([`build_ops`]): branches become compare-and-branch
//!    instructions (linear styles) or condition-sets plus predicated exit
//!    jumps (predicated styles), with register renaming or predicated
//!    buffering handling the side effects of upward code motion;
//! 3. **Dependence DAG** ([`Dag`]): data, memory and model-specific
//!    speculation constraints;
//! 4. **List scheduling** ([`list_schedule`]) under the target machine's
//!    issue width and function-unit counts, and linking of all scopes into
//!    one [`VliwProgram`](psb_isa::VliwProgram).
//!
//! The top-level entry point is [`schedule`] with a [`SchedConfig`]
//! naming a [`Model`]:
//!
//! | Model | Scope | Side effects | Unsafe ops |
//! |---|---|---|---|
//! | [`Model::Global`] | 4-block trace | renaming | pinned |
//! | [`Model::Squash`] | 4-block trace | renaming | 1-branch squash window |
//! | [`Model::Trace`] | full trace | renaming | squash window |
//! | [`Model::RegionSquash`] | region | predication (squash only) | squash window |
//! | [`Model::Boost`] | full trace | buffered predicates | buffered |
//! | [`Model::TracePred`] | full trace | predicated buffering | buffered |
//! | [`Model::RegionPred`] | region | predicated buffering | buffered |

#![warn(missing_docs)]

mod dag;
mod list;
mod model;
mod ops;
mod pathcond;
mod scope;
mod stats;
mod verify;

pub use dag::{Dag, Hoist, Policy};
pub use list::{list_schedule, ScheduledScope};
pub use model::{schedule, used_regs, Model, SchedConfig, SchedError};
pub use ops::{build_ops, SchedOp, Style};
pub use pathcond::PathCond;
pub use scope::{form_scopes, Scope, ScopeEdge, ScopeNode, ScopeParams};
pub use stats::ScheduleStats;
pub use verify::{verify_schedule, Violation};
