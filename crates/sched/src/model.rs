//! The seven scheduling models of the ISCA'95 evaluation and the
//! program-level scheduling pipeline.

use crate::dag::{build_dag, Hoist, Policy};
use crate::list::{list_schedule, ScheduledScope};
use crate::ops::{build_ops, Style};
use crate::scope::{form_scopes, ScopeParams};
use psb_ir::{Cfg, Liveness, RegSet};
use psb_isa::{BlockId, Resources, ScalarProgram, SlotOp, VliwProgram};
use psb_scalar::EdgeProfile;
use std::collections::HashMap;
use std::fmt;

/// The speculative-execution models evaluated in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Model {
    /// Pure compiler-based global scheduling: safe register motion with
    /// renaming only (Figure 6, "global").
    Global,
    /// Global scheduling plus pipeline squashing for unsafe ops past one
    /// branch (Figure 6, "squashing").
    Squash,
    /// Trace scheduling over superblocks with renaming and squashing
    /// (Figure 6, "trace").
    Trace,
    /// Region scheduling with simple predicated execution and squashing
    /// speculation only (Figure 6, "region").
    RegionSquash,
    /// Boosting: unconstrained motion within a trace, results buffered
    /// under branch-count labels (Figure 7, "boosting").
    Boost,
    /// Trace predicating: the predicating hardware restricted to a trace
    /// (Figure 7, Section 4.2.1).
    TracePred,
    /// Region predicating: the paper's full mechanism (Figure 7).
    RegionPred,
}

impl Model {
    /// All models, in the order the paper presents them.
    pub const ALL: [Model; 7] = [
        Model::Global,
        Model::Squash,
        Model::Trace,
        Model::RegionSquash,
        Model::Boost,
        Model::TracePred,
        Model::RegionPred,
    ];

    /// The model's short name as used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Model::Global => "global",
            Model::Squash => "squash",
            Model::Trace => "trace",
            Model::RegionSquash => "region-squash",
            Model::Boost => "boost",
            Model::TracePred => "trace-pred",
            Model::RegionPred => "region-pred",
        }
    }

    /// Whether the model uses the predicated-state-buffering hardware.
    pub fn uses_buffering(self) -> bool {
        matches!(self, Model::Boost | Model::TracePred | Model::RegionPred)
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Scheduling configuration.
#[derive(Clone, PartialEq, Debug)]
pub struct SchedConfig {
    /// The scheduling model.
    pub model: Model,
    /// Issue width of the target machine.
    pub issue_width: usize,
    /// Function-unit counts of the target machine.
    pub resources: Resources,
    /// CCR entries available (`K`; bounds branches per scope).
    pub num_conds: usize,
    /// Maximum conditions an instruction may pass unresolved (`D` in
    /// Figure 8).
    pub depth: usize,
    /// Scope size cap in blocks for the large-window models.
    pub max_blocks: usize,
    /// Schedule for the single-shadow register file (serialise conflicting
    /// speculative writes); disable for the infinite-shadow ablation.
    pub single_shadow: bool,
    /// Counter-form predicate ablation: condition-sets execute in program
    /// order (Section 4.2.1).
    pub ordered_cond_sets: bool,
}

impl SchedConfig {
    /// The paper's base configuration for `model`: 4-issue, 4 ALU / 4
    /// branch / 2 load / 1 store, K = 4, D = 4.
    pub fn new(model: Model) -> SchedConfig {
        SchedConfig {
            model,
            issue_width: 4,
            resources: Resources::paper_base(),
            num_conds: 4,
            depth: 4,
            max_blocks: 16,
            single_shadow: true,
            ordered_cond_sets: false,
        }
    }

    fn scope_params(&self) -> ScopeParams {
        match self.model {
            // The adjacent-block iterative models see a small window.
            Model::Global | Model::Squash => ScopeParams::trace(4, self.num_conds),
            Model::Trace | Model::Boost | Model::TracePred => {
                ScopeParams::trace(self.max_blocks, self.num_conds)
            }
            Model::RegionSquash | Model::RegionPred => {
                ScopeParams::region(self.max_blocks, self.num_conds)
            }
        }
    }

    fn style(&self) -> Style {
        match self.model {
            Model::Global => Style::LinearRename { pred_unsafe: false },
            Model::Squash | Model::Trace => Style::LinearRename { pred_unsafe: true },
            Model::Boost => Style::LinearBoost,
            Model::RegionSquash | Model::TracePred | Model::RegionPred => Style::Predicated,
        }
    }

    fn policy(&self) -> Policy {
        let linear = self.style().is_linear();
        let (hoist, depth, window_all) = match self.model {
            Model::Global => (Hoist::No, 0, false),
            Model::Squash => (Hoist::Window, 1, false),
            Model::Trace => (Hoist::Window, self.num_conds, false),
            Model::RegionSquash => (Hoist::Window, self.num_conds, true),
            Model::Boost | Model::TracePred | Model::RegionPred => {
                (Hoist::Buffered, self.depth, false)
            }
        };
        Policy {
            linear,
            hoist,
            depth,
            window_all,
            single_shadow: self.single_shadow,
            ordered_cond_sets: self.ordered_cond_sets,
        }
    }
}

/// A scheduling failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchedError {
    /// The produced program failed validation (a scheduler bug).
    Invalid(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Invalid(m) => write!(f, "scheduler produced invalid code: {m}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Schedules `prog` for the predicating machine under `cfg`, using the
/// training `profile` for static branch prediction and scope growth.
///
/// # Errors
///
/// [`SchedError::Invalid`] if the emitted program fails validation — this
/// indicates a scheduler bug, not bad input.
pub fn schedule(
    prog: &ScalarProgram,
    profile: &EdgeProfile,
    cfg: &SchedConfig,
) -> Result<VliwProgram, SchedError> {
    let cfg_graph = Cfg::new(prog);
    let lv = Liveness::new(prog, &cfg_graph);
    let used = used_regs(prog);
    let scopes = form_scopes(prog, profile, &cfg.scope_params());
    let style = cfg.style();
    let policy = cfg.policy();

    let mut scheduled: Vec<(BlockId, ScheduledScope)> = Vec::with_capacity(scopes.len());
    for scope in &scopes {
        let mut ops = build_ops(prog, scope, style, &lv, used);
        let dag = build_dag(&mut ops, &policy);
        let ss = list_schedule(&ops, &dag, cfg.issue_width, &cfg.resources);
        scheduled.push((scope.head, ss));
    }

    // Lay scopes out and patch exits.
    let mut start_of: HashMap<BlockId, usize> = HashMap::new();
    let mut addr = 0usize;
    for (head, ss) in &scheduled {
        start_of.insert(*head, addr);
        addr += ss.words.len().max(1);
    }
    let mut words = Vec::with_capacity(addr);
    let mut region_starts = Vec::with_capacity(scheduled.len());
    for (head, ss) in &mut scheduled.iter_mut() {
        region_starts.push(words.len());
        debug_assert_eq!(words.len(), start_of[head]);
        let base = words.len();
        let mut scope_words = std::mem::take(&mut ss.words);
        if scope_words.is_empty() {
            scope_words.push(psb_isa::MultiOp::default());
        }
        for &(w, s, target) in &ss.patches {
            let t = *start_of
                .get(&target)
                .unwrap_or_else(|| panic!("exit target {target} has no scope"));
            match &mut scope_words[w].slots[s].op {
                SlotOp::Jump { target } | SlotOp::CmpBr { target, .. } => *target = t,
                other => panic!("patch target is not a transfer: {other:?}"),
            }
        }
        let _ = base;
        words.extend(scope_words);
    }

    let out = VliwProgram {
        name: format!("{}.{}", prog.name, cfg.model.name()),
        words,
        region_starts,
        num_conds: cfg.num_conds.max(1),
        init_regs: prog.init_regs.clone(),
        memory: prog.memory.clone(),
        live_out: prog.live_out.clone(),
    };
    out.validate().map_err(SchedError::Invalid)?;
    if cfg!(debug_assertions) {
        let violations = crate::verify::verify_schedule(&out, cfg.issue_width, &cfg.resources);
        if !violations.is_empty() {
            let msgs: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
            return Err(SchedError::Invalid(msgs.join("; ")));
        }
    }
    Ok(out)
}

/// Registers used anywhere in the program (the renaming pool is the
/// complement).
pub fn used_regs(prog: &ScalarProgram) -> RegSet {
    let mut s = RegSet::EMPTY;
    for b in &prog.blocks {
        for op in &b.instrs {
            s.extend(op.used_regs());
            s.extend(op.def_reg());
        }
        s.extend(b.term.used_regs());
    }
    s.extend(prog.live_out.iter().copied());
    s.extend(prog.init_regs.iter().map(|&(r, _)| r));
    s
}
