//! Static analysis of scheduled programs: operation mix, predicate
//! depths, region shapes and code expansion.
//!
//! The paper's cost discussion is static as much as dynamic — boosting's
//! recovery code "doubles the size of the original code" (Section 2.2),
//! predicating adds condition-set instructions and duplicated join
//! blocks, and Figure 8's speculation-depth knob is visible in the
//! predicate-depth histogram.  [`ScheduleStats`] measures all of that on
//! a [`VliwProgram`].

use psb_isa::{Op, ScalarProgram, SlotOp, VliwProgram, MAX_CONDS};
use std::fmt;

/// Static statistics of a scheduled program.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ScheduleStats {
    /// Instruction words (cycles of straight-line issue).
    pub words: usize,
    /// Regions (scope entries).
    pub regions: usize,
    /// Non-nop operations.
    pub ops: usize,
    /// ALU and copy operations.
    pub alu_ops: usize,
    /// Register-copy operations (renaming overhead of the linear models).
    pub copy_ops: usize,
    /// Loads.
    pub loads: usize,
    /// Stores.
    pub stores: usize,
    /// Condition-set operations (predication overhead).
    pub setconds: usize,
    /// Control transfers (jumps, compare-and-branch, halts).
    pub transfers: usize,
    /// `hist[d]` = operations whose predicate has depth `d`.
    pub pred_depth_hist: [usize; MAX_CONDS + 1],
    /// Slots actually filled, as a fraction of `words × issue slots seen`.
    pub slot_utilisation: f64,
}

impl ScheduleStats {
    /// Analyses a scheduled program.
    pub fn analyze(prog: &VliwProgram) -> ScheduleStats {
        let mut s = ScheduleStats {
            words: prog.words.len(),
            regions: prog.region_starts.len(),
            ..ScheduleStats::default()
        };
        let mut max_width = 1usize;
        for w in &prog.words {
            max_width = max_width.max(w.slots.len());
            for slot in &w.slots {
                match slot.op {
                    SlotOp::Op(Op::Nop) => continue,
                    SlotOp::Op(Op::Alu { .. }) => s.alu_ops += 1,
                    SlotOp::Op(Op::Copy { .. }) => {
                        s.alu_ops += 1;
                        s.copy_ops += 1;
                    }
                    SlotOp::Op(Op::Load { .. }) => s.loads += 1,
                    SlotOp::Op(Op::Store { .. }) => s.stores += 1,
                    SlotOp::Op(Op::SetCond { .. }) => s.setconds += 1,
                    SlotOp::Jump { .. } | SlotOp::CmpBr { .. } | SlotOp::Halt => s.transfers += 1,
                }
                s.ops += 1;
                s.pred_depth_hist[slot.pred.depth()] += 1;
            }
        }
        s.slot_utilisation = if s.words == 0 {
            0.0
        } else {
            s.ops as f64 / (s.words * max_width) as f64
        };
        s
    }

    /// Static code expansion relative to a scalar program (ops per scalar
    /// instruction — the duplication/renaming/predication overhead).
    pub fn expansion_over(&self, scalar: &ScalarProgram) -> f64 {
        self.ops as f64 / scalar.static_len().max(1) as f64
    }

    /// The deepest predicate appearing in the schedule.
    pub fn max_pred_depth(&self) -> usize {
        self.pred_depth_hist
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &n)| n > 0)
            .map_or(0, |(d, _)| d)
    }
}

impl fmt::Display for ScheduleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} words, {} regions, {} ops ({} alu [{} copies], {} loads, {} stores, \
             {} cond-sets, {} transfers)",
            self.words,
            self.regions,
            self.ops,
            self.alu_ops,
            self.copy_ops,
            self.loads,
            self.stores,
            self.setconds,
            self.transfers
        )?;
        write!(f, "predicate depths:")?;
        for (d, &n) in self.pred_depth_hist.iter().enumerate() {
            if n > 0 {
                write!(f, " {d}:{n}")?;
            }
        }
        write!(
            f,
            "; slot utilisation {:.0}%",
            self.slot_utilisation * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule, Model, SchedConfig};
    use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder, Reg};
    use psb_scalar::{ScalarConfig, ScalarMachine};

    fn sample() -> ScalarProgram {
        let r = Reg::new;
        let mut pb = ProgramBuilder::new("stats");
        pb.memory_size(64);
        pb.mem_cell(8, 4);
        let entry = pb.new_block();
        let a = pb.new_block();
        let b = pb.new_block();
        let done = pb.new_block();
        pb.block_mut(entry)
            .load(r(1), 8, 0, MemTag(1))
            .branch(CmpOp::Lt, r(1), 2, a, b);
        pb.block_mut(a).alu(AluOp::Add, r(2), r(1), 1).jump(done);
        pb.block_mut(b).alu(AluOp::Sub, r(2), r(1), 1).jump(done);
        pb.block_mut(done).halt();
        pb.set_entry(entry);
        pb.live_out([r(2)]);
        pb.finish().unwrap()
    }

    #[test]
    fn counts_add_up() {
        let p = sample();
        let profile = ScalarMachine::new(&p, ScalarConfig::default())
            .run()
            .unwrap()
            .edge_profile;
        let v = schedule(&p, &profile, &SchedConfig::new(Model::RegionPred)).unwrap();
        let s = ScheduleStats::analyze(&v);
        assert_eq!(
            s.ops,
            s.alu_ops + s.loads + s.stores + s.setconds + s.transfers,
            "classes partition the ops"
        );
        assert_eq!(s.ops, v.static_ops());
        assert_eq!(s.regions, v.region_starts.len());
        assert!(s.setconds >= 1, "the branch became a condition-set");
        assert!(s.slot_utilisation > 0.0 && s.slot_utilisation <= 1.0);
    }

    #[test]
    fn predicated_schedule_has_depth() {
        let p = sample();
        let profile = ScalarMachine::new(&p, ScalarConfig::default())
            .run()
            .unwrap()
            .edge_profile;
        let v = schedule(&p, &profile, &SchedConfig::new(Model::RegionPred)).unwrap();
        let s = ScheduleStats::analyze(&v);
        assert!(
            s.max_pred_depth() >= 1,
            "region code carries path predicates"
        );
        let g = schedule(&p, &profile, &SchedConfig::new(Model::Global)).unwrap();
        let gs = ScheduleStats::analyze(&g);
        assert!(gs.pred_depth_hist[0] > 0);
    }

    #[test]
    fn expansion_reflects_duplication() {
        let p = sample();
        let profile = ScalarMachine::new(&p, ScalarConfig::default())
            .run()
            .unwrap()
            .edge_profile;
        let region = schedule(&p, &profile, &SchedConfig::new(Model::RegionPred)).unwrap();
        let e = ScheduleStats::analyze(&region).expansion_over(&p);
        assert!(
            e >= 1.0,
            "predication plus duplication never shrinks code, got {e}"
        );
    }

    #[test]
    fn display_is_nonempty() {
        let p = sample();
        let profile = ScalarMachine::new(&p, ScalarConfig::default())
            .run()
            .unwrap()
            .edge_profile;
        let v = schedule(&p, &profile, &SchedConfig::new(Model::Trace)).unwrap();
        let s = ScheduleStats::analyze(&v);
        let text = s.to_string();
        assert!(text.contains("words"));
        assert!(text.contains("slot utilisation"));
    }
}
