//! Independent static verification of scheduled programs.
//!
//! The machine enforces some invariants dynamically (resource limits,
//! unresolvable jump predicates); this verifier checks them — and the
//! ones only visible statically — *before* execution, the way a
//! production compiler self-checks its output.  `schedule` runs it on
//! every produced program when debug assertions are on.

use psb_isa::{CondReg, FuClass, Op, Resources, SlotOp, VliwProgram};
use std::collections::HashSet;
use std::fmt;

/// One verification finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// A control transfer's predicate references a condition not set in a
    /// strictly earlier word of its region — the machine would report an
    /// unresolvable stall.
    UnresolvableTransfer {
        /// Word address of the transfer.
        word: usize,
        /// The unresolved condition.
        cond: CondReg,
    },
    /// A condition register is written twice within one region (the
    /// compiler must not re-allocate CCR entries, Section 3.4).
    CondSetTwice {
        /// Word address of the second setter.
        word: usize,
        /// The doubly-set condition.
        cond: CondReg,
    },
    /// An operation's predicate references a condition never set in its
    /// region: it could never commit and would always be squashed at the
    /// region exit (dead speculative work).
    UndecidablePredicate {
        /// Word address of the operation.
        word: usize,
        /// The never-set condition.
        cond: CondReg,
    },
    /// A word exceeds the issue width or a function-unit count.
    ResourceOverflow {
        /// Word address.
        word: usize,
        /// Description of the exceeded resource.
        what: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnresolvableTransfer { word, cond } => {
                write!(
                    f,
                    "W{word}: transfer predicate uses {cond} not yet set in the region"
                )
            }
            Violation::CondSetTwice { word, cond } => {
                write!(f, "W{word}: {cond} set twice in one region")
            }
            Violation::UndecidablePredicate { word, cond } => {
                write!(f, "W{word}: predicate uses {cond} never set in the region")
            }
            Violation::ResourceOverflow { word, what } => {
                write!(f, "W{word}: {what}")
            }
        }
    }
}

/// Statically verifies `prog` against the machine shape.  Returns every
/// violation found (empty = verified).
pub fn verify_schedule(
    prog: &VliwProgram,
    issue_width: usize,
    resources: &Resources,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut starts = prog.region_starts.clone();
    starts.push(prog.words.len());

    for region in starts.windows(2) {
        let (lo, hi) = (region[0], region[1]);
        // Pass 1: where is each condition set, and is any set twice?
        let mut set_at: Vec<Option<usize>> = vec![None; psb_isa::MAX_CONDS];
        for addr in lo..hi {
            for slot in &prog.words[addr].slots {
                if let Some(c) = cond_written(&slot.op) {
                    match set_at[c.index()] {
                        Some(_) => out.push(Violation::CondSetTwice {
                            word: addr,
                            cond: c,
                        }),
                        None => set_at[c.index()] = Some(addr),
                    }
                }
            }
        }
        // Pass 2: transfers resolve strictly earlier; predicates decidable.
        let mut ever: HashSet<usize> = HashSet::new();
        for (i, s) in set_at.iter().enumerate() {
            if s.is_some() {
                ever.insert(i);
            }
        }
        for addr in lo..hi {
            let word = &prog.words[addr];
            if word.slots.len() > issue_width {
                out.push(Violation::ResourceOverflow {
                    word: addr,
                    what: format!("{} slots > issue width {issue_width}", word.slots.len()),
                });
            }
            for class in [FuClass::Alu, FuClass::Branch, FuClass::Load, FuClass::Store] {
                let used = word
                    .slots
                    .iter()
                    .filter(|s| s.op.fu_class() == class)
                    .count();
                if used > resources.of(class) {
                    out.push(Violation::ResourceOverflow {
                        word: addr,
                        what: format!("{used} {class:?} ops > {}", resources.of(class)),
                    });
                }
            }
            for slot in &word.slots {
                let is_transfer = matches!(
                    slot.op,
                    SlotOp::Jump { .. } | SlotOp::CmpBr { .. } | SlotOp::Halt
                );
                for (c, _) in slot.pred.terms() {
                    match set_at[c.index()] {
                        None => out.push(Violation::UndecidablePredicate {
                            word: addr,
                            cond: c,
                        }),
                        Some(s) if is_transfer && s >= addr => {
                            out.push(Violation::UnresolvableTransfer {
                                word: addr,
                                cond: c,
                            })
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
    out
}

fn cond_written(op: &SlotOp) -> Option<CondReg> {
    match op {
        SlotOp::Op(Op::SetCond { c, .. }) => Some(*c),
        SlotOp::CmpBr { c, .. } => *c,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{CmpOp, MemImage, MultiOp, Predicate, Slot, Src};

    fn c(i: usize) -> CondReg {
        CondReg::new(i)
    }

    fn setc(cr: CondReg) -> SlotOp {
        SlotOp::Op(Op::SetCond {
            c: cr,
            cmp: CmpOp::Eq,
            a: Src::imm(0),
            b: Src::imm(0),
        })
    }

    fn prog(words: Vec<MultiOp>, regions: Vec<usize>) -> VliwProgram {
        VliwProgram {
            name: "v".into(),
            words,
            region_starts: regions,
            num_conds: 4,
            init_regs: vec![],
            memory: MemImage::zeroed(16),
            live_out: vec![],
        }
    }

    #[test]
    fn clean_program_verifies() {
        let p = prog(
            vec![
                MultiOp::new(vec![Slot::alw(setc(c(0)))]),
                MultiOp::new(vec![Slot::new(
                    Predicate::always().and_pos(c(0)),
                    SlotOp::Jump { target: 2 },
                )]),
                MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
            ],
            vec![0, 2],
        );
        assert!(verify_schedule(&p, 2, &Resources::paper_base()).is_empty());
    }

    #[test]
    fn detects_unresolvable_transfer() {
        // Jump's condition set in the same word.
        let p = prog(
            vec![
                MultiOp::new(vec![
                    Slot::alw(setc(c(0))),
                    Slot::new(
                        Predicate::always().and_pos(c(0)),
                        SlotOp::Jump { target: 1 },
                    ),
                ]),
                MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
            ],
            vec![0, 1],
        );
        let v = verify_schedule(&p, 2, &Resources::paper_base());
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::UnresolvableTransfer { word: 0, .. })));
    }

    #[test]
    fn detects_double_cond_set() {
        let p = prog(
            vec![
                MultiOp::new(vec![Slot::alw(setc(c(1)))]),
                MultiOp::new(vec![Slot::alw(setc(c(1)))]),
                MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
            ],
            vec![0],
        );
        let v = verify_schedule(&p, 2, &Resources::paper_base());
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::CondSetTwice { word: 1, .. })));
    }

    #[test]
    fn cond_reuse_allowed_across_regions() {
        let p = prog(
            vec![
                MultiOp::new(vec![Slot::alw(setc(c(0)))]),
                MultiOp::new(vec![Slot::alw(setc(c(0)))]),
                MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
            ],
            vec![0, 1],
        );
        assert!(verify_schedule(&p, 2, &Resources::paper_base()).is_empty());
    }

    #[test]
    fn detects_undecidable_predicate() {
        let p = prog(
            vec![
                MultiOp::new(vec![Slot::new(
                    Predicate::always().and_pos(c(3)),
                    SlotOp::Op(Op::Copy {
                        rd: psb_isa::Reg::new(1),
                        src: Src::imm(1),
                    }),
                )]),
                MultiOp::new(vec![Slot::alw(SlotOp::Halt)]),
            ],
            vec![0],
        );
        let v = verify_schedule(&p, 2, &Resources::paper_base());
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::UndecidablePredicate { .. })));
    }

    #[test]
    fn detects_resource_overflow() {
        let w = MultiOp::new(vec![
            Slot::alw(SlotOp::Op(Op::Load {
                rd: psb_isa::Reg::new(1),
                base: Src::imm(4),
                offset: 0,
                tag: Default::default(),
            })),
            Slot::alw(SlotOp::Op(Op::Load {
                rd: psb_isa::Reg::new(2),
                base: Src::imm(5),
                offset: 0,
                tag: Default::default(),
            })),
            Slot::alw(SlotOp::Op(Op::Load {
                rd: psb_isa::Reg::new(3),
                base: Src::imm(6),
                offset: 0,
                tag: Default::default(),
            })),
        ]);
        let p = prog(
            vec![w, MultiOp::new(vec![Slot::alw(SlotOp::Halt)])],
            vec![0],
        );
        let v = verify_schedule(&p, 4, &Resources::paper_base());
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ResourceOverflow { word: 0, .. })));
    }
}
