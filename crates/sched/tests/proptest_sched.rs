//! Property-based golden-model differential: proptest generates
//! structured programs directly (so failures shrink to minimal
//! counterexamples), and every scheduling model must preserve the scalar
//! semantics.

use proptest::prelude::*;
use psb_core::{MachineConfig, VliwMachine};
use psb_isa::{AluOp, CmpOp, MemTag, Op, ProgramBuilder, Reg, ScalarProgram, Src};
use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_sched::{schedule, Model, SchedConfig};

const DATA_REGS: usize = 8;
const ADDR_REG: usize = 9;
const LOOP_REG: usize = 10;

/// One straight-line operation, with memory accesses masked into bounds.
#[derive(Clone, Debug)]
enum GenOp {
    Alu(AluOp, usize, GenSrc, GenSrc),
    Load(usize, usize),
    Store(usize, GenSrc),
}

#[derive(Clone, Copy, Debug)]
enum GenSrc {
    Reg(usize),
    Imm(i8),
}

impl GenSrc {
    fn lower(self) -> Src {
        match self {
            GenSrc::Reg(r) => Src::reg(Reg::new(1 + r % DATA_REGS)),
            GenSrc::Imm(v) => Src::imm(v as i64),
        }
    }
}

/// A structured fragment: straight code, a diamond, or a counted loop.
#[derive(Clone, Debug)]
enum Fragment {
    Straight(Vec<GenOp>),
    Diamond {
        cmp: CmpOp,
        a: usize,
        b: GenSrc,
        then_ops: Vec<GenOp>,
        else_ops: Vec<GenOp>,
    },
    Loop {
        trips: u8,
        body: Vec<GenOp>,
    },
}

fn src_strategy() -> impl Strategy<Value = GenSrc> {
    prop_oneof![
        (0..DATA_REGS).prop_map(GenSrc::Reg),
        any::<i8>().prop_map(GenSrc::Imm),
    ]
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Slt),
    ];
    prop_oneof![
        4 => (alu, 0..DATA_REGS, src_strategy(), src_strategy())
            .prop_map(|(op, rd, a, b)| GenOp::Alu(op, rd, a, b)),
        1 => (0..DATA_REGS, 0..DATA_REGS).prop_map(|(rd, a)| GenOp::Load(rd, a)),
        1 => (0..DATA_REGS, src_strategy()).prop_map(|(a, v)| GenOp::Store(a, v)),
    ]
}

fn cmp_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Ge),
    ]
}

fn fragment_strategy() -> impl Strategy<Value = Fragment> {
    prop_oneof![
        proptest::collection::vec(op_strategy(), 1..5).prop_map(Fragment::Straight),
        (
            cmp_strategy(),
            0..DATA_REGS,
            src_strategy(),
            proptest::collection::vec(op_strategy(), 1..4),
            proptest::collection::vec(op_strategy(), 1..4),
        )
            .prop_map(|(cmp, a, b, then_ops, else_ops)| Fragment::Diamond {
                cmp,
                a,
                b,
                then_ops,
                else_ops
            }),
        (1u8..5, proptest::collection::vec(op_strategy(), 1..4))
            .prop_map(|(trips, body)| Fragment::Loop { trips, body }),
    ]
}

fn emit_ops<'a>(bb: psb_isa::BlockBuilder<'a>, ops: &[GenOp]) -> psb_isa::BlockBuilder<'a> {
    let mut bb = bb;
    for op in ops {
        bb = match *op {
            GenOp::Alu(op, rd, a, b) => bb.push(Op::Alu {
                op,
                rd: Reg::new(1 + rd % DATA_REGS),
                a: a.lower(),
                b: b.lower(),
            }),
            GenOp::Load(rd, a) => bb
                .push(Op::Alu {
                    op: AluOp::And,
                    rd: Reg::new(ADDR_REG),
                    a: Src::reg(Reg::new(1 + a % DATA_REGS)),
                    b: Src::imm(31),
                })
                .push(Op::Load {
                    rd: Reg::new(1 + rd % DATA_REGS),
                    base: Src::reg(Reg::new(ADDR_REG)),
                    offset: 16,
                    tag: MemTag(1),
                }),
            GenOp::Store(a, v) => bb
                .push(Op::Alu {
                    op: AluOp::And,
                    rd: Reg::new(ADDR_REG),
                    a: Src::reg(Reg::new(1 + a % DATA_REGS)),
                    b: Src::imm(31),
                })
                .push(Op::Store {
                    base: Src::reg(Reg::new(ADDR_REG)),
                    offset: 64,
                    value: v.lower(),
                    tag: MemTag(2),
                }),
        };
    }
    bb
}

fn build(fragments: &[Fragment], init: &[i8]) -> ScalarProgram {
    let mut pb = ProgramBuilder::new("prop");
    pb.memory_size(128);
    for (i, v) in init.iter().enumerate() {
        pb.mem_cell(1 + i as i64, *v as i64);
        pb.init_reg(Reg::new(1 + i % DATA_REGS), *v as i64);
    }
    let mut cur = pb.new_block();
    let entry = cur;
    for f in fragments {
        match f {
            Fragment::Straight(ops) => {
                let next = pb.new_block();
                emit_ops(pb.block_mut(cur), ops).jump(next);
                cur = next;
            }
            Fragment::Diamond {
                cmp,
                a,
                b,
                then_ops,
                else_ops,
            } => {
                let t = pb.new_block();
                let e = pb.new_block();
                let j = pb.new_block();
                pb.block_mut(cur)
                    .branch(*cmp, Reg::new(1 + a % DATA_REGS), b.lower(), t, e);
                emit_ops(pb.block_mut(t), then_ops).jump(j);
                emit_ops(pb.block_mut(e), else_ops).jump(j);
                cur = j;
            }
            Fragment::Loop { trips, body } => {
                let head = pb.new_block();
                let next = pb.new_block();
                pb.block_mut(cur).copy(Reg::new(LOOP_REG), 0).jump(head);
                emit_ops(pb.block_mut(head), body)
                    .alu(AluOp::Add, Reg::new(LOOP_REG), Reg::new(LOOP_REG), 1)
                    .branch(CmpOp::Lt, Reg::new(LOOP_REG), *trips as i64, head, next);
                cur = next;
            }
        }
    }
    pb.block_mut(cur).halt();
    pb.set_entry(entry);
    pb.live_out((1..=DATA_REGS).map(Reg::new));
    pb.finish()
        .expect("generated programs are structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn every_model_preserves_semantics(
        fragments in proptest::collection::vec(fragment_strategy(), 1..5),
        init in proptest::collection::vec(any::<i8>(), 16),
    ) {
        let prog = build(&fragments, &init);
        let scalar = ScalarMachine::new(&prog, ScalarConfig::default())
            .run()
            .expect("generated programs terminate");
        let expected = scalar.observable(&prog.live_out);
        for model in Model::ALL {
            let cfg = SchedConfig::new(model);
            let vliw = schedule(&prog, &scalar.edge_profile, &cfg)
                .map_err(|e| TestCaseError::fail(format!("{model}: {e}")))?;
            let res = VliwMachine::run_program(&vliw, MachineConfig::default())
                .map_err(|e| TestCaseError::fail(format!("{model}: {e}")))?;
            prop_assert_eq!(
                res.observable(&prog.live_out),
                expected.clone(),
                "{} diverged",
                model
            );
        }
    }

    #[test]
    fn unrolling_commutes_with_scheduling(
        fragments in proptest::collection::vec(fragment_strategy(), 1..4),
        init in proptest::collection::vec(any::<i8>(), 16),
    ) {
        let prog = build(&fragments, &init);
        let unrolled = psb_ir::unroll_loops(&prog, 2);
        let a = ScalarMachine::new(&prog, ScalarConfig::default()).run().unwrap();
        let b = ScalarMachine::new(&unrolled, ScalarConfig::default()).run().unwrap();
        prop_assert_eq!(
            a.observable(&prog.live_out),
            b.observable(&unrolled.live_out)
        );
        let cfg = SchedConfig::new(Model::RegionPred);
        let vliw = schedule(&unrolled, &b.edge_profile, &cfg)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let res = VliwMachine::run_program(&vliw, MachineConfig::default())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(
            res.observable(&unrolled.live_out),
            a.observable(&prog.live_out)
        );
    }

    #[test]
    fn optimisation_passes_preserve_semantics(
        fragments in proptest::collection::vec(fragment_strategy(), 1..5),
        init in proptest::collection::vec(any::<i8>(), 16),
    ) {
        let prog = build(&fragments, &init);
        let before = ScalarMachine::new(&prog, ScalarConfig::default()).run().unwrap();
        let mut opt = prog.clone();
        psb_ir::optimize(&mut opt);
        let after = ScalarMachine::new(&opt, ScalarConfig::default()).run().unwrap();
        prop_assert_eq!(
            after.observable(&opt.live_out),
            before.observable(&prog.live_out)
        );
        prop_assert!(after.dyn_instrs <= before.dyn_instrs);
    }
}
