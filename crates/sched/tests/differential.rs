//! Golden-model differential testing: every scheduling model, on randomly
//! generated structured programs, must produce VLIW code whose observable
//! result (live-out registers + final memory) matches the scalar reference
//! execution.

use psb_core::{MachineConfig, ShadowMode, VliwMachine};
use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder, Reg, ScalarProgram, Src};
use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_sched::{schedule, Model, SchedConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DATA_REGS: usize = 12; // r1..r12 hold data
const ADDR_REG: usize = 13;
const LOOP_REG: usize = 14;

fn r(i: usize) -> Reg {
    Reg::new(i)
}

fn rand_src(rng: &mut StdRng) -> Src {
    if rng.gen_bool(0.3) {
        Src::imm(rng.gen_range(-8..64))
    } else {
        Src::reg(r(rng.gen_range(1..=DATA_REGS)))
    }
}

fn rand_alu(rng: &mut StdRng) -> AluOp {
    *[
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Slt,
        AluOp::Mul,
        AluOp::Sra,
    ]
    .get(rng.gen_range(0usize..8))
    .unwrap()
}

fn rand_cmp(rng: &mut StdRng) -> CmpOp {
    *[
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ]
    .get(rng.gen_range(0usize..6))
    .unwrap()
}

/// Emits ops into `block` via the builder-closure pattern: returns a list
/// of straight-line ops (ALU plus bounded-address loads/stores).
fn rand_ops(rng: &mut StdRng, count: usize) -> Vec<psb_isa::Op> {
    use psb_isa::Op;
    let mut ops = Vec::new();
    for _ in 0..count {
        match rng.gen_range(0..10) {
            0..=5 => ops.push(Op::Alu {
                op: rand_alu(rng),
                rd: r(rng.gen_range(1..=DATA_REGS)),
                a: rand_src(rng),
                b: rand_src(rng),
            }),
            6..=7 => {
                // Bounded load: addr = (reg & 31) + 16, tag 1.
                let src = r(rng.gen_range(1..=DATA_REGS));
                ops.push(Op::Alu {
                    op: AluOp::And,
                    rd: r(ADDR_REG),
                    a: Src::reg(src),
                    b: Src::imm(31),
                });
                ops.push(Op::Load {
                    rd: r(rng.gen_range(1..=DATA_REGS)),
                    base: Src::reg(r(ADDR_REG)),
                    offset: 16,
                    tag: MemTag(1),
                });
            }
            _ => {
                // Bounded store into the second array, tag 2.
                let src = r(rng.gen_range(1..=DATA_REGS));
                ops.push(Op::Alu {
                    op: AluOp::And,
                    rd: r(ADDR_REG),
                    a: Src::reg(src),
                    b: Src::imm(31),
                });
                ops.push(Op::Store {
                    base: Src::reg(r(ADDR_REG)),
                    offset: 64,
                    value: rand_src(rng),
                    tag: MemTag(2),
                });
            }
        }
    }
    ops
}

/// Generates a structured, always-terminating program: a chain of
/// fragments (straight-line code, data-dependent diamonds, counted loops).
fn gen_program(seed: u64) -> ScalarProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pb = ProgramBuilder::new(format!("rand-{seed}"));
    pb.memory_size(128);
    for a in 1..128 {
        pb.mem_cell(a, rng.gen_range(-100..100));
    }
    for i in 1..=DATA_REGS {
        pb.init_reg(r(i), rng.gen_range(-50..50));
    }

    let mut blocks = vec![pb.new_block()];
    let fragments = rng.gen_range(3..=7);
    for _ in 0..fragments {
        match rng.gen_range(0..3) {
            0 => {
                // Straight-line fragment.
                let cur = *blocks.last().unwrap();
                let next = pb.new_block();
                let mut bb = pb.block_mut(cur);
                let count = rng.gen_range(1..=5);
                for op in rand_ops(&mut rng, count) {
                    bb = bb.push(op);
                }
                bb.jump(next);
                blocks.push(next);
            }
            1 => {
                // Diamond.
                let cur = *blocks.last().unwrap();
                let then_b = pb.new_block();
                let else_b = pb.new_block();
                let join = pb.new_block();
                let cmp = rand_cmp(&mut rng);
                let a = Src::reg(r(rng.gen_range(1..=DATA_REGS)));
                let b = rand_src(&mut rng);
                pb.block_mut(cur).branch(cmp, a, b, then_b, else_b);
                let mut bb = pb.block_mut(then_b);
                let count = rng.gen_range(1..=4);
                for op in rand_ops(&mut rng, count) {
                    bb = bb.push(op);
                }
                bb.jump(join);
                let mut bb = pb.block_mut(else_b);
                let count = rng.gen_range(1..=4);
                for op in rand_ops(&mut rng, count) {
                    bb = bb.push(op);
                }
                bb.jump(join);
                blocks.push(join);
            }
            _ => {
                // Counted loop.
                let cur = *blocks.last().unwrap();
                let body = pb.new_block();
                let next = pb.new_block();
                let n: i64 = rng.gen_range(2..=6);
                pb.block_mut(cur).copy(r(LOOP_REG), 0).jump(body);
                let mut bb = pb.block_mut(body);
                let count = rng.gen_range(1..=4);
                for op in rand_ops(&mut rng, count) {
                    bb = bb.push(op);
                }
                bb.alu(AluOp::Add, r(LOOP_REG), r(LOOP_REG), 1).branch(
                    CmpOp::Lt,
                    r(LOOP_REG),
                    n,
                    body,
                    next,
                );
                blocks.push(next);
            }
        }
    }
    let last = *blocks.last().unwrap();
    pb.block_mut(last).halt();
    pb.set_entry(blocks[0]);
    pb.live_out((1..=DATA_REGS).map(r));
    pb.finish().unwrap()
}

fn check_program(prog: &ScalarProgram, models: &[Model], sched_tweak: impl Fn(&mut SchedConfig)) {
    let scalar = ScalarMachine::new(prog, ScalarConfig::default())
        .run()
        .unwrap_or_else(|e| panic!("{}: scalar run failed: {e}", prog.name));
    let expected = scalar.observable(&prog.live_out);
    for &model in models {
        let mut cfg = SchedConfig::new(model);
        sched_tweak(&mut cfg);
        let vliw = schedule(prog, &scalar.edge_profile, &cfg)
            .unwrap_or_else(|e| panic!("{}/{model}: scheduling failed: {e}", prog.name));
        let mcfg = MachineConfig {
            issue_width: cfg.issue_width,
            resources: cfg.resources,
            shadow_mode: if cfg.single_shadow {
                ShadowMode::Single
            } else {
                ShadowMode::Infinite
            },
            ..MachineConfig::default()
        };
        let res = VliwMachine::run_program(&vliw, mcfg)
            .unwrap_or_else(|e| panic!("{}/{model}: machine error: {e}\n{vliw}", prog.name));
        let got = res.observable(&prog.live_out);
        assert_eq!(
            got, expected,
            "{}/{model}: observable state diverged from the scalar golden model",
            prog.name
        );
    }
}

#[test]
fn all_models_match_golden_model_on_random_programs() {
    for seed in 0..40 {
        let prog = gen_program(seed);
        check_program(&prog, &Model::ALL, |_| {});
    }
}

#[test]
fn wide_machine_and_depth_sweep_match_golden_model() {
    for seed in 40..55 {
        let prog = gen_program(seed);
        for depth in [1, 2, 8] {
            check_program(&prog, &[Model::TracePred, Model::RegionPred], |c| {
                c.depth = depth;
                c.num_conds = 8;
                c.issue_width = 8;
                c.resources = psb_isa::Resources::full_issue(8);
            });
        }
    }
}

#[test]
fn infinite_shadow_ablation_matches_golden_model() {
    for seed in 55..70 {
        let prog = gen_program(seed);
        check_program(
            &prog,
            &[Model::RegionPred, Model::TracePred, Model::Boost],
            |c| {
                c.single_shadow = false;
            },
        );
    }
}

#[test]
fn two_issue_machine_matches_golden_model() {
    for seed in 70..80 {
        let prog = gen_program(seed);
        check_program(&prog, &Model::ALL, |c| {
            c.issue_width = 2;
            c.resources = psb_isa::Resources {
                alu: 2,
                branch: 2,
                load: 1,
                store: 1,
            };
        });
    }
}

/// Non-fatal faults on cold pages: the predicated models buffer the
/// speculative exception and recover via the future condition; results
/// must still match the scalar execution (which handles the same faults
/// inline).
#[test]
fn fault_recovery_matches_golden_model() {
    for seed in 80..100 {
        let prog = gen_program(seed);
        // Every fourth cell of the load array faults once.
        let faults: std::collections::BTreeSet<i64> = (16..48).step_by(4).collect();
        let scfg = ScalarConfig {
            fault_once_addrs: faults.clone(),
            ..ScalarConfig::default()
        };
        let scalar = ScalarMachine::new(&prog, scfg).run().unwrap();
        let expected = scalar.observable(&prog.live_out);
        for model in [Model::RegionPred, Model::TracePred, Model::Boost] {
            let cfg = SchedConfig::new(model);
            let vliw = schedule(&prog, &scalar.edge_profile, &cfg).unwrap();
            let mcfg = MachineConfig {
                fault_once_addrs: faults.clone(),
                ..MachineConfig::default()
            };
            let res = VliwMachine::run_program(&vliw, mcfg)
                .unwrap_or_else(|e| panic!("{}/{model}: machine error: {e}", prog.name));
            assert_eq!(
                res.observable(&prog.live_out),
                expected,
                "{}/{model}: fault recovery diverged",
                prog.name
            );
        }
    }
}
