//! The scalar machine proper.

use psb_isa::{BlockId, MemFault, Memory, Op, Reg, ScalarProgram, Src, Terminator, NUM_REGS};
use std::collections::BTreeSet;
use std::fmt;

/// Timing and fault configuration of the scalar machine.
#[derive(Clone, PartialEq, Debug)]
pub struct ScalarConfig {
    /// Stall cycles charged when the instruction after a load reads the
    /// load destination (R3000 load interlock).
    pub load_use_stall: u64,
    /// Penalty cycles for a taken conditional branch.
    pub taken_branch_penalty: u64,
    /// Addresses whose *first* access raises a non-fatal fault costing
    /// [`ScalarConfig::fault_penalty`] cycles and then succeeds.
    pub fault_once_addrs: BTreeSet<i64>,
    /// Handler cost of a non-fatal fault.
    pub fault_penalty: u64,
    /// Safety limit; exceeding it aborts the run.
    pub max_cycles: u64,
    /// Whether to record the full dynamic branch trace (needed for the
    /// Table 3 reproduction; edge profiles are always recorded).
    pub record_branch_trace: bool,
}

impl Default for ScalarConfig {
    fn default() -> ScalarConfig {
        ScalarConfig {
            load_use_stall: 1,
            taken_branch_penalty: 1,
            fault_once_addrs: BTreeSet::new(),
            fault_penalty: 50,
            max_cycles: 200_000_000,
            record_branch_trace: true,
        }
    }
}

/// One dynamic conditional-branch outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchRecord {
    /// The block whose terminator branched.
    pub block: BlockId,
    /// Whether the taken edge was followed.
    pub taken: bool,
}

/// The result of a completed scalar run.
#[derive(Clone, PartialEq, Debug)]
pub struct RunResult {
    /// Total cycles under the documented timing model.
    pub cycles: u64,
    /// Dynamic instruction count (straight-line ops + branches + jumps).
    pub dyn_instrs: u64,
    /// Dynamic loads.
    pub dyn_loads: u64,
    /// Dynamic stores.
    pub dyn_stores: u64,
    /// Dynamic conditional branches.
    pub dyn_branches: u64,
    /// Dynamic unconditional jumps.
    pub dyn_jumps: u64,
    /// Final register file.
    pub regs: Vec<i64>,
    /// Final memory.
    pub memory: Memory,
    /// Dynamic branch trace (empty unless recording was enabled).
    pub branch_trace: Vec<BranchRecord>,
    /// Taken/not-taken counts per branch block.
    pub edge_profile: crate::EdgeProfile,
    /// Number of non-fatal (fault-once) faults handled.
    pub faults_handled: u64,
}

impl RunResult {
    /// The final values of the given registers, in order.
    pub fn reg_values(&self, regs: &[Reg]) -> Vec<i64> {
        regs.iter().map(|r| self.regs[r.index()]).collect()
    }

    /// The observable architectural result: `live_out` register values plus
    /// final memory cells.  Two executions are equivalent iff these match.
    pub fn observable(&self, live_out: &[Reg]) -> (Vec<i64>, Vec<i64>) {
        (self.reg_values(live_out), self.memory.cells().to_vec())
    }
}

/// A failed scalar run.
#[derive(Clone, PartialEq, Debug)]
pub enum RunError {
    /// A fatal memory fault (NULL or unmapped access) reached a
    /// non-speculative instruction.
    Fault {
        /// The faulting block.
        block: BlockId,
        /// Index of the faulting instruction within the block
        /// (`usize::MAX` for the terminator).
        instr: usize,
        /// The fault.
        fault: MemFault,
    },
    /// The configured cycle limit was exceeded.
    CycleLimit(u64),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Fault {
                block,
                instr,
                fault,
            } => {
                write!(f, "fatal {fault} at {block}[{instr}]")
            }
            RunError::CycleLimit(n) => write!(f, "cycle limit {n} exceeded"),
        }
    }
}

impl std::error::Error for RunError {}

/// The R3000-like scalar machine.
#[derive(Clone, Debug)]
pub struct ScalarMachine<'p> {
    prog: &'p ScalarProgram,
    config: ScalarConfig,
    regs: [i64; NUM_REGS],
    memory: Memory,
    touched_faults: BTreeSet<i64>,
}

impl<'p> ScalarMachine<'p> {
    /// Creates a machine over `prog` with the given configuration.
    pub fn new(prog: &'p ScalarProgram, config: ScalarConfig) -> ScalarMachine<'p> {
        let mut regs = [0i64; NUM_REGS];
        for &(r, v) in &prog.init_regs {
            regs[r.index()] = v;
        }
        ScalarMachine {
            prog,
            memory: Memory::from_image(&prog.memory),
            config,
            regs,
            touched_faults: BTreeSet::new(),
        }
    }

    /// Runs `prog` to completion with the default configuration.
    ///
    /// # Errors
    ///
    /// See [`ScalarMachine::run`].
    pub fn run_to_completion(prog: &ScalarProgram) -> Result<RunResult, RunError> {
        ScalarMachine::new(prog, ScalarConfig::default()).run()
    }

    fn read(&self, s: Src) -> i64 {
        match s {
            Src::Reg { reg, .. } => {
                if reg.is_zero() {
                    0
                } else {
                    self.regs[reg.index()]
                }
            }
            Src::Imm(v) => v,
        }
    }

    fn write_reg(&mut self, r: Reg, v: i64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Charges the fault-once penalty if `addr` is a configured faulting
    /// address not yet touched; returns the cycles charged.
    fn fault_cycles(&mut self, addr: i64, faults: &mut u64) -> u64 {
        if self.config.fault_once_addrs.contains(&addr) && self.touched_faults.insert(addr) {
            *faults += 1;
            self.config.fault_penalty
        } else {
            0
        }
    }

    /// Executes the program to completion.
    ///
    /// # Errors
    ///
    /// [`RunError::Fault`] on a fatal memory fault, [`RunError::CycleLimit`]
    /// if the configured limit is exceeded.
    pub fn run(mut self) -> Result<RunResult, RunError> {
        let mut cycles: u64 = 0;
        let mut dyn_instrs: u64 = 0;
        let (mut dyn_loads, mut dyn_stores, mut dyn_branches, mut dyn_jumps) =
            (0u64, 0u64, 0u64, 0u64);
        let mut faults: u64 = 0;
        let mut trace = Vec::new();
        let mut profile = crate::EdgeProfile::new(self.prog.blocks.len());
        let mut block = self.prog.entry;
        // Register whose value is still in the load delay slot.
        let mut pending_load: Option<Reg> = None;

        loop {
            let b = self.prog.block(block);
            for (i, op) in b.instrs.iter().enumerate() {
                if cycles > self.config.max_cycles {
                    return Err(RunError::CycleLimit(self.config.max_cycles));
                }
                if let Some(p) = pending_load.take() {
                    if op.used_regs().contains(&p) {
                        cycles += self.config.load_use_stall;
                    }
                }
                cycles += 1;
                dyn_instrs += 1;
                match *op {
                    Op::Alu { op, rd, a, b } => {
                        let v = op.apply(self.read(a), self.read(b));
                        self.write_reg(rd, v);
                    }
                    Op::Copy { rd, src } => {
                        let v = self.read(src);
                        self.write_reg(rd, v);
                    }
                    Op::Load {
                        rd, base, offset, ..
                    } => {
                        dyn_loads += 1;
                        let addr = self.read(base).wrapping_add(offset);
                        cycles += self.fault_cycles(addr, &mut faults);
                        let v = self.memory.read(addr).map_err(|fault| RunError::Fault {
                            block,
                            instr: i,
                            fault,
                        })?;
                        self.write_reg(rd, v);
                        pending_load = Some(rd);
                    }
                    Op::Store {
                        base,
                        offset,
                        value,
                        ..
                    } => {
                        dyn_stores += 1;
                        let addr = self.read(base).wrapping_add(offset);
                        cycles += self.fault_cycles(addr, &mut faults);
                        let v = self.read(value);
                        self.memory
                            .write(addr, v)
                            .map_err(|fault| RunError::Fault {
                                block,
                                instr: i,
                                fault,
                            })?;
                    }
                    Op::SetCond { .. } => {
                        unreachable!("scalar programs have no condition-set ops (validated)")
                    }
                    Op::Nop => {}
                }
            }

            if let Some(p) = pending_load.take() {
                if b.term.used_regs().contains(&p) {
                    cycles += self.config.load_use_stall;
                }
            }
            match b.term {
                Terminator::Jump(t) => {
                    cycles += 1;
                    dyn_instrs += 1;
                    dyn_jumps += 1;
                    block = t;
                }
                Terminator::Branch {
                    cmp,
                    a,
                    b: bb,
                    taken,
                    not_taken,
                } => {
                    cycles += 1;
                    dyn_instrs += 1;
                    dyn_branches += 1;
                    let t = cmp.apply(self.read(a), self.read(bb));
                    profile.record(block, t);
                    if self.config.record_branch_trace {
                        trace.push(BranchRecord { block, taken: t });
                    }
                    if t {
                        cycles += self.config.taken_branch_penalty;
                        block = taken;
                    } else {
                        block = not_taken;
                    }
                }
                Terminator::Halt => {
                    return Ok(RunResult {
                        cycles,
                        dyn_instrs,
                        dyn_loads,
                        dyn_stores,
                        dyn_branches,
                        dyn_jumps,
                        regs: self.regs.to_vec(),
                        memory: self.memory,
                        branch_trace: trace,
                        edge_profile: profile,
                        faults_handled: faults,
                    });
                }
            }
            if cycles > self.config.max_cycles {
                return Err(RunError::CycleLimit(self.config.max_cycles));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    /// for r1 in 0..5 { mem[base+r1] = r1*2 }; r2 = sum(mem)
    fn loop_program() -> ScalarProgram {
        let mut pb = ProgramBuilder::new("loop");
        pb.memory_size(64);
        let body = pb.new_block();
        let sum_init = pb.new_block();
        let sum_body = pb.new_block();
        let done = pb.new_block();
        pb.block_mut(body)
            .alu(AluOp::Mul, r(3), r(1), 2)
            .alu(AluOp::Add, r(4), r(1), 16)
            .store(r(4), 0, r(3), MemTag(1))
            .alu(AluOp::Add, r(1), r(1), 1)
            .branch(CmpOp::Lt, r(1), 5, body, sum_init);
        pb.block_mut(sum_init)
            .copy(r(1), 0)
            .copy(r(2), 0)
            .jump(sum_body);
        pb.block_mut(sum_body)
            .alu(AluOp::Add, r(4), r(1), 16)
            .load(r(3), r(4), 0, MemTag(1))
            .alu(AluOp::Add, r(2), r(2), r(3))
            .alu(AluOp::Add, r(1), r(1), 1)
            .branch(CmpOp::Lt, r(1), 5, sum_body, done);
        pb.block_mut(done).halt();
        pb.set_entry(body);
        pb.live_out([r(2)]);
        pb.finish().unwrap()
    }

    #[test]
    fn loop_computes_sum() {
        let p = loop_program();
        let res = ScalarMachine::run_to_completion(&p).unwrap();
        assert_eq!(res.regs[2], 2 + 4 + 6 + 8);
        assert_eq!(res.memory.read(18).unwrap(), 4);
    }

    #[test]
    fn branch_trace_and_profile() {
        let p = loop_program();
        let res = ScalarMachine::run_to_completion(&p).unwrap();
        // 5 iterations of each loop: 4 taken + 1 not-taken per loop.
        assert_eq!(res.branch_trace.len(), 10);
        assert_eq!(res.edge_profile.counts(BlockId(0)), (4, 1));
        assert_eq!(res.edge_profile.counts(BlockId(2)), (4, 1));
    }

    #[test]
    fn load_use_interlock_charged() {
        // load then immediately use -> 1 stall; with a gap -> none.
        let mut pb = ProgramBuilder::new("interlock");
        pb.memory_size(16);
        let b = pb.new_block();
        pb.block_mut(b)
            .load(r(1), 4, 0, MemTag::ANY)
            .alu(AluOp::Add, r(2), r(1), 1)
            .halt();
        pb.set_entry(b);
        let tight = ScalarMachine::run_to_completion(&pb.finish().unwrap()).unwrap();

        let mut pb2 = ProgramBuilder::new("gap");
        pb2.memory_size(16);
        let b = pb2.new_block();
        pb2.block_mut(b)
            .load(r(1), 4, 0, MemTag::ANY)
            .alu(AluOp::Add, r(3), r(5), 1)
            .alu(AluOp::Add, r(2), r(1), 1)
            .halt();
        pb2.set_entry(b);
        let gapped = ScalarMachine::run_to_completion(&pb2.finish().unwrap()).unwrap();

        assert_eq!(tight.cycles, 3); // load + stall + add
        assert_eq!(gapped.cycles, 3); // load + add + add, no stall
    }

    #[test]
    fn taken_branch_penalty_charged() {
        let mut pb = ProgramBuilder::new("taken");
        let a = pb.new_block();
        let b = pb.new_block();
        pb.block_mut(a).branch(CmpOp::Eq, 0, 0, b, b);
        pb.block_mut(b).halt();
        pb.set_entry(a);
        let res = ScalarMachine::run_to_completion(&pb.finish().unwrap()).unwrap();
        assert_eq!(res.cycles, 2); // branch + taken penalty

        let mut pb = ProgramBuilder::new("nottaken");
        let a = pb.new_block();
        let b = pb.new_block();
        pb.block_mut(a).branch(CmpOp::Ne, 0, 0, b, b);
        pb.block_mut(b).halt();
        pb.set_entry(a);
        let res = ScalarMachine::run_to_completion(&pb.finish().unwrap()).unwrap();
        assert_eq!(res.cycles, 1);
    }

    #[test]
    fn fatal_null_fault() {
        let mut pb = ProgramBuilder::new("null");
        let b = pb.new_block();
        pb.block_mut(b).load(r(1), 0, 0, MemTag::ANY).halt();
        pb.set_entry(b);
        let err = ScalarMachine::run_to_completion(&pb.finish().unwrap()).unwrap_err();
        assert!(matches!(
            err,
            RunError::Fault {
                fault: MemFault::Null,
                ..
            }
        ));
    }

    #[test]
    fn fault_once_costs_penalty_then_succeeds() {
        let mut pb = ProgramBuilder::new("pf");
        pb.memory_size(16);
        pb.mem_cell(4, 7);
        let b = pb.new_block();
        pb.block_mut(b)
            .load(r(1), 4, 0, MemTag::ANY)
            .load(r(2), 4, 0, MemTag::ANY)
            .halt();
        pb.set_entry(b);
        let p = pb.finish().unwrap();
        let mut cfg = ScalarConfig::default();
        cfg.fault_once_addrs.insert(4);
        cfg.fault_penalty = 50;
        let res = ScalarMachine::new(&p, cfg).run().unwrap();
        assert_eq!(res.regs[1], 7);
        assert_eq!(res.regs[2], 7);
        assert_eq!(res.faults_handled, 1);
        assert_eq!(res.cycles, 50 + 2); // penalty + two loads, no interlock
    }

    #[test]
    fn cycle_limit() {
        let mut pb = ProgramBuilder::new("inf");
        let b = pb.new_block();
        pb.block_mut(b).jump(b);
        pb.set_entry(b);
        let p = pb.finish().unwrap();
        let cfg = ScalarConfig {
            max_cycles: 100,
            ..ScalarConfig::default()
        };
        assert_eq!(
            ScalarMachine::new(&p, cfg).run(),
            Err(RunError::CycleLimit(100))
        );
    }

    #[test]
    fn zero_register_reads_zero_and_ignores_writes() {
        let mut pb = ProgramBuilder::new("zero");
        let b = pb.new_block();
        pb.block_mut(b)
            .copy(Reg::ZERO, 42)
            .alu(AluOp::Add, r(1), Reg::ZERO, 5)
            .halt();
        pb.set_entry(b);
        let res = ScalarMachine::run_to_completion(&pb.finish().unwrap()).unwrap();
        assert_eq!(res.regs[0], 0);
        assert_eq!(res.regs[1], 5);
    }

    #[test]
    fn observable_state() {
        let p = loop_program();
        let res = ScalarMachine::run_to_completion(&p).unwrap();
        let (regs, mem) = res.observable(&p.live_out);
        assert_eq!(regs, vec![20]);
        assert_eq!(mem.len(), 64);
    }
}
