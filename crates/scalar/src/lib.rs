//! The scalar reference machine: an R3000-like single-issue processor.
//!
//! This crate plays the role that the MIPS R3000 plus `pixie` play in the
//! paper's evaluation (Section 4): it executes [`ScalarProgram`]s, counts
//! cycles under a simple documented timing model, and records the dynamic
//! branch trace and edge profile that drive static branch prediction,
//! trace/region selection, and the Table 3 reproduction.
//!
//! It is also the workspace's *golden model*: every scheduler in
//! `psb-sched` must produce VLIW code whose architectural result (final
//! memory plus the program's `live_out` registers) matches the scalar
//! execution, and the differential tests enforce exactly that.
//!
//! # Timing model
//!
//! * every instruction: 1 cycle;
//! * loads have a two-cycle latency: if the immediately following
//!   instruction (or the block terminator) reads the load destination, one
//!   interlock stall cycle is charged (the R3000 load delay slot);
//! * a conditional branch costs 1 cycle, plus 1 penalty cycle when taken
//!   (static not-taken fetch); an unconditional jump costs 1 cycle;
//! * a first access to a configured *fault-once* address costs
//!   [`ScalarConfig::fault_penalty`] handler cycles and then succeeds (a
//!   page-fault-like non-fatal exception; the value semantics are
//!   unchanged).
//!
//! [`ScalarProgram`]: psb_isa::ScalarProgram

#![warn(missing_docs)]

mod machine;
mod profile;

pub use machine::{BranchRecord, RunError, RunResult, ScalarConfig, ScalarMachine};
pub use profile::{successive_accuracy, EdgeProfile};
