//! Edge profiles, static branch prediction, and the successive-branch
//! prediction-accuracy statistic of Table 3.

use crate::machine::BranchRecord;
use psb_isa::BlockId;

/// Taken/not-taken counts per branch block, gathered by a scalar run.
///
/// The schedulers use profiles from a *training* input to form static
/// predictions and to drive trace/region growth; the evaluation then runs a
/// different input, exactly as profile-guided static prediction works.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EdgeProfile {
    taken: Vec<u64>,
    not_taken: Vec<u64>,
}

impl EdgeProfile {
    /// An empty profile for a program with `num_blocks` blocks.
    pub fn new(num_blocks: usize) -> EdgeProfile {
        EdgeProfile {
            taken: vec![0; num_blocks],
            not_taken: vec![0; num_blocks],
        }
    }

    /// Records one dynamic outcome of `block`'s branch.
    pub fn record(&mut self, block: BlockId, taken: bool) {
        if taken {
            self.taken[block.index()] += 1;
        } else {
            self.not_taken[block.index()] += 1;
        }
    }

    /// `(taken, not_taken)` counts for a block.
    pub fn counts(&self, block: BlockId) -> (u64, u64) {
        (self.taken[block.index()], self.not_taken[block.index()])
    }

    /// Static prediction for a block: `true` = predict taken.  Blocks never
    /// executed predict not-taken (the static default).
    pub fn predict_taken(&self, block: BlockId) -> bool {
        self.taken[block.index()] > self.not_taken[block.index()]
    }

    /// Probability (0..=1) that the branch follows its predicted direction;
    /// 1.0 for never-executed branches.
    pub fn confidence(&self, block: BlockId) -> f64 {
        let (t, n) = self.counts(block);
        if t + n == 0 {
            1.0
        } else {
            t.max(n) as f64 / (t + n) as f64
        }
    }

    /// Probability (0..=1) that the taken edge is followed; 0.0 for
    /// never-executed branches.
    pub fn taken_fraction(&self, block: BlockId) -> f64 {
        let (t, n) = self.counts(block);
        if t + n == 0 {
            0.0
        } else {
            t as f64 / (t + n) as f64
        }
    }

    /// Execution count of the block's branch.
    pub fn executions(&self, block: BlockId) -> u64 {
        self.taken[block.index()] + self.not_taken[block.index()]
    }

    /// Total dynamic branches recorded.
    pub fn total(&self) -> u64 {
        self.taken.iter().sum::<u64>() + self.not_taken.iter().sum::<u64>()
    }

    /// Number of blocks this profile covers (the length of the count
    /// vectors), for codecs that serialize the profile block by block.
    pub fn num_blocks(&self) -> usize {
        self.taken.len()
    }

    /// Rebuilds a profile from per-block `(taken, not_taken)` counts —
    /// the inverse of reading every block's [`EdgeProfile::counts`].
    /// Used by the on-disk artifact store's codec.
    pub fn from_counts(counts: Vec<(u64, u64)>) -> EdgeProfile {
        let (taken, not_taken) = counts.into_iter().unzip();
        EdgeProfile { taken, not_taken }
    }
}

/// Computes the prediction accuracy for `1..=max_n` *successive* branches:
/// entry `n-1` is the fraction of length-`n` windows of the dynamic branch
/// trace in which every branch goes its statically predicted direction.
///
/// This reproduces Table 3 of the paper, which reports how quickly the
/// probability of correctly predicting a whole path decays with path depth
/// — the quantity that separates trace predicating from region
/// predicating.
///
/// Predictions come from `predictor` (typically
/// [`EdgeProfile::predict_taken`] on a training profile).
///
/// Returns an empty vector if the trace has fewer than `max_n` branches.
pub fn successive_accuracy(
    trace: &[BranchRecord],
    predictor: impl Fn(BlockId) -> bool,
    max_n: usize,
) -> Vec<f64> {
    if trace.len() < max_n || max_n == 0 {
        return Vec::new();
    }
    let correct: Vec<bool> = trace
        .iter()
        .map(|b| predictor(b.block) == b.taken)
        .collect();
    // run[i] = number of consecutive correct predictions starting at i.
    let mut run = vec![0u32; correct.len() + 1];
    for i in (0..correct.len()).rev() {
        run[i] = if correct[i] { run[i + 1] + 1 } else { 0 };
    }
    (1..=max_n)
        .map(|n| {
            let windows = correct.len() + 1 - n;
            let hits = (0..windows).filter(|&i| run[i] as usize >= n).count();
            hits as f64 / windows as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(block: u32, taken: bool) -> BranchRecord {
        BranchRecord {
            block: BlockId(block),
            taken,
        }
    }

    #[test]
    fn profile_counts_and_prediction() {
        let mut p = EdgeProfile::new(2);
        for _ in 0..7 {
            p.record(BlockId(0), true);
        }
        for _ in 0..3 {
            p.record(BlockId(0), false);
        }
        assert_eq!(p.counts(BlockId(0)), (7, 3));
        assert!(p.predict_taken(BlockId(0)));
        assert!((p.confidence(BlockId(0)) - 0.7).abs() < 1e-12);
        assert!((p.taken_fraction(BlockId(0)) - 0.7).abs() < 1e-12);
        assert!(!p.predict_taken(BlockId(1)));
        assert_eq!(p.confidence(BlockId(1)), 1.0);
        assert_eq!(p.total(), 10);
    }

    #[test]
    fn successive_accuracy_perfect() {
        let trace: Vec<BranchRecord> = (0..10).map(|_| rec(0, true)).collect();
        let acc = successive_accuracy(&trace, |_| true, 4);
        assert_eq!(acc, vec![1.0; 4]);
    }

    #[test]
    fn successive_accuracy_alternating() {
        // Prediction always-taken; trace alternates T,F,T,F,...
        let trace: Vec<BranchRecord> = (0..8).map(|i| rec(0, i % 2 == 0)).collect();
        let acc = successive_accuracy(&trace, |_| true, 2);
        assert!((acc[0] - 0.5).abs() < 1e-12);
        assert_eq!(acc[1], 0.0); // never two correct in a row
    }

    #[test]
    fn successive_accuracy_decays_multiplicatively() {
        // Deterministic pattern: 3 correct then 1 wrong, repeated.
        let trace: Vec<BranchRecord> = (0..400).map(|i| rec(0, i % 4 != 3)).collect();
        let acc = successive_accuracy(&trace, |_| true, 3);
        assert!((acc[0] - 0.75).abs() < 0.01);
        assert!(acc[1] < acc[0]);
        assert!(acc[2] < acc[1]);
    }

    #[test]
    fn short_trace_returns_empty() {
        let trace = vec![rec(0, true)];
        assert!(successive_accuracy(&trace, |_| true, 4).is_empty());
        assert!(successive_accuracy(&trace, |_| true, 0).is_empty());
    }

    #[test]
    fn per_block_predictor() {
        // Block 0 biased taken, block 1 biased not-taken.
        let mut trace = Vec::new();
        for _ in 0..10 {
            trace.push(rec(0, true));
            trace.push(rec(1, false));
        }
        let acc = successive_accuracy(&trace, |b| b == BlockId(0), 2);
        assert_eq!(acc, vec![1.0, 1.0]);
    }
}
