//! Property tests for the profiling statistics that drive Table 3 and
//! the schedulers' static prediction.

use proptest::prelude::*;
use psb_isa::BlockId;
use psb_scalar::{successive_accuracy, BranchRecord, EdgeProfile};

fn trace_strategy() -> impl Strategy<Value = Vec<BranchRecord>> {
    proptest::collection::vec(
        (0u32..6, any::<bool>()).prop_map(|(b, t)| BranchRecord {
            block: BlockId(b),
            taken: t,
        }),
        8..200,
    )
}

proptest! {
    #[test]
    fn accuracy_is_a_probability_and_decays(trace in trace_strategy()) {
        let acc = successive_accuracy(&trace, |_| true, 8);
        prop_assert_eq!(acc.len(), 8);
        for a in &acc {
            prop_assert!((0.0..=1.0).contains(a));
        }
        for w in acc.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12, "longer windows cannot be easier");
        }
    }

    #[test]
    fn depth_one_accuracy_is_the_hit_rate(trace in trace_strategy()) {
        let acc = successive_accuracy(&trace, |_| true, 1);
        let hits = trace.iter().filter(|b| b.taken).count();
        prop_assert!((acc[0] - hits as f64 / trace.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictor_scores_one(trace in trace_strategy()) {
        // An oracle that replays the trace is impossible with a static
        // per-block predictor, so test with a constant-direction trace.
        let all_taken: Vec<BranchRecord> =
            trace.iter().map(|b| BranchRecord { block: b.block, taken: true }).collect();
        let acc = successive_accuracy(&all_taken, |_| true, 4);
        prop_assert!(acc.iter().all(|&a| a == 1.0));
    }

    #[test]
    fn profile_counts_are_consistent(trace in trace_strategy()) {
        let mut p = EdgeProfile::new(6);
        for b in &trace {
            p.record(b.block, b.taken);
        }
        prop_assert_eq!(p.total() as usize, trace.len());
        for i in 0..6u32 {
            let (t, n) = p.counts(BlockId(i));
            prop_assert_eq!(p.executions(BlockId(i)), t + n);
            // The majority predictor is at least as good as either
            // constant predictor on this block.
            if t + n > 0 {
                let conf = p.confidence(BlockId(i));
                prop_assert!(conf >= 0.5);
                prop_assert!(
                    (conf - (t.max(n) as f64 / (t + n) as f64)).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn majority_predictor_maximises_depth_one_accuracy(trace in trace_strategy()) {
        let mut p = EdgeProfile::new(6);
        for b in &trace {
            p.record(b.block, b.taken);
        }
        let majority = successive_accuracy(&trace, |b| p.predict_taken(b), 1);
        let taken = successive_accuracy(&trace, |_| true, 1);
        let not_taken = successive_accuracy(&trace, |_| false, 1);
        prop_assert!(majority[0] + 1e-12 >= taken[0]);
        prop_assert!(majority[0] + 1e-12 >= not_taken[0]);
    }
}
