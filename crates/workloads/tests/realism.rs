//! Realism checks on the kernels: instruction mixes and structural
//! properties stay in the bands that justify the Table 2 substitution
//! (see DESIGN.md §2).

use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_workloads::{all_workloads_sized, by_name};

struct Mix {
    loads: f64,
    stores: f64,
    branches: f64,
}

fn mix_of(name: &str) -> Mix {
    let w = by_name(name, 77, 2048).unwrap();
    let r = ScalarMachine::new(&w.program, ScalarConfig::default())
        .run()
        .unwrap();
    let t = r.dyn_instrs as f64;
    Mix {
        loads: r.dyn_loads as f64 / t,
        stores: r.dyn_stores as f64 / t,
        branches: r.dyn_branches as f64 / t,
    }
}

#[test]
fn kernels_are_memory_and_branch_realistic() {
    for name in ["compress", "eqntott", "espresso", "grep", "li", "nroff"] {
        let m = mix_of(name);
        assert!(
            (0.10..=0.45).contains(&m.loads),
            "{name}: load fraction {:.2} outside the integer-code band",
            m.loads
        );
        assert!(
            (0.08..=0.40).contains(&m.branches),
            "{name}: branch fraction {:.2} outside the integer-code band",
            m.branches
        );
        assert!(
            m.stores <= 0.20,
            "{name}: store fraction {:.2} too high",
            m.stores
        );
    }
}

#[test]
fn pointer_chasing_dominates_li() {
    // The lisp-interpreter model is the load-heaviest kernel.
    let li = mix_of("li");
    for other in ["compress", "eqntott", "espresso", "grep", "nroff"] {
        assert!(li.loads > mix_of(other).loads, "li must out-load {other}");
    }
}

#[test]
fn compress_and_nroff_write_memory() {
    assert!(
        mix_of("compress").stores > 0.0,
        "compress inserts table entries"
    );
    assert!(mix_of("nroff").stores > 0.05, "nroff emits output text");
}

#[test]
fn sizes_scale_linearly() {
    for name in ["compress", "grep"] {
        let small = by_name(name, 3, 512).unwrap();
        let large = by_name(name, 3, 2048).unwrap();
        let a = ScalarMachine::new(&small.program, ScalarConfig::default())
            .run()
            .unwrap();
        let b = ScalarMachine::new(&large.program, ScalarConfig::default())
            .run()
            .unwrap();
        let ratio = b.cycles as f64 / a.cycles as f64;
        assert!(
            (3.0..=5.0).contains(&ratio),
            "{name}: 4x input should be ~4x cycles, got {ratio:.2}"
        );
    }
}

#[test]
fn all_kernels_terminate_quickly_at_any_size() {
    for n in [8usize, 33, 100] {
        for w in all_workloads_sized(5, n) {
            let r = ScalarMachine::new(&w.program, ScalarConfig::default())
                .run()
                .unwrap_or_else(|e| panic!("{} at n={n}: {e}", w.name));
            assert!(r.cycles > 0);
        }
    }
}
