//! `espresso`-like kernel: cube-intersection sweeps over bit vectors.
//!
//! Intersect two covers word by word, counting empty intersections and
//! accumulating a population-count-style signature of the non-empty ones.
//! The emptiness branch is biased near 0.85 (Table 3).

use crate::Workload;
use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TAG_A: MemTag = MemTag(1);
const TAG_B: MemTag = MemTag(2);
const TAG_OUT: MemTag = MemTag(3);

const BASE_A: i64 = 16;

/// Builds the `espresso` kernel over `n` cube words.
pub fn espresso_like_sized(seed: u64, n: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE59);
    let n = n.max(4) as i64;
    let base_b = BASE_A + n;
    let base_out = base_b + n;
    let r = Reg::new;
    let (i, a, b, c, d, e, empties, sig, len) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));

    let mut pb = ProgramBuilder::new("espresso");
    pb.memory_size(base_out + n + 8);
    for k in 0..n {
        // ~15% of intersections are empty.
        let av: i64 = rng.gen_range(1..4096);
        let bv = if rng.gen_bool(0.15) {
            !av & 4095
        } else {
            rng.gen_range(1i64..4096) | av
        };
        pb.mem_cell(BASE_A + k, av);
        pb.mem_cell(base_b + k, bv);
    }
    pb.init_reg(len, n);

    let entry = pb.new_block();
    let body = pb.new_block();
    let empty = pb.new_block();
    let live = pb.new_block();
    let cont = pb.new_block();
    let done = pb.new_block();

    pb.block_mut(entry)
        .copy(i, 0)
        .copy(empties, 0)
        .copy(sig, 0)
        .jump(body);
    pb.block_mut(body)
        .load(a, i, BASE_A, TAG_A)
        .load(b, i, base_b, TAG_B)
        .alu(AluOp::And, c, a, b)
        .branch(CmpOp::Eq, c, 0, empty, live);
    pb.block_mut(empty)
        .alu(AluOp::Add, empties, empties, 1)
        .jump(cont);
    pb.block_mut(live)
        .store(i, base_out, c, TAG_OUT)
        .alu(AluOp::Or, d, a, b)
        .alu(AluOp::And, e, d, 0x555)
        .alu(AluOp::Srl, d, d, 1)
        .alu(AluOp::And, d, d, 0x555)
        .alu(AluOp::Add, e, e, d)
        .alu(AluOp::Add, sig, sig, e)
        .jump(cont);
    pb.block_mut(cont)
        .alu(AluOp::Add, i, i, 1)
        .branch(CmpOp::Lt, i, len, body, done);
    pb.block_mut(done).halt();
    pb.set_entry(entry);
    pb.live_out([empties, sig]);

    Workload {
        name: "espresso",
        description: "cube-intersection bit sweeps (PLA optimisation)",
        program: pb.finish().expect("espresso kernel is well-formed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_scalar::ScalarMachine;

    fn reference(w: &Workload, n: i64) -> (i64, i64) {
        let base_b = BASE_A + n;
        let base_out = base_b + n;
        let mut mem = vec![0i64; (base_out + n + 8) as usize];
        for &(a, v) in &w.program.memory.cells {
            mem[a as usize] = v;
        }
        let (mut empties, mut sig) = (0i64, 0i64);
        for k in 0..n {
            let a = mem[(BASE_A + k) as usize];
            let b = mem[(base_b + k) as usize];
            let c = a & b;
            if c == 0 {
                empties += 1;
            } else {
                let d = a | b;
                let e = (d & 0x555) + ((d >> 1) & 0x555);
                sig += e;
            }
        }
        (empties, sig)
    }

    #[test]
    fn matches_reference_semantics() {
        for seed in [4, 11, 99] {
            let w = espresso_like_sized(seed, 300);
            let res = ScalarMachine::run_to_completion(&w.program).unwrap();
            let (empties, sig) = reference(&w, 300);
            assert_eq!(res.regs[7], empties, "seed {seed}");
            assert_eq!(res.regs[8], sig, "seed {seed}");
        }
    }

    #[test]
    fn branch_accuracy_in_band() {
        let w = espresso_like_sized(6, 2000);
        let res = ScalarMachine::run_to_completion(&w.program).unwrap();
        let profile = &res.edge_profile;
        let acc =
            psb_scalar::successive_accuracy(&res.branch_trace, |b| profile.predict_taken(b), 1);
        assert!(
            acc[0] > 0.78 && acc[0] < 0.96,
            "espresso single-branch accuracy {} outside the Table 3 band",
            acc[0]
        );
    }
}
