//! Synthetic benchmark kernels modelling the paper's evaluation suite.
//!
//! The paper evaluates three SPEC benchmarks and three UNIX utilities
//! (Table 2): `compress`, `eqntott`, `espresso`, `grep`, `li`, `nroff`.
//! We cannot compile those C programs to our ISA, so each kernel here is a
//! hand-written scalar program reproducing the dynamic character that the
//! evaluation actually depends on:
//!
//! * the **instruction mix** (load/store/ALU/branch ratios) and **control
//!   structure** (hash probes, early-exit comparison loops, bit-vector
//!   sweeps, character scans, pointer chasing, character formatting);
//! * the **branch predictability** of Table 3 — `grep` and `nroff` are
//!   extremely predictable (≥ 0.97 per branch), the others sit near
//!   0.85–0.88, which is what separates trace predicating from region
//!   predicating (Section 4.2.2);
//! * the **unsafe-load structure**: `li` traverses a linked list whose
//!   speculatively hoisted next-cell dereference faults on NULL in the
//!   final iteration — the paper's motivating example for buffered
//!   speculative exceptions (Section 2.1).
//!
//! Inputs are generated from a seed; different seeds give the training and
//! evaluation runs used for profile-guided static prediction.

#![warn(missing_docs)]

mod compress;
mod eqntott;
mod espresso;
mod grep;
mod li;
mod nroff;

pub use compress::compress_like_sized;
pub use eqntott::eqntott_like_sized;
pub use espresso::espresso_like_sized;
pub use grep::grep_like_sized;
pub use li::li_like_sized;
pub use nroff::nroff_like_sized;

use psb_isa::ScalarProgram;

/// A benchmark kernel: a program plus its identity in reports.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name matching the paper's Table 2 (`compress`, `eqntott`, …).
    pub name: &'static str,
    /// One-line description of what the kernel models.
    pub description: &'static str,
    /// The scalar program (scheduler input and golden-model subject).
    pub program: ScalarProgram,
}

/// Default problem size used by the `*_like` constructors.
pub const DEFAULT_SIZE: usize = 2048;

macro_rules! default_ctor {
    ($(#[$doc:meta])* $name:ident, $sized:ident) => {
        $(#[$doc])*
        pub fn $name(seed: u64) -> Workload {
            $sized(seed, DEFAULT_SIZE)
        }
    };
}

default_ctor!(
    /// LZW-style hash-table probe loop (models `compress`).
    compress_like,
    compress_like_sized
);
default_ctor!(
    /// Early-exit bit-vector comparison loop (models `eqntott`'s `cmppt`).
    eqntott_like,
    eqntott_like_sized
);
default_ctor!(
    /// Cube-intersection bit sweeps (models `espresso`).
    espresso_like,
    espresso_like_sized
);
default_ctor!(
    /// First-character string scan (models `grep`).
    grep_like,
    grep_like_sized
);
default_ctor!(
    /// Linked-list traversal with type dispatch (models `li`).
    li_like,
    li_like_sized
);
default_ctor!(
    /// Character-formatting loop (models `nroff`).
    nroff_like,
    nroff_like_sized
);

/// All six kernels at size `n`, in the paper's Table 2 order.
pub fn all_workloads_sized(seed: u64, n: usize) -> Vec<Workload> {
    vec![
        compress_like_sized(seed, n),
        eqntott_like_sized(seed, n),
        espresso_like_sized(seed, n),
        grep_like_sized(seed, n),
        li_like_sized(seed, n),
        nroff_like_sized(seed, n),
    ]
}

/// All six kernels at the default size.
pub fn all_workloads(seed: u64) -> Vec<Workload> {
    all_workloads_sized(seed, DEFAULT_SIZE)
}

/// Looks a kernel up by its Table 2 name.
pub fn by_name(name: &str, seed: u64, n: usize) -> Option<Workload> {
    match name {
        "compress" => Some(compress_like_sized(seed, n)),
        "eqntott" => Some(eqntott_like_sized(seed, n)),
        "espresso" => Some(espresso_like_sized(seed, n)),
        "grep" => Some(grep_like_sized(seed, n)),
        "li" => Some(li_like_sized(seed, n)),
        "nroff" => Some(nroff_like_sized(seed, n)),
        _ => None,
    }
}
