//! `eqntott`-like kernel: early-exit comparison of product-term vectors.
//!
//! `eqntott` spends most of its time in `cmppt`, comparing pairs of bit
//! vectors word by word with an early exit on the first difference.  The
//! early-exit branches are biased but not extreme (~0.87 single-branch
//! accuracy in Table 3): most words compare equal, and the deciding
//! difference appears at an input-dependent position.

use crate::Workload;
use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TAG_A: MemTag = MemTag(1);
const TAG_B: MemTag = MemTag(2);

/// Words per product term.
const TERM_LEN: i64 = 4;
const BASE_A: i64 = 16;

/// Builds the `eqntott` kernel over `n / TERM_LEN` term pairs.
pub fn eqntott_like_sized(seed: u64, n: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE9707);
    let pairs = (n as i64 / TERM_LEN).max(2);
    let words = pairs * TERM_LEN;
    let base_b = BASE_A + words;
    let r = Reg::new;
    let (i, j, a, b, acc, off, npairs, rowbase) = (r(1), r(2), r(3), r(4), r(5), r(6), r(8), r(10));

    let mut pb = ProgramBuilder::new("eqntott");
    pb.memory_size(base_b + words + 8);
    for p in 0..pairs {
        // Terms are equal up to a random (usually late or absent)
        // difference position.
        let diff_at = if rng.gen_bool(0.45) {
            TERM_LEN // equal terms
        } else {
            rng.gen_range(0..TERM_LEN)
        };
        for w in 0..TERM_LEN {
            let av: i64 = rng.gen_range(0..64);
            let bv = if w < diff_at {
                av
            } else if w == diff_at {
                // Force a difference with random direction.
                if rng.gen_bool(0.5) {
                    av + rng.gen_range(1i64..8)
                } else {
                    (av - rng.gen_range(1i64..8)).max(-64)
                }
            } else {
                rng.gen_range(0..64)
            };
            pb.mem_cell(BASE_A + p * TERM_LEN + w, av);
            pb.mem_cell(base_b + p * TERM_LEN + w, bv);
        }
    }
    pb.init_reg(npairs, pairs);

    let entry = pb.new_block();
    let outer = pb.new_block();
    let inner = pb.new_block();
    let ge = pb.new_block();
    let less = pb.new_block();
    let greater = pb.new_block();
    let advance = pb.new_block();
    let next = pb.new_block();
    let done = pb.new_block();

    pb.block_mut(entry).copy(i, 0).copy(acc, 0).jump(outer);
    pb.block_mut(outer)
        .copy(j, 0)
        .alu(AluOp::Mul, rowbase, i, TERM_LEN)
        .jump(inner);
    pb.block_mut(inner)
        .alu(AluOp::Add, off, rowbase, j)
        .load(a, off, BASE_A, TAG_A)
        .load(b, off, base_b, TAG_B)
        .branch(CmpOp::Lt, a, b, less, ge);
    pb.block_mut(ge).branch(CmpOp::Gt, a, b, greater, advance);
    pb.block_mut(advance)
        .alu(AluOp::Add, j, j, 1)
        .branch(CmpOp::Lt, j, TERM_LEN, inner, next);
    pb.block_mut(less).alu(AluOp::Sub, acc, acc, 1).jump(next);
    pb.block_mut(greater)
        .alu(AluOp::Add, acc, acc, 1)
        .jump(next);
    pb.block_mut(next)
        .alu(AluOp::Add, i, i, 1)
        .branch(CmpOp::Lt, i, npairs, outer, done);
    pb.block_mut(done).halt();
    pb.set_entry(entry);
    pb.live_out([acc]);

    Workload {
        name: "eqntott",
        description: "early-exit product-term comparison (boolean minimisation)",
        program: pb.finish().expect("eqntott kernel is well-formed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_scalar::ScalarMachine;

    fn reference(w: &Workload, pairs: i64) -> i64 {
        let base_b = BASE_A + pairs * TERM_LEN;
        let size = (base_b + pairs * TERM_LEN + 8) as usize;
        let mut mem = vec![0i64; size];
        for &(a, v) in &w.program.memory.cells {
            mem[a as usize] = v;
        }
        let mut acc = 0i64;
        for p in 0..pairs {
            for wd in 0..TERM_LEN {
                let a = mem[(BASE_A + p * TERM_LEN + wd) as usize];
                let b = mem[(base_b + p * TERM_LEN + wd) as usize];
                if a < b {
                    acc -= 1;
                    break;
                }
                if a > b {
                    acc += 1;
                    break;
                }
            }
        }
        acc
    }

    #[test]
    fn matches_reference_semantics() {
        for seed in [2, 9, 77] {
            let w = eqntott_like_sized(seed, 400);
            let res = ScalarMachine::run_to_completion(&w.program).unwrap();
            assert_eq!(res.regs[5], reference(&w, 100), "seed {seed}");
        }
    }

    #[test]
    fn branch_accuracy_in_band() {
        let w = eqntott_like_sized(5, 2000);
        let res = ScalarMachine::run_to_completion(&w.program).unwrap();
        let profile = &res.edge_profile;
        let acc =
            psb_scalar::successive_accuracy(&res.branch_trace, |b| profile.predict_taken(b), 1);
        assert!(
            acc[0] > 0.75 && acc[0] < 0.95,
            "eqntott single-branch accuracy {} outside the Table 3 band",
            acc[0]
        );
    }
}
