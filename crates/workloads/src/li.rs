//! `li`-like kernel: linked-list traversal with type dispatch.
//!
//! A lisp interpreter's hot loops chase `cons` cells and dispatch on type
//! tags.  The kernel walks a list of `[tag, value, next]` cells laid out
//! in shuffled order, accumulating differently per tag.  The body is
//! unrolled twice, so the second cell's loads sit below the first cell's
//! NULL check — exactly the unsafe code motion of Section 2.1: a region
//! scheduler hoists the dereference above the exit branch, and in the
//! final iteration that speculative load dereferences NULL and must be
//! buffered and squashed, never handled.

use crate::Workload;
use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const TAG_CELLS: MemTag = MemTag(1);
const BASE: i64 = 16;
const TAG_INT: i64 = 1;

/// Builds the `li` kernel over a list of `n / 2` cells.
pub fn li_like_sized(seed: u64, n: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11);
    let cells = (n as i64 / 2).max(4);
    let r = Reg::new;
    let (ptr, sum, tag, val) = (r(1), r(2), r(4), r(5));

    let mut pb = ProgramBuilder::new("li");
    pb.memory_size(BASE + cells * 3 + 8);
    // Shuffled cell order defeats any accidental spatial regularity.
    let mut order: Vec<i64> = (0..cells).collect();
    order.shuffle(&mut rng);
    for (pos, &cell) in order.iter().enumerate() {
        let addr = BASE + cell * 3;
        let t = if rng.gen_bool(0.85) { TAG_INT } else { 2 };
        let v = rng.gen_range(-30..30);
        let next = if pos + 1 < order.len() {
            BASE + order[pos + 1] * 3
        } else {
            0
        };
        pb.mem_cell(addr, t);
        if v != 0 {
            pb.mem_cell(addr + 1, v);
        }
        if next != 0 {
            pb.mem_cell(addr + 2, next);
        }
    }
    pb.init_reg(ptr, BASE + order[0] * 3);

    let entry = pb.new_block();
    let cell_a = pb.new_block();
    let int_a = pb.new_block();
    let other_a = pb.new_block();
    let next_a = pb.new_block();
    let cell_b = pb.new_block();
    let int_b = pb.new_block();
    let other_b = pb.new_block();
    let next_b = pb.new_block();
    let done = pb.new_block();

    pb.block_mut(entry).copy(sum, 0).jump(cell_a);
    pb.block_mut(cell_a).load(tag, ptr, 0, TAG_CELLS).branch(
        CmpOp::Eq,
        tag,
        TAG_INT,
        int_a,
        other_a,
    );
    pb.block_mut(int_a)
        .load(val, ptr, 1, TAG_CELLS)
        .alu(AluOp::Add, sum, sum, val)
        .jump(next_a);
    pb.block_mut(other_a)
        .load(val, ptr, 1, TAG_CELLS)
        .alu(AluOp::Xor, sum, sum, val)
        .jump(next_a);
    pb.block_mut(next_a)
        .load(ptr, ptr, 2, TAG_CELLS)
        .branch(CmpOp::Eq, ptr, 0, done, cell_b);
    pb.block_mut(cell_b).load(tag, ptr, 0, TAG_CELLS).branch(
        CmpOp::Eq,
        tag,
        TAG_INT,
        int_b,
        other_b,
    );
    pb.block_mut(int_b)
        .load(val, ptr, 1, TAG_CELLS)
        .alu(AluOp::Add, sum, sum, val)
        .jump(next_b);
    pb.block_mut(other_b)
        .load(val, ptr, 1, TAG_CELLS)
        .alu(AluOp::Xor, sum, sum, val)
        .jump(next_b);
    pb.block_mut(next_b)
        .load(ptr, ptr, 2, TAG_CELLS)
        .branch(CmpOp::Eq, ptr, 0, done, cell_a);
    pb.block_mut(done).halt();
    pb.set_entry(entry);
    pb.live_out([sum]);

    Workload {
        name: "li",
        description: "linked-list traversal with type dispatch (lisp interpreter)",
        program: pb.finish().expect("li kernel is well-formed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_scalar::ScalarMachine;

    fn reference(w: &Workload) -> i64 {
        let size = w.program.memory.size as usize;
        let mut mem = vec![0i64; size];
        for &(a, v) in &w.program.memory.cells {
            mem[a as usize] = v;
        }
        let mut ptr = w
            .program
            .init_regs
            .iter()
            .find(|&&(r, _)| r == Reg::new(1))
            .unwrap()
            .1;
        let mut sum = 0i64;
        while ptr != 0 {
            let t = mem[ptr as usize];
            let v = mem[(ptr + 1) as usize];
            if t == TAG_INT {
                sum += v;
            } else {
                sum ^= v;
            }
            ptr = mem[(ptr + 2) as usize];
        }
        sum
    }

    #[test]
    fn matches_reference_semantics() {
        for seed in [3, 12, 31] {
            let w = li_like_sized(seed, 600);
            let res = ScalarMachine::run_to_completion(&w.program).unwrap();
            assert_eq!(res.regs[2], reference(&w), "seed {seed}");
        }
    }

    #[test]
    fn dispatch_branch_in_band() {
        let w = li_like_sized(9, 3000);
        let res = ScalarMachine::run_to_completion(&w.program).unwrap();
        let profile = &res.edge_profile;
        let acc =
            psb_scalar::successive_accuracy(&res.branch_trace, |b| profile.predict_taken(b), 1);
        assert!(
            acc[0] > 0.80 && acc[0] < 0.97,
            "li single-branch accuracy {} outside the Table 3 band",
            acc[0]
        );
    }
}
