//! `nroff`-like kernel: character formatting with line filling.
//!
//! Transform pairs of input characters (case-fold-style bit games), emit
//! them to the output buffer, track the output column, and start a new
//! line on a (rare) newline character or when the line overflows.  All
//! conditions are heavily biased (~0.98 per branch, Table 3) — the other
//! extremely predictable benchmark alongside `grep`.

use crate::Workload;
use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TAG_TXT: MemTag = MemTag(1);
const TAG_OUT: MemTag = MemTag(2);
const TAG_LINES: MemTag = MemTag(3);

const BASE_TXT: i64 = 16;
const NEWLINE: i64 = 10;
const WIDTH: i64 = 72;

/// Builds the `nroff` kernel over `n` input characters.
pub fn nroff_like_sized(seed: u64, n: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x40FF);
    // Two characters per pass.
    let n = ((n.max(8) as i64) / 2) * 2;
    let base_out = BASE_TXT + n;
    let base_lines = base_out + n;
    let r = Reg::new;
    let (i, col, lines, ch0, ch1, t0, t1, len) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));

    let mut pb = ProgramBuilder::new("nroff");
    pb.memory_size(base_lines + n / 8 + 16);
    for k in 0..n {
        // ~1.5% newlines; printable text otherwise.
        let v = if rng.gen_bool(0.015) {
            NEWLINE
        } else {
            rng.gen_range(32..127)
        };
        pb.mem_cell(BASE_TXT + k, v);
    }
    pb.init_reg(len, n);

    let entry = pb.new_block();
    let body = pb.new_block();
    let nl0 = pb.new_block();
    let no0 = pb.new_block();
    let chk1 = pb.new_block();
    let nl1 = pb.new_block();
    let no1 = pb.new_block();
    let fit = pb.new_block();
    let wrap = pb.new_block();
    let cont = pb.new_block();
    let done = pb.new_block();

    pb.block_mut(entry)
        .copy(i, 0)
        .copy(col, 0)
        .copy(lines, 0)
        .jump(body);
    // Transform and emit two characters; the transforms are independent.
    pb.block_mut(body)
        .load(ch0, i, BASE_TXT, TAG_TXT)
        .load(ch1, i, BASE_TXT + 1, TAG_TXT)
        .alu(AluOp::Xor, t0, ch0, 32)
        .alu(AluOp::And, t0, t0, 127)
        .alu(AluOp::Xor, t1, ch1, 32)
        .alu(AluOp::And, t1, t1, 127)
        .store(i, base_out, t0, TAG_OUT)
        .store(i, base_out + 1, t1, TAG_OUT)
        .branch(CmpOp::Eq, ch0, NEWLINE, nl0, no0);
    pb.block_mut(nl0)
        .store(lines, base_lines, col, TAG_LINES)
        .alu(AluOp::Add, lines, lines, 1)
        .copy(col, 0)
        .jump(chk1);
    pb.block_mut(no0).alu(AluOp::Add, col, col, 1).jump(chk1);
    pb.block_mut(chk1).branch(CmpOp::Eq, ch1, NEWLINE, nl1, no1);
    pb.block_mut(nl1)
        .store(lines, base_lines, col, TAG_LINES)
        .alu(AluOp::Add, lines, lines, 1)
        .copy(col, 0)
        .jump(cont);
    pb.block_mut(no1)
        .alu(AluOp::Add, col, col, 1)
        .branch(CmpOp::Gt, col, WIDTH, wrap, fit);
    pb.block_mut(wrap)
        .store(lines, base_lines, col, TAG_LINES)
        .alu(AluOp::Add, lines, lines, 1)
        .copy(col, 0)
        .jump(cont);
    pb.block_mut(fit).jump(cont);
    pb.block_mut(cont)
        .alu(AluOp::Add, i, i, 2)
        .branch(CmpOp::Lt, i, len, body, done);
    pb.block_mut(done).halt();
    pb.set_entry(entry);
    pb.live_out([col, lines]);

    Workload {
        name: "nroff",
        description: "character formatting with line filling (document formatter)",
        program: pb.finish().expect("nroff kernel is well-formed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_scalar::ScalarMachine;

    fn reference(w: &Workload, n: i64) -> (i64, i64) {
        let mut mem = vec![0i64; w.program.memory.size as usize];
        for &(a, v) in &w.program.memory.cells {
            mem[a as usize] = v;
        }
        let (mut col, mut lines) = (0i64, 0i64);
        for pair in 0..(n / 2) {
            let ch0 = mem[(BASE_TXT + pair * 2) as usize];
            let ch1 = mem[(BASE_TXT + pair * 2 + 1) as usize];
            if ch0 == NEWLINE {
                lines += 1;
                col = 0;
            } else {
                col += 1;
            }
            if ch1 == NEWLINE {
                lines += 1;
                col = 0;
            } else {
                col += 1;
                if col > WIDTH {
                    lines += 1;
                    col = 0;
                }
            }
        }
        (col, lines)
    }

    #[test]
    fn matches_reference_semantics() {
        for seed in [6, 21, 88] {
            let w = nroff_like_sized(seed, 1200);
            let res = ScalarMachine::run_to_completion(&w.program).unwrap();
            let (col, lines) = reference(&w, 1200);
            assert_eq!(res.regs[2], col, "seed {seed}");
            assert_eq!(res.regs[3], lines, "seed {seed}");
        }
    }

    #[test]
    fn branches_highly_predictable() {
        let w = nroff_like_sized(4, 3000);
        let res = ScalarMachine::run_to_completion(&w.program).unwrap();
        let profile = &res.edge_profile;
        let acc =
            psb_scalar::successive_accuracy(&res.branch_trace, |b| profile.predict_taken(b), 4);
        assert!(
            acc[0] > 0.96,
            "nroff single-branch accuracy {} too low",
            acc[0]
        );
        assert!(acc[3] > 0.88, "nroff 4-branch accuracy {} too low", acc[3]);
    }
}
