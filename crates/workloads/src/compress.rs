//! `compress`-like kernel: an LZW-style hash-table probe loop.
//!
//! Per input symbol: hash the (previous, current) pair, probe the table,
//! and either follow the stored code (hit) or insert a new entry (miss).
//! Inputs repeat a small set of digrams with injected noise, putting the
//! probe branch near the 0.88 single-branch accuracy the paper reports
//! for `compress` (Table 3).

use crate::Workload;
use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TAG_IN: MemTag = MemTag(1);
const TAG_KEY: MemTag = MemTag(2);
const TAG_VAL: MemTag = MemTag(3);

const HASH_SIZE: i64 = 64;
const BASE_KEY: i64 = 16;
const BASE_VAL: i64 = BASE_KEY + HASH_SIZE;
const BASE_IN: i64 = BASE_VAL + HASH_SIZE;

/// Builds the `compress` kernel over `n` input symbols.
pub fn compress_like_sized(seed: u64, n: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
    let n = n.max(4) as i64;
    let r = Reg::new;
    let (i, prev, s, h, key, sig, chk, len, val) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));

    let mut pb = ProgramBuilder::new("compress");
    pb.memory_size(BASE_IN + n + 8);
    // Input stream: a handful of recurring digrams plus ~7% noise.
    let alphabet: Vec<i64> = (0..6).map(|_| rng.gen_range(1..200)).collect();
    let mut phase = 0usize;
    for k in 0..n {
        let sym = if rng.gen_bool(0.07) {
            rng.gen_range(1..250)
        } else {
            phase = (phase + 1) % alphabet.len();
            alphabet[phase]
        };
        pb.mem_cell(BASE_IN + k, sym);
    }
    pb.init_reg(len, n);

    let entry = pb.new_block();
    let probe = pb.new_block();
    let hit = pb.new_block();
    let miss = pb.new_block();
    let cont = pb.new_block();
    let done = pb.new_block();

    pb.block_mut(entry)
        .copy(i, 0)
        .copy(prev, 0)
        .copy(chk, 0)
        .jump(probe);
    pb.block_mut(probe)
        .load(s, i, BASE_IN, TAG_IN)
        .alu(AluOp::Xor, h, s, prev)
        .alu(AluOp::Mul, h, h, 31)
        .alu(AluOp::And, h, h, HASH_SIZE - 1)
        .load(key, h, BASE_KEY, TAG_KEY)
        .alu(AluOp::Sll, sig, prev, 8)
        .alu(AluOp::Add, sig, sig, s)
        .branch(CmpOp::Eq, key, sig, hit, miss);
    pb.block_mut(hit)
        .load(val, h, BASE_VAL, TAG_VAL)
        .copy(prev, val)
        .alu(AluOp::Add, chk, chk, 1)
        .jump(cont);
    pb.block_mut(miss)
        .store(h, BASE_KEY, sig, TAG_KEY)
        .store(h, BASE_VAL, s, TAG_VAL)
        .copy(prev, s)
        .jump(cont);
    pb.block_mut(cont)
        .alu(AluOp::Add, chk, chk, prev)
        .alu(AluOp::Add, i, i, 1)
        .branch(CmpOp::Lt, i, len, probe, done);
    pb.block_mut(done).halt();
    pb.set_entry(entry);
    pb.live_out([chk, prev]);

    Workload {
        name: "compress",
        description: "LZW-style hash-table probe loop (data compression)",
        program: pb.finish().expect("compress kernel is well-formed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_scalar::ScalarMachine;

    /// Reference semantics in plain Rust.
    fn reference(seed: u64, n: usize) -> (i64, i64) {
        let w = compress_like_sized(seed, n);
        let mut mem = vec![0i64; (BASE_IN + n as i64 + 8) as usize];
        for &(a, v) in &w.program.memory.cells {
            mem[a as usize] = v;
        }
        let (mut prev, mut chk) = (0i64, 0i64);
        for i in 0..n as i64 {
            let s = mem[(BASE_IN + i) as usize];
            let h = ((s ^ prev).wrapping_mul(31)) & (HASH_SIZE - 1);
            let sig = (prev << 8) + s;
            if mem[(BASE_KEY + h) as usize] == sig {
                prev = mem[(BASE_VAL + h) as usize];
                chk += 1;
            } else {
                mem[(BASE_KEY + h) as usize] = sig;
                mem[(BASE_VAL + h) as usize] = s;
                prev = s;
            }
            chk += prev;
        }
        (chk, prev)
    }

    #[test]
    fn matches_reference_semantics() {
        for seed in [1, 7, 42] {
            let w = compress_like_sized(seed, 300);
            let res = ScalarMachine::run_to_completion(&w.program).unwrap();
            let (chk, prev) = reference(seed, 300);
            assert_eq!(res.regs[7], chk, "checksum (seed {seed})");
            assert_eq!(res.regs[2], prev, "prev (seed {seed})");
        }
    }

    #[test]
    fn probe_branch_moderately_predictable() {
        let w = compress_like_sized(3, 2000);
        let res = ScalarMachine::run_to_completion(&w.program).unwrap();
        let profile = &res.edge_profile;
        let acc =
            psb_scalar::successive_accuracy(&res.branch_trace, |b| profile.predict_taken(b), 1);
        assert!(
            acc[0] > 0.78 && acc[0] < 0.96,
            "compress single-branch accuracy {} outside the Table 3 band",
            acc[0]
        );
    }
}
