//! `grep`-like kernel: first-character string scan.
//!
//! Models the skip loop of a 1990s `grep`: the scanner is unrolled to
//! process three characters per pass (as optimised scan loops do),
//! checking each against the pattern head and accumulating a rolling
//! checksum of the text.  Matches are rare (~3% per character), so every
//! branch is extremely predictable (~0.97, Table 3) — the regime where
//! trace predicating already captures all the benefit of predication.

use crate::Workload;
use psb_isa::{AluOp, CmpOp, MemTag, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TAG_TXT: MemTag = MemTag(1);

const BASE_TXT: i64 = 16;
const PAT0: i64 = 7;

/// Builds the `grep` kernel over `n` text characters.
pub fn grep_like_sized(seed: u64, n: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x62e9);
    // Round the scan length to a multiple of the unroll factor.
    let n = ((n.max(12) as i64) / 3) * 3;
    let r = Reg::new;
    let (i, matches, ch0, ch1, ch2, sum, len) = (r(1), r(2), r(3), r(4), r(5), r(6), r(8));

    let mut pb = ProgramBuilder::new("grep");
    pb.memory_size(BASE_TXT + n + 8);
    for k in 0..n {
        // ~3% of characters are the pattern head.
        let v = if rng.gen_bool(0.03) {
            PAT0
        } else {
            let x = rng.gen_range(1..96);
            if x == PAT0 {
                x + 1
            } else {
                x
            }
        };
        pb.mem_cell(BASE_TXT + k, v);
    }
    pb.init_reg(len, n);

    let entry = pb.new_block();
    let scan = pb.new_block();
    let f0 = pb.new_block();
    let c0 = pb.new_block();
    let f1 = pb.new_block();
    let c1 = pb.new_block();
    let f2 = pb.new_block();
    let c2 = pb.new_block();
    let done = pb.new_block();

    pb.block_mut(entry)
        .copy(i, 0)
        .copy(matches, 0)
        .copy(sum, 0)
        .jump(scan);
    // Three characters per pass: independent loads and checks.
    pb.block_mut(scan)
        .load(ch0, i, BASE_TXT, TAG_TXT)
        .load(ch1, i, BASE_TXT + 1, TAG_TXT)
        .load(ch2, i, BASE_TXT + 2, TAG_TXT)
        .alu(AluOp::Add, sum, sum, ch0)
        .alu(AluOp::Add, sum, sum, ch1)
        .alu(AluOp::Add, sum, sum, ch2)
        .branch(CmpOp::Eq, ch0, PAT0, f0, c0);
    pb.block_mut(f0)
        .alu(AluOp::Add, matches, matches, 1)
        .jump(c0);
    pb.block_mut(c0).branch(CmpOp::Eq, ch1, PAT0, f1, c1);
    pb.block_mut(f1)
        .alu(AluOp::Add, matches, matches, 1)
        .jump(c1);
    pb.block_mut(c1).branch(CmpOp::Eq, ch2, PAT0, f2, c2);
    pb.block_mut(f2)
        .alu(AluOp::Add, matches, matches, 1)
        .jump(c2);
    pb.block_mut(c2)
        .alu(AluOp::Add, i, i, 3)
        .branch(CmpOp::Lt, i, len, scan, done);
    pb.block_mut(done).halt();
    pb.set_entry(entry);
    pb.live_out([matches, sum]);

    Workload {
        name: "grep",
        description: "unrolled first-character pattern scan (string search)",
        program: pb.finish().expect("grep kernel is well-formed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_scalar::ScalarMachine;

    fn reference(w: &Workload, n: i64) -> (i64, i64) {
        let mut mem = vec![0i64; (BASE_TXT + n + 8) as usize];
        for &(a, v) in &w.program.memory.cells {
            mem[a as usize] = v;
        }
        let (mut matches, mut sum) = (0i64, 0i64);
        for k in 0..n {
            let c = mem[(BASE_TXT + k) as usize];
            sum += c;
            if c == PAT0 {
                matches += 1;
            }
        }
        (matches, sum)
    }

    #[test]
    fn matches_reference_semantics() {
        for seed in [1, 8, 55] {
            let w = grep_like_sized(seed, 1500);
            let res = ScalarMachine::run_to_completion(&w.program).unwrap();
            let (matches, sum) = reference(&w, 1500);
            assert_eq!(res.regs[2], matches, "seed {seed}");
            assert_eq!(res.regs[6], sum, "seed {seed}");
            assert!(matches > 0, "inputs should contain matches (seed {seed})");
        }
    }

    #[test]
    fn branches_highly_predictable() {
        let w = grep_like_sized(2, 3000);
        let res = ScalarMachine::run_to_completion(&w.program).unwrap();
        let profile = &res.edge_profile;
        let acc =
            psb_scalar::successive_accuracy(&res.branch_trace, |b| profile.predict_taken(b), 4);
        assert!(
            acc[0] > 0.95,
            "grep single-branch accuracy {} too low",
            acc[0]
        );
        assert!(acc[3] > 0.85, "grep 4-branch accuracy {} too low", acc[3]);
    }
}
