//! Property suite for the shared JSON module: `parse` is the exact
//! inverse of `pretty` over every value the printer can emit, and a
//! malformed document always yields a typed [`JsonError`] whose offset
//! points into the input — never a panic.

use proptest::prelude::*;
use proptest::strategy::fn_strategy;
use proptest::test_runner::TestRng;
use psb_serve::json::{Json, JsonErrorKind};

/// Characters that stress the escaper: quotes, backslashes, control
/// bytes, multibyte UTF-8, and the `\uXXXX`-escape range.
const PALETTE: &[char] = &[
    'a',
    'z',
    '0',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{0}',
    '\u{1f}',
    'é',
    '→',
    '日',
    '\u{1F600}',
    '\u{7f}',
    '{',
    '}',
    '[',
    ']',
    ':',
    ',',
];

fn gen_string(rng: &mut TestRng) -> String {
    let len = (rng.next_u64() % 12) as usize;
    (0..len)
        .map(|_| PALETTE[(rng.next_u64() as usize) % PALETTE.len()])
        .collect()
}

fn gen_json(rng: &mut TestRng, depth: u32) -> Json {
    // Leaves only at the bottom; containers shrink as depth runs out.
    let choices = if depth == 0 { 5 } else { 7 };
    match rng.next_u64() % choices {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u64().is_multiple_of(2)),
        2 => Json::Int(rng.next_u64() as i64),
        3 => {
            // Finite floats only: the printer maps NaN/inf to null (JSON
            // has no such numbers), which is covered separately below.
            let f = f64::from_bits(rng.next_u64());
            Json::Float(if f.is_finite() {
                f
            } else {
                (rng.next_u64() % 1_000_000) as f64 / 997.0
            })
        }
        4 => Json::Str(gen_string(rng)),
        5 => {
            let n = (rng.next_u64() % 4) as usize;
            Json::Array((0..n).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = (rng.next_u64() % 4) as usize;
            Json::Object(
                (0..n)
                    .map(|_| (gen_string(rng), gen_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_inverts_pretty(v in fn_strategy(|rng: &mut TestRng| gen_json(rng, 3))) {
        let text = v.pretty();
        let back = Json::parse(&text)
            .unwrap_or_else(|e| panic!("printer emitted unparsable JSON: {e}\n{text}"));
        prop_assert_eq!(back, v);
    }

    #[test]
    fn proper_prefixes_of_container_docs_are_typed_errors(
        v in fn_strategy(|rng: &mut TestRng| gen_json(rng, 2)),
        cut in fn_strategy(|rng: &mut TestRng| rng.next_u64()),
    ) {
        // A strict parser can never accept a proper prefix of a
        // container document: the closing bracket is the final byte.
        if !matches!(v, Json::Array(_) | Json::Object(_)) {
            return Err(TestCaseError::reject("scalar doc"));
        }
        let text = v.pretty();
        // Cut on a char boundary strictly inside the document.
        let mut at = 1 + (cut as usize) % (text.len() - 1);
        while !text.is_char_boundary(at) {
            at -= 1;
        }
        if at == 0 {
            return Err(TestCaseError::reject("empty prefix"));
        }
        let err = Json::parse(&text[..at])
            .expect_err("a proper prefix must not parse");
        prop_assert!(err.offset <= at, "offset {} beyond input {}", err.offset, at);
    }

    #[test]
    fn parse_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Totality: junk gives Err, never a panic.  (Lossy conversion
        // keeps the input arbitrary while staying &str-typed.)
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text);
    }

    #[test]
    fn error_offsets_stay_in_bounds_after_truncation_or_corruption(
        v in fn_strategy(|rng: &mut TestRng| gen_json(rng, 2)),
        flip in fn_strategy(|rng: &mut TestRng| rng.next_u64()),
    ) {
        let mut bytes = v.pretty().into_bytes();
        if bytes.is_empty() {
            return Err(TestCaseError::reject("empty doc"));
        }
        let at = (flip as usize) % bytes.len();
        bytes[at] = bytes[at].wrapping_add(1 + (flip >> 32) as u8 % 254);
        if let Ok(text) = std::str::from_utf8(&bytes) {
            if let Err(e) = Json::parse(text) {
                prop_assert!(e.offset <= text.len());
            }
        }
    }
}

#[test]
fn nonfinite_floats_print_as_null() {
    for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(Json::Float(f).pretty(), "null");
        assert_eq!(Json::parse(&Json::Float(f).pretty()), Ok(Json::Null));
    }
}

#[test]
fn typed_errors_carry_the_right_kind_and_offset() {
    let cases: &[(&str, JsonErrorKind)] = &[
        ("", JsonErrorKind::UnexpectedEnd),
        ("{\"a\": 1", JsonErrorKind::ExpectedEither(',', '}')),
        ("[1, 2", JsonErrorKind::ExpectedEither(',', ']')),
        ("{\"a\" 1}", JsonErrorKind::Expected(':')),
        ("1 2", JsonErrorKind::TrailingData),
        ("\"abc", JsonErrorKind::UnterminatedString),
        ("\"\\q\"", JsonErrorKind::BadEscape),
        ("\"\\u12\"", JsonErrorKind::TruncatedEscape),
        ("0x10", JsonErrorKind::TrailingData),
        ("nul", JsonErrorKind::BadNumber),
    ];
    for (text, kind) in cases {
        let err = Json::parse(text).expect_err(text);
        assert_eq!(
            &err.kind, kind,
            "{text}: got {:?} at {}",
            err.kind, err.offset
        );
        assert!(err.offset <= text.len(), "{text}");
    }
}
