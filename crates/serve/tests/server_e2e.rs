//! End-to-end tests of the simulation server on ephemeral ports: the
//! mixed-workload status-code contract (cold, hot, over-budget,
//! malformed, unknown routes), byte-stable deterministic response
//! bodies at any `--jobs`, exact cache hit/miss accounting on
//! `/metrics`, admission-queue rejection, and the disk-store restart
//! path.

use psb_serve::http::{read_response, write_request, Response};
use psb_serve::json::Json;
use psb_serve::{serve, ServeConfig, ServeHandle};
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "psb_serve_e2e_{}_{}_{tag}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn boot(config: ServeConfig) -> ServeHandle {
    serve(config).expect("server boots on an ephemeral port")
}

/// One request over a fresh connection (simplest for tests; keep-alive
/// reuse is covered by the loadgen client).
fn call(handle: &ServeHandle, method: &str, target: &str, body: &[u8]) -> Response {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    write_request(&mut stream, method, target, body).expect("send");
    read_response(&mut reader).expect("response")
}

fn body_json(resp: &Response) -> Json {
    Json::parse(std::str::from_utf8(&resp.body).expect("utf-8 body")).expect("json body")
}

fn run_body(workload: &str, model: &str, size: u64) -> Vec<u8> {
    format!("{{\"workload\": \"{workload}\", \"models\": [\"{model}\"], \"size\": {size}}}")
        .into_bytes()
}

/// The `models[].source` fields of a /run response, in request order.
fn sources(doc: &Json) -> Vec<String> {
    doc.get("models")
        .and_then(Json::as_array)
        .expect("models array")
        .iter()
        .map(|m| {
            m.get("source")
                .and_then(Json::as_str)
                .expect("source field")
                .to_string()
        })
        .collect()
}

fn counter(metrics: &Json, name: &str) -> i64 {
    metrics
        .get("counters")
        .and_then(Json::as_array)
        .expect("counters")
        .iter()
        .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
        .and_then(|c| c.get("value"))
        .and_then(Json::as_i64)
        .unwrap_or(0)
}

#[test]
fn mixed_workload_contract_and_exact_cache_accounting() {
    let handle = boot(ServeConfig {
        jobs: 2,
        deterministic: true,
        ..ServeConfig::default()
    });

    // Health first.
    let health = call(&handle, "GET", "/healthz", b"");
    assert_eq!(health.status, 200);
    assert_eq!(
        body_json(&health).get("status").and_then(Json::as_str),
        Some("ok")
    );

    // Cache-cold run: both layers miss, the pipeline compiles.
    let cold = call(
        &handle,
        "POST",
        "/run",
        &run_body("grep", "region-pred", 96),
    );
    assert_eq!(cold.status, 200, "{}", String::from_utf8_lossy(&cold.body));
    let cold_doc = body_json(&cold);
    assert_eq!(sources(&cold_doc), ["compiled"]);
    assert!(
        cold_doc
            .get("scalar_cycles")
            .and_then(Json::as_i64)
            .unwrap()
            > 0
    );
    let speedup = cold_doc.get("models").and_then(Json::as_array).unwrap()[0]
        .get("speedup")
        .and_then(Json::as_f64)
        .expect("speedup");
    assert!(speedup > 0.0);

    // Cache-hot: identical shape, served from memory, identical rows.
    let hot = call(
        &handle,
        "POST",
        "/run",
        &run_body("grep", "region-pred", 96),
    );
    assert_eq!(hot.status, 200);
    let hot_doc = body_json(&hot);
    assert_eq!(sources(&hot_doc), ["memory"]);
    assert_eq!(
        hot_doc.get("scalar_cycles").and_then(Json::as_i64),
        cold_doc.get("scalar_cycles").and_then(Json::as_i64)
    );

    // Over-budget: rejected 503 before any cache/store perturbation.
    let over = call(
        &handle,
        "POST",
        "/run",
        b"{\"workload\": \"li\", \"models\": [\"trace\"], \"size\": 96, \"max_cycles\": 1}",
    );
    assert_eq!(over.status, 503, "{}", String::from_utf8_lossy(&over.body));
    let over_doc = body_json(&over);
    assert_eq!(
        over_doc.get("kind").and_then(Json::as_str),
        Some("over_budget")
    );
    assert_eq!(
        over.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("retry-after"))
            .map(|(_, v)| v.as_str()),
        Some("1"),
        "503 must carry Retry-After"
    );

    // Malformed JSON: a client error, connection stays usable.
    let bad = call(&handle, "POST", "/run", b"{\"workload\": ");
    assert_eq!(bad.status, 400);
    assert_eq!(
        body_json(&bad).get("kind").and_then(Json::as_str),
        Some("bad_request")
    );

    // Unknown workload: also a client error.
    let nope = call(&handle, "POST", "/run", &run_body("nope", "trace", 96));
    assert_eq!(nope.status, 400);

    // Routing: unknown path and wrong methods.
    assert_eq!(call(&handle, "GET", "/nope", b"").status, 404);
    assert_eq!(call(&handle, "GET", "/run", b"").status, 405);
    assert_eq!(call(&handle, "POST", "/healthz", b"x").status, 405);

    // Exact accounting: one compile (the cold run), one memory hit (the
    // hot run).  The over-budget and malformed requests must not have
    // touched the cache.
    let metrics = body_json(&call(&handle, "GET", "/metrics", b""));
    let cache = metrics.get("cache").expect("cache block");
    assert_eq!(cache.get("misses").and_then(Json::as_i64), Some(1));
    assert_eq!(cache.get("hits").and_then(Json::as_i64), Some(1));
    assert_eq!(counter(&metrics, "serve.cache.compiles"), 1);
    assert_eq!(counter(&metrics, "serve.cache.memory_hits"), 1);
    assert_eq!(counter(&metrics, "serve.rejected.over_budget"), 1);
    assert_eq!(counter(&metrics, "serve.responses.503"), 1);
    assert_eq!(counter(&metrics, "serve.responses.400"), 2);
    assert_eq!(counter(&metrics, "serve.requests.run"), 5);

    handle.shutdown();
}

#[test]
fn deterministic_responses_are_byte_identical_at_any_jobs() {
    // The same request sequence against a --jobs 1 and a --jobs 4 server
    // must produce byte-identical bodies: model rows are reassembled in
    // request order, wall values are zeroed, and cache state follows the
    // same cold→hot progression.
    let sequence: Vec<(&str, &str, Vec<u8>)> = vec![
        ("POST", "/run", run_body("grep", "region-pred", 96)),
        (
            "POST",
            "/run",
            b"{\"workload\": \"li\", \"models\": \"all\", \"size\": 96, \"trace\": true}".to_vec(),
        ),
        ("POST", "/run", run_body("grep", "region-pred", 96)),
        ("POST", "/compile", run_body("li", "trace", 96)),
        ("POST", "/run", b"{\"workload\": ".to_vec()),
        ("GET", "/metrics", Vec::new()),
    ];
    let drive = |jobs: usize| -> Vec<(u16, Vec<u8>)> {
        let handle = boot(ServeConfig {
            jobs,
            deterministic: true,
            ..ServeConfig::default()
        });
        let out = sequence
            .iter()
            .map(|(method, target, body)| {
                let resp = call(&handle, method, target, body);
                (resp.status, resp.body.clone())
            })
            .collect();
        handle.shutdown();
        out
    };
    let one = drive(1);
    let four = drive(4);
    assert_eq!(one.len(), four.len());
    for (i, (a, b)) in one.iter().zip(&four).enumerate() {
        assert_eq!(a.0, b.0, "request {i}: status differs");
        assert_eq!(
            String::from_utf8_lossy(&a.1),
            String::from_utf8_lossy(&b.1),
            "request {i}: body differs between --jobs 1 and --jobs 4"
        );
    }
    // The traced request really carried a trace.
    let traced = Json::parse(std::str::from_utf8(&one[1].1).unwrap()).unwrap();
    assert!(
        traced
            .get("trace")
            .and_then(Json::as_array)
            .is_some_and(|t| !t.is_empty()),
        "trace events expected"
    );
    // All seven models ran, in canonical order.
    assert_eq!(
        traced
            .get("models")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(7)
    );
}

#[test]
fn server_cycle_budget_caps_every_request() {
    let handle = boot(ServeConfig {
        cycle_budget: Some(1),
        deterministic: true,
        ..ServeConfig::default()
    });
    // The request asked for plenty, but the server-wide cap wins.
    let over = call(
        &handle,
        "POST",
        "/run",
        b"{\"workload\": \"grep\", \"size\": 96, \"max_cycles\": 1000000}",
    );
    assert_eq!(over.status, 503);
    assert_eq!(
        body_json(&over).get("kind").and_then(Json::as_str),
        Some("over_budget")
    );
    // /compile has no cycle budget: it never runs the machine.
    let compiled = call(&handle, "POST", "/compile", &run_body("grep", "trace", 96));
    assert_eq!(
        compiled.status,
        200,
        "{}",
        String::from_utf8_lossy(&compiled.body)
    );
    let metrics = body_json(&call(&handle, "GET", "/metrics", b""));
    assert_eq!(counter(&metrics, "serve.rejected.over_budget"), 1);
    handle.shutdown();
}

#[test]
fn queue_saturation_rejects_inline_with_retry_after() {
    // jobs=1, queue_depth=1: occupy the single worker with an idle
    // keep-alive connection, fill the queue with a second, and the third
    // connection must be rejected by the acceptor itself.
    let handle = boot(ServeConfig {
        jobs: 1,
        queue_depth: 1,
        deterministic: true,
        ..ServeConfig::default()
    });
    // Worker-occupying connection: the worker pops it and blocks in
    // read_request waiting for bytes that never come.
    let occupant = TcpStream::connect(handle.addr()).expect("occupant connects");
    std::thread::sleep(Duration::from_millis(100));
    // Queue-filling connection.
    let queued = TcpStream::connect(handle.addr()).expect("queued connects");
    std::thread::sleep(Duration::from_millis(100));
    // Overflow: the acceptor answers 503 without reading a request.
    let overflow = TcpStream::connect(handle.addr()).expect("overflow connects");
    let mut reader = BufReader::new(overflow.try_clone().expect("clone"));
    let resp = read_response(&mut reader).expect("inline 503");
    assert_eq!(resp.status, 503);
    let doc = body_json(&resp);
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("queue_full"));
    assert_eq!(
        resp.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("retry-after"))
            .map(|(_, v)| v.as_str()),
        Some("1")
    );
    drop(occupant);
    drop(queued);
    // After the stall clears, service resumes for new connections.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(call(&handle, "GET", "/healthz", b"").status, 200);
    let metrics = body_json(&call(&handle, "GET", "/metrics", b""));
    assert_eq!(counter(&metrics, "serve.rejected.queue_full"), 1);
    handle.shutdown();
}

#[test]
fn stalled_clients_are_dropped_after_the_read_timeout() {
    let handle = boot(ServeConfig {
        jobs: 1,
        read_timeout_ms: 150,
        deterministic: true,
        ..ServeConfig::default()
    });
    // A client that connects and never sends a byte would pin the single
    // worker forever without the timeout.
    let stalled = TcpStream::connect(handle.addr()).expect("stalled connects");
    let mut reader = BufReader::new(stalled.try_clone().expect("clone"));
    // The server must close the connection silently (EOF, no response).
    let got = read_response(&mut reader);
    assert!(got.is_err(), "expected a dropped connection, got {got:?}");
    drop(stalled);
    // The worker is free again: ordinary service resumes.
    assert_eq!(call(&handle, "GET", "/healthz", b"").status, 200);
    let metrics = body_json(&call(&handle, "GET", "/metrics", b""));
    assert_eq!(counter(&metrics, "serve.read_timeouts"), 1);
    handle.shutdown();
}

#[test]
fn cache_memory_model_requests_run_and_report_misses() {
    let handle = boot(ServeConfig {
        deterministic: true,
        ..ServeConfig::default()
    });
    let body = b"{\"workload\": \"grep\", \"models\": [\"region-pred\"], \"size\": 96, \
                  \"memory\": {\"icache\": \"8x1x2x1x4\", \"dcache\": \"4x2x2x1x6\"}}";
    let resp = call(&handle, "POST", "/run", body);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let doc = body_json(&resp);
    assert_eq!(
        doc.get("memory").and_then(Json::as_str),
        Some("cache:8x1x2x1x4:4x2x2x1x6")
    );
    let m = &doc.get("models").and_then(Json::as_array).expect("models")[0];
    assert!(m.get("icache_misses").and_then(Json::as_i64).unwrap() > 0);
    assert!(m.get("stall_ifetch").and_then(Json::as_i64).unwrap() > 0);

    // A bad spec is a 400, not a worker panic.
    let bad = call(
        &handle,
        "POST",
        "/run",
        b"{\"workload\": \"grep\", \"memory\": \"slow\"}",
    );
    assert_eq!(bad.status, 400);
    assert!(String::from_utf8_lossy(&bad.body).contains("'memory'"));
    handle.shutdown();
}

#[test]
fn disk_store_survives_a_server_restart() {
    let dir = scratch("restart");
    let config = ServeConfig {
        store: Some(dir.clone()),
        deterministic: true,
        ..ServeConfig::default()
    };

    // First server: cold compile, persisted to disk.
    let first = boot(config.clone());
    let cold = call(&first, "POST", "/run", &run_body("grep", "region-pred", 96));
    assert_eq!(cold.status, 200);
    let cold_doc = body_json(&cold);
    assert_eq!(sources(&cold_doc), ["compiled"]);
    let metrics = body_json(&call(&first, "GET", "/metrics", b""));
    let store = metrics.get("store").expect("store block");
    assert_eq!(store.get("writes").and_then(Json::as_i64), Some(1));
    first.shutdown();

    // Second server over the same directory: memory cache is cold, but
    // the artifact fills from disk — no recompile.
    let second = boot(config);
    let warm = call(
        &second,
        "POST",
        "/run",
        &run_body("grep", "region-pred", 96),
    );
    assert_eq!(warm.status, 200);
    let warm_doc = body_json(&warm);
    assert_eq!(sources(&warm_doc), ["disk"]);
    // Simulated results are identical either way.
    assert_eq!(
        warm_doc.get("scalar_cycles").and_then(Json::as_i64),
        cold_doc.get("scalar_cycles").and_then(Json::as_i64)
    );
    let metrics = body_json(&call(&second, "GET", "/metrics", b""));
    let store = metrics.get("store").expect("store block");
    assert_eq!(store.get("hits").and_then(Json::as_i64), Some(1));
    assert_eq!(store.get("writes").and_then(Json::as_i64), Some(0));
    assert_eq!(counter(&metrics, "serve.cache.disk_hits"), 1);
    assert_eq!(counter(&metrics, "serve.cache.compiles"), 0);
    second.shutdown();
}
