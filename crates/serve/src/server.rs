//! The multi-tenant simulation server: acceptor, bounded admission
//! queue, worker pool, and the HTTP endpoint surface.
//!
//! ```text
//! accept loop ──▶ bounded queue ──▶ worker 0..N (keep-alive loops)
//!      │  queue full                      │
//!      └─▶ inline 503 + Retry-After       └─▶ api::handle_* over the
//!                                             shared cache hierarchy
//! ```
//!
//! Admission control is two-layered: the *queue-depth limit* bounds
//! memory and tail latency under connection floods (excess connections
//! get an immediate `503` with `Retry-After` from the acceptor thread
//! itself, never blocking a worker), and the *cycle budget* bounds how
//! much simulated work a single request can demand (over-budget runs
//! fail with `503 over_budget` before perturbing any cache state — see
//! `api::handle_run`).

use crate::api::{self, ApiError, SimRequest};
use crate::http::{read_request, HttpError, Request, Response};
use crate::json::{Json, ToJson};
use psb_compile::{ArtifactCache, DiskStore};
use psb_telemetry::{names, ns_to_rounded_s, Registry, Telemetry};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server configuration (one `repro serve` invocation).
#[derive(Clone, PartialEq, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral test port.
    pub addr: String,
    /// Worker threads handling connections (>= 1).
    pub jobs: usize,
    /// Connections the admission queue holds before the acceptor starts
    /// rejecting with 503.
    pub queue_depth: usize,
    /// Server-wide cap on per-request simulated-cycle budgets.
    pub cycle_budget: Option<u64>,
    /// On-disk artifact store root (`None` = memory-only caching).
    pub store: Option<PathBuf>,
    /// Size cap on the on-disk store in bytes; past it, saves evict
    /// oldest-used artifacts (`--store-max-bytes`; `None` = unbounded).
    pub store_max_bytes: Option<u64>,
    /// Keep-alive read timeout in milliseconds (`--read-timeout-ms`).
    /// A client that connects and then stalls mid-request holds a
    /// worker for at most this long before the connection is dropped.
    pub read_timeout_ms: u64,
    /// Deterministic mode: zero every wall-derived value in `/metrics`
    /// and traces so responses are byte-identical at any `jobs`.
    pub deterministic: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 1,
            queue_depth: 64,
            cycle_budget: None,
            store: None,
            store_max_bytes: None,
            read_timeout_ms: 10_000,
            deterministic: false,
        }
    }
}

/// The telemetry carrier for one request: counters and histograms land
/// in the server-wide [`Registry`] (the `/metrics` surface); when the
/// request asked for a trace, spans are additionally captured in a
/// per-request buffer rendered into the response.
struct RequestTelemetry<'a> {
    registry: &'a Registry,
    deterministic: bool,
    epoch: Instant,
    trace: Option<Mutex<Vec<(String, u64, u64)>>>,
}

impl<'a> RequestTelemetry<'a> {
    fn new(registry: &'a Registry, deterministic: bool, trace: bool) -> RequestTelemetry<'a> {
        RequestTelemetry {
            registry,
            deterministic,
            epoch: Instant::now(),
            trace: trace.then(|| Mutex::new(Vec::new())),
        }
    }

    /// The captured trace as Chrome trace events (complete `"X"` events
    /// in microseconds, the format Perfetto loads directly).  Sorted
    /// into a deterministic order when timestamps are zeroed.
    fn trace_json(&self) -> Option<Json> {
        let buf = self.trace.as_ref()?;
        let mut spans = buf.lock().expect("trace poisoned").clone();
        if self.deterministic {
            spans.sort();
        } else {
            spans.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
        }
        let events = spans
            .into_iter()
            .map(|(name, start_ns, dur_ns)| {
                Json::obj(vec![
                    ("name", name.to_json()),
                    ("cat", "serve".to_json()),
                    ("ph", "X".to_json()),
                    ("ts", (start_ns / 1000).to_json()),
                    ("dur", (dur_ns / 1000).to_json()),
                    ("pid", 1u64.to_json()),
                    ("tid", 0u64.to_json()),
                ])
            })
            .collect();
        Some(Json::Array(events))
    }
}

impl Telemetry for RequestTelemetry<'_> {
    fn enabled(&self) -> bool {
        self.trace.is_some()
    }

    fn deterministic(&self) -> bool {
        self.deterministic
    }

    fn now_ns(&self) -> u64 {
        if self.deterministic {
            0
        } else {
            self.epoch.elapsed().as_nanos() as u64
        }
    }

    fn record_span(&self, _cat: &'static str, name: String, start_ns: u64, dur_ns: u64) {
        if let Some(buf) = &self.trace {
            buf.lock()
                .expect("trace poisoned")
                .push((name, start_ns, dur_ns));
        }
    }

    fn record_span_host(&self, cat: &'static str, name: String, start_ns: u64, dur_ns: u64) {
        if !self.deterministic {
            self.record_span(cat, name, start_ns, dur_ns);
        }
    }

    fn counter(&self, name: &str, delta: u64) {
        self.registry.counter(name, delta);
    }

    fn gauge_host(&self, name: &str, value: i64) {
        if !self.deterministic {
            self.registry.gauge(name, value);
        }
    }

    fn observe(&self, name: &str, value: u64) {
        let v = if self.deterministic { 0 } else { value };
        self.registry.observe(name, v);
    }

    fn observe_host(&self, name: &str, value: u64) {
        if !self.deterministic {
            self.registry.observe(name, value);
        }
    }
}

/// A queued connection, stamped with its enqueue time for the
/// queue-wait histogram.
struct Conn {
    stream: TcpStream,
    enqueued: Instant,
}

struct Queue {
    inner: Mutex<VecDeque<Conn>>,
    ready: Condvar,
}

/// Everything the workers share.
struct ServerState {
    config: ServeConfig,
    cache: ArtifactCache,
    store: Option<DiskStore>,
    registry: Registry,
    queue: Queue,
    shutdown: AtomicBool,
}

impl ServerState {
    fn tel(&self, trace: bool) -> RequestTelemetry<'_> {
        RequestTelemetry::new(&self.registry, self.config.deterministic, trace)
    }

    fn metrics_json(&self) -> Json {
        let counters = self
            .registry
            .counters()
            .into_iter()
            .map(|(name, v)| Json::obj(vec![("name", name.to_json()), ("value", v.to_json())]))
            .collect();
        let gauges = self
            .registry
            .gauges()
            .into_iter()
            .map(|(name, v)| Json::obj(vec![("name", name.to_json()), ("value", v.to_json())]))
            .collect();
        let histograms = self
            .registry
            .histograms()
            .into_iter()
            .map(|(name, h)| {
                Json::obj(vec![
                    ("name", name.to_json()),
                    ("count", h.count.to_json()),
                    ("mean", h.mean.to_json()),
                    ("min", h.min.to_json()),
                    ("max", h.max.to_json()),
                    ("p50", h.p50.to_json()),
                    ("p90", h.p90.to_json()),
                    ("p99", h.p99.to_json()),
                ])
            })
            .collect();
        let store = self.store.as_ref().map(|s| {
            let st = s.stats();
            Json::obj(vec![
                ("hits", st.hits.to_json()),
                ("misses", st.misses.to_json()),
                ("errors", st.errors.to_json()),
                ("writes", st.writes.to_json()),
                ("evictions", st.evictions.to_json()),
            ])
        });
        let cache = self.cache.stats();
        Json::obj(vec![
            ("deterministic", self.config.deterministic.to_json()),
            ("counters", Json::Array(counters)),
            ("gauges", Json::Array(gauges)),
            ("histograms", Json::Array(histograms)),
            (
                "cache",
                Json::obj(vec![
                    ("hits", cache.hits.to_json()),
                    ("misses", cache.misses.to_json()),
                ]),
            ),
            ("store", store.to_json()),
        ])
    }
}

/// A running server: join handles plus the bound address.  Dropping the
/// handle without [`ServeHandle::shutdown`] leaves the threads running
/// (the CLI case — the process owns them until killed).
pub struct ServeHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the queue, and joins every thread.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Wake every parked worker; they re-check the flag.
        self.state.queue.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Binds the listener and spawns the acceptor and worker threads.
///
/// # Errors
///
/// A human-readable message when the address can't be bound or the
/// store root can't be opened.
pub fn serve(config: ServeConfig) -> Result<ServeHandle, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    let store = match &config.store {
        None => None,
        Some(root) => Some(
            DiskStore::open_with_limit(root, config.store_max_bytes)
                .map_err(|e| format!("cannot open artifact store: {e}"))?,
        ),
    };
    let jobs = config.jobs.max(1);
    let state = Arc::new(ServerState {
        config,
        cache: ArtifactCache::new(),
        store,
        registry: Registry::new(),
        queue: Queue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        },
        shutdown: AtomicBool::new(false),
    });
    let workers = (0..jobs)
        .map(|_| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || worker_loop(&state))
        })
        .collect();
    let acceptor = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || accept_loop(&listener, &state))
    };
    Ok(ServeHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, state: &ServerState) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut q = state.queue.inner.lock().expect("queue poisoned");
        if q.len() >= state.config.queue_depth {
            drop(q);
            state.registry.counter(names::SERVE_REJECTED_QUEUE, 1);
            state
                .registry
                .counter(&format!("{}{}", names::SERVE_RESPONSES_PREFIX, 503), 1);
            let body = Json::obj(vec![
                ("error", "admission queue full".to_json()),
                ("kind", "queue_full".to_json()),
            ]);
            let mut stream = stream;
            let _ = Response::json(503, body.pretty())
                .with_header("Retry-After", "1")
                .write_to(&mut stream, true);
            continue;
        }
        if !state.config.deterministic {
            state
                .registry
                .gauge(names::SERVE_QUEUE_DEPTH, (q.len() + 1) as i64);
        }
        q.push_back(Conn {
            stream,
            enqueued: Instant::now(),
        });
        drop(q);
        state.queue.ready.notify_one();
    }
}

fn worker_loop(state: &ServerState) {
    loop {
        let conn = {
            let mut q = state.queue.inner.lock().expect("queue poisoned");
            loop {
                if let Some(c) = q.pop_front() {
                    break c;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = state.queue.ready.wait(q).expect("queue poisoned");
            }
        };
        if !state.config.deterministic {
            state.registry.observe(
                names::SERVE_QUEUE_WAIT_NS,
                conn.enqueued.elapsed().as_nanos() as u64,
            );
        }
        handle_connection(state, conn.stream);
    }
}

/// Runs the keep-alive request loop on one connection.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    // A stalled client (connected but silent, or dribbling a partial
    // request) must not pin this worker forever: every read waits at
    // most the configured timeout, after which the connection is
    // dropped without a response (nobody is reading one).
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(
        state.config.read_timeout_ms.max(1),
    )));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(r) => r,
            Err(HttpError::Closed) => return,
            Err(HttpError::Timeout) => {
                state.registry.counter(names::SERVE_READ_TIMEOUTS, 1);
                return;
            }
            Err(e) => {
                let status = match e {
                    HttpError::BodyTooLarge(_) | HttpError::HeadTooLarge => 413,
                    _ => 400,
                };
                let body = Json::obj(vec![
                    ("error", e.to_string().to_json()),
                    ("kind", "http".to_json()),
                ]);
                count_response(state, status);
                let _ = Response::json(status, body.pretty()).write_to(&mut stream, true);
                return;
            }
        };
        let close = req.wants_close();
        let started = Instant::now();
        let resp = route(state, &req);
        if !state.config.deterministic {
            state
                .registry
                .observe(names::SERVE_REQUEST_NS, started.elapsed().as_nanos() as u64);
        }
        count_response(state, resp.status);
        if resp.write_to(&mut stream, close).is_err() || close {
            return;
        }
    }
}

fn count_response(state: &ServerState, status: u16) {
    state
        .registry
        .counter(&format!("{}{}", names::SERVE_RESPONSES_PREFIX, status), 1);
}

fn count_request(state: &ServerState, endpoint: &str) {
    state
        .registry
        .counter(&format!("{}{}", names::SERVE_REQUESTS_PREFIX, endpoint), 1);
}

fn route(state: &ServerState, req: &Request) -> Response {
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => {
            count_request(state, "healthz");
            Response::json(200, Json::obj(vec![("status", "ok".to_json())]).pretty())
        }
        ("GET", "/metrics") => {
            count_request(state, "metrics");
            Response::json(200, state.metrics_json().pretty())
        }
        ("POST", "/run") => {
            count_request(state, "run");
            simulate(state, &req.body, true)
        }
        ("POST", "/compile") => {
            count_request(state, "compile");
            simulate(state, &req.body, false)
        }
        ("GET", "/run" | "/compile") | ("POST", "/healthz" | "/metrics") => Response::json(
            405,
            Json::obj(vec![
                ("error", "method not allowed".to_json()),
                ("kind", "http".to_json()),
            ])
            .pretty(),
        ),
        _ => Response::json(
            404,
            Json::obj(vec![
                (
                    "error",
                    format!("no such endpoint: {}", req.target).to_json(),
                ),
                ("kind", "http".to_json()),
            ])
            .pretty(),
        ),
    }
}

fn simulate(state: &ServerState, body: &[u8], run: bool) -> Response {
    let sim = match SimRequest::from_body(body) {
        Ok(s) => s,
        Err(e) => return error_response(state, e),
    };
    let tel = state.tel(sim.trace);
    let result = if run {
        api::handle_run(
            &sim,
            &state.cache,
            state.store.as_ref(),
            state.config.cycle_budget,
            state.config.jobs,
            &tel,
        )
    } else {
        api::handle_compile(
            &sim,
            &state.cache,
            state.store.as_ref(),
            state.config.jobs,
            &tel,
        )
    };
    match result {
        Ok(mut out) => {
            if let (Some(trace), Json::Object(fields)) = (tel.trace_json(), &mut out) {
                fields.push(("trace".to_string(), trace));
            }
            Response::json(200, out.pretty())
        }
        Err(e) => error_response(state, e),
    }
}

fn error_response(state: &ServerState, e: ApiError) -> Response {
    if matches!(e, ApiError::OverBudget(_)) {
        state.registry.counter(names::SERVE_REJECTED_BUDGET, 1);
    }
    let resp = Response::json(e.status(), e.body().pretty());
    if e.status() == 503 {
        resp.with_header("Retry-After", "1")
    } else {
        resp
    }
}

/// Renders a human-readable `/metrics` summary line for logs: request
/// counts plus the p50/p90/p99 of the end-to-end latency histogram.
pub fn metrics_summary(metrics: &Json) -> String {
    let mut out = String::new();
    if let Some(counters) = metrics.get("counters").and_then(|c| c.as_array()) {
        for c in counters {
            if let (Some(name), Some(v)) = (
                c.get("name").and_then(|n| n.as_str()),
                c.get("value").and_then(|v| v.as_i64()),
            ) {
                out.push_str(&format!("{name} = {v}\n"));
            }
        }
    }
    if let Some(hists) = metrics.get("histograms").and_then(|h| h.as_array()) {
        for h in hists {
            let name = h.get("name").and_then(|n| n.as_str()).unwrap_or("?");
            let get = |k: &str| h.get(k).and_then(|v| v.as_i64()).unwrap_or(0);
            out.push_str(&format!(
                "{name}: count={} p50={}s p90={}s p99={}s\n",
                get("count"),
                ns_to_rounded_s(get("p50") as u64),
                ns_to_rounded_s(get("p90") as u64),
                ns_to_rounded_s(get("p99") as u64),
            ));
        }
    }
    out
}
