//! Minimal JSON document model, pretty printer, and strict parser.
//!
//! The build container has no crates.io access, so every JSON producer
//! and consumer in the workspace goes through this module instead of
//! `serde_json`.  The printer is deterministic: field order is the
//! declaration order of each `ToJson` implementation, floats print via
//! Rust's shortest round-trip formatting, and the layout (2-space
//! indent) matches `serde_json::to_string_pretty`.
//!
//! The parser is the printer's inverse — `parse(v.pretty()) == v` for
//! every value the printer can emit (property-tested in
//! `tests/json_roundtrip.rs`) — and rejects malformed input with a
//! typed [`JsonError`] carrying the byte offset, so the server can turn
//! a bad request body into a 400 with a precise complaint instead of a
//! stringly error.
//!
//! This module started life in `psb-eval` (PR 1) with an ad-hoc second
//! parser in its CLI tests; both now live here so `psb-serve` can decode
//! request bodies without depending on the experiment harness
//! (`psb-eval` re-exports the module unchanged for its own reports).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every integer field in the result structs).
    Int(i64),
    /// A float, printed with shortest round-trip formatting.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered fields.
    Object(Vec<(String, Json)>),
}

/// What went wrong at [`JsonError::offset`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JsonErrorKind {
    /// The document ended mid-value.
    UnexpectedEnd,
    /// A specific punctuation byte was required.
    Expected(char),
    /// Either of two punctuation bytes was required (`,` or the closer).
    ExpectedEither(char, char),
    /// Bytes remained after the first complete document.
    TrailingData,
    /// A number failed to parse (overflow or malformed mantissa).
    BadNumber,
    /// A `\x` escape with an unknown `x`.
    BadEscape,
    /// A `\u` escape without four hex digits.
    TruncatedEscape,
    /// A string literal hit end-of-input before its closing quote.
    UnterminatedString,
    /// The input is not valid UTF-8.
    InvalidUtf8,
}

/// A rejected JSON document: the byte offset of the problem plus its
/// [`JsonErrorKind`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What was wrong there.
    pub kind: JsonErrorKind,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let JsonError { offset, kind } = self;
        match kind {
            JsonErrorKind::UnexpectedEnd => write!(f, "{offset}: unexpected end of input"),
            JsonErrorKind::Expected(c) => write!(f, "{offset}: expected '{c}'"),
            JsonErrorKind::ExpectedEither(a, b) => {
                write!(f, "{offset}: expected '{a}' or '{b}'")
            }
            JsonErrorKind::TrailingData => write!(f, "{offset}: trailing data after document"),
            JsonErrorKind::BadNumber => write!(f, "{offset}: bad number"),
            JsonErrorKind::BadEscape => write!(f, "{offset}: bad escape"),
            JsonErrorKind::TruncatedEscape => write!(f, "{offset}: truncated \\u escape"),
            JsonErrorKind::UnterminatedString => write!(f, "{offset}: unterminated string"),
            JsonErrorKind::InvalidUtf8 => write!(f, "{offset}: invalid utf-8"),
        }
    }
}

impl std::error::Error for JsonError {}

fn err<T>(offset: usize, kind: JsonErrorKind) -> Result<T, JsonError> {
    Err(JsonError { offset, kind })
}

impl Json {
    /// Parses a JSON document (strict, no trailing garbage).
    ///
    /// The inverse of [`Json::pretty`], used to load checked-in baseline
    /// files and decode server request bodies.  Numbers without a
    /// fraction or exponent parse as [`Json::Int`], everything else as
    /// [`Json::Float`].
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(pos, JsonErrorKind::TrailingData);
        }
        Ok(value)
    }

    /// Looks up a field of an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric value (integers widen), if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from `(name, value)` pairs, preserving order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders with 2-space indentation (the `serde_json` pretty layout).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral values, so
                    // the output stays typed as a JSON number with a
                    // fractional part — and round-trips exactly.
                    let _ = write!(out, "{f:?}");
                } else {
                    // JSON has no NaN/Infinity; serde_json emits null too.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        err(*pos, JsonErrorKind::Expected(c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => err(*pos, JsonErrorKind::UnexpectedEnd),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return err(*pos, JsonErrorKind::ExpectedEither(',', '}')),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return err(*pos, JsonErrorKind::ExpectedEither(',', ']')),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return err(*pos, JsonErrorKind::UnterminatedString),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or(JsonError {
                                offset: *pos,
                                kind: JsonErrorKind::TruncatedEscape,
                            })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            offset: *pos,
                            kind: JsonErrorKind::TruncatedEscape,
                        })?;
                        // Surrogates never appear in our own output; map
                        // them to the replacement character on input.
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return err(*pos, JsonErrorKind::BadEscape),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing
                // at char boundaries is safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| JsonError {
                    offset: *pos,
                    kind: JsonErrorKind::InvalidUtf8,
                })?;
                let c = rest.chars().next().unwrap();
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| JsonError {
        offset: start,
        kind: JsonErrorKind::InvalidUtf8,
    })?;
    let parsed = if fractional {
        text.parse::<f64>().ok().map(Json::Float)
    } else {
        text.parse::<i64>().ok().map(Json::Int)
    };
    parsed.ok_or(JsonError {
        offset: start,
        kind: JsonErrorKind::BadNumber,
    })
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the [`Json`] document model.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Pretty-prints any [`ToJson`] value (the `serde_json::to_string_pretty`
/// replacement).
pub fn to_json_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().pretty()
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),* $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

impl_tojson_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_layout_matches_serde_style() {
        let v = Json::obj(vec![
            ("name", Json::Str("grep".into())),
            ("cycles", Json::Int(42)),
            ("speedup", Json::Float(2.0)),
            ("tags", Json::Array(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Array(vec![])),
        ]);
        let expect = "{\n  \"name\": \"grep\",\n  \"cycles\": 42,\n  \"speedup\": 2.0,\n  \"tags\": [\n    true,\n    null\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.pretty(), expect);
    }

    #[test]
    fn floats_round_trip_and_stay_numbers() {
        assert_eq!(Json::Float(4.0).pretty(), "4.0");
        assert_eq!(
            Json::Float(0.30000000000000004).pretty(),
            "0.30000000000000004"
        );
        assert_eq!(Json::Float(f64::NAN).pretty(), "null");
    }

    #[test]
    fn strings_escape_controls() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).pretty(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn deterministic_output() {
        let v = [(1u64, 2.5f64), (3, 4.5)];
        let j: Vec<Json> = v.iter().map(|t| t.to_json()).collect();
        assert_eq!(Json::Array(j.clone()).pretty(), Json::Array(j).pretty());
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = Json::obj(vec![
            ("name", Json::Str("dot\"prod\n".into())),
            ("cycles", Json::Int(-42)),
            ("speedup", Json::Float(2.25)),
            ("tags", Json::Array(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Array(vec![])),
            ("nested", Json::obj(vec![("deep", Json::Float(1e-6))])),
        ]);
        let back = Json::parse(&v.pretty()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_accessors_navigate() {
        let v = Json::parse(r#"{"a": {"b": [1, 2.5, "x", true]}}"#).unwrap();
        let arr = v.get("a").and_then(|a| a.get("b")).unwrap();
        let items = arr.as_array().unwrap();
        assert_eq!(items[0].as_i64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("x"));
        assert_eq!(items[3].as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_i64(), None);
    }

    #[test]
    fn parse_rejects_malformed_documents_with_offsets() {
        use JsonErrorKind as K;
        for (bad, offset, kind) in [
            ("", 0, K::UnexpectedEnd),
            ("{", 1, K::Expected('"')),
            ("[1,]", 3, K::BadNumber),
            ("{\"a\" 1}", 5, K::Expected(':')),
            ("tru", 0, K::BadNumber),
            ("1 2", 2, K::TrailingData),
            ("\"open", 5, K::UnterminatedString),
            ("{\"a\": 1; }", 7, K::ExpectedEither(',', '}')),
            ("[1 2]", 3, K::ExpectedEither(',', ']')),
            ("\"bad \\x escape\"", 6, K::BadEscape),
            ("\"trunc \\u12\"", 8, K::TruncatedEscape),
            ("99999999999999999999", 0, K::BadNumber),
        ] {
            let e = Json::parse(bad).expect_err(bad);
            assert_eq!((e.offset, e.kind), (offset, kind), "input {bad:?}");
            // Every error renders as `offset: message`.
            assert!(e.to_string().starts_with(&format!("{offset}: ")));
        }
    }
}
