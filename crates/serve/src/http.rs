//! A minimal HTTP/1.1 codec over blocking `std::io` streams.
//!
//! Hand-rolled on purpose: the container has no crates.io access and the
//! server only needs the subset the loadgen client and the CI smoke job
//! exercise — request line + headers, `Content-Length` bodies, keep-alive.
//! No chunked encoding, no TLS, no HTTP/2; a request using a feature
//! outside the subset gets a clean `400`/`413`, never a hang or a panic.

use std::fmt;
use std::io::{self, BufRead, Write};

/// The largest request head (request line + headers) we accept, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// The largest request body we accept, bytes.  Programs submitted as asm
/// text are small; anything bigger is a client bug.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why reading a request off the wire failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line.
    /// Normal end of a keep-alive connection, not a protocol error.
    Closed,
    /// The socket's read timeout elapsed mid-request (a stalled or
    /// silent client on a keep-alive connection).  Kept distinct from
    /// [`HttpError::Io`] so the server can close without writing an
    /// error response nobody is reading.
    Timeout,
    /// Socket-level failure (message of the underlying `io::Error`).
    Io(String),
    /// The request line was not `METHOD target HTTP/1.x`.
    BadRequestLine(String),
    /// A header line had no `:` separator.
    BadHeader(String),
    /// The head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// `Content-Length` was missing on a method requiring a body, or
    /// unparsable.
    BadContentLength,
    /// The declared body length exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// The stream ended before `Content-Length` bytes arrived.
    TruncatedBody,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::Io(m) => write!(f, "i/o error: {m}"),
            HttpError::BadRequestLine(l) => write!(f, "malformed request line: {l:?}"),
            HttpError::BadHeader(l) => write!(f, "malformed header: {l:?}"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BadContentLength => write!(f, "missing or invalid Content-Length"),
            HttpError::BodyTooLarge(n) => {
                write!(f, "declared body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
            HttpError::TruncatedBody => write!(f, "connection closed mid-body"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        match e.kind() {
            // Both kinds occur for an elapsed `set_read_timeout`,
            // platform-dependently.
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e.to_string()),
        }
    }
}

/// One parsed request: method, target path, lower-cased headers, body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// `GET`, `POST`, … (as sent, upper-case expected).
    pub method: String,
    /// The request target (path + optional query, as sent).
    pub target: String,
    /// Headers with names lower-cased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this
    /// exchange (`Connection: close`; HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one line terminated by `\n`, stripping the `\r\n` or `\n`.
/// Returns `None` at clean EOF before any byte.
fn read_line<R: BufRead>(r: &mut R, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::TruncatedBody);
        }
        let take = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => buf.len(),
        };
        if take > *budget {
            return Err(HttpError::HeadTooLarge);
        }
        *budget -= take;
        let done = buf[take - 1] == b'\n';
        line.extend_from_slice(&buf[..take]);
        r.consume(take);
        if done {
            while matches!(line.last(), Some(b'\n' | b'\r')) {
                line.pop();
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
    }
}

/// Reads and parses one request (head + `Content-Length` body).
///
/// # Errors
///
/// [`HttpError::Closed`] at clean EOF (keep-alive connection done);
/// other variants for protocol violations and socket failures.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let line = match read_line(r, &mut budget)? {
        None => return Err(HttpError::Closed),
        Some(l) => l,
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if v.starts_with("HTTP/1.") => {
            (m.to_string(), t.to_string(), v)
        }
        _ => return Err(HttpError::BadRequestLine(line)),
    };
    let _ = version;
    let mut headers = Vec::new();
    loop {
        let line = match read_line(r, &mut budget)? {
            None => return Err(HttpError::TruncatedBody),
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.clone()))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let req = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };
    let len = match req.header("content-length") {
        None if req.method == "POST" || req.method == "PUT" => {
            return Err(HttpError::BadContentLength)
        }
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadContentLength)?,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::TruncatedBody
        } else {
            HttpError::from(e)
        }
    })?;
    Ok(Request { body, ..req })
}

/// One response to write: status, extra headers, body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length` (e.g.
    /// `Retry-After` on 503).
    pub headers: Vec<(String, String)>,
    /// Response body (always JSON in this server).
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status and body text.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The standard reason phrase for the status codes this server emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes the response (`close` adds `Connection: close`).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to<W: Write>(&self, w: &mut W, close: bool) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        head.push_str("Content-Type: application/json\r\n");
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Client side: writes one request (used by loadgen and the tests).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_request<W: Write>(
    w: &mut W,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!("{method} {target} HTTP/1.1\r\n");
    head.push_str("Host: psb-serve\r\n");
    if !body.is_empty() || method == "POST" {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Client side: reads one response (status, headers, body).
///
/// # Errors
///
/// [`HttpError`] on protocol violations, truncation, or socket failure.
pub fn read_response<R: BufRead>(r: &mut R) -> Result<Response, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let line = match read_line(r, &mut budget)? {
        None => return Err(HttpError::Closed),
        Some(l) => l,
    };
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| HttpError::BadRequestLine(line.clone()))?;
    let mut headers = Vec::new();
    loop {
        let line = match read_line(r, &mut budget)? {
            None => return Err(HttpError::TruncatedBody),
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.clone()))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let len = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::TruncatedBody
        } else {
            HttpError::from(e)
        }
    })?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body_and_headers() {
        let req =
            parse(b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"rest").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/run");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"a\"");
        assert!(!req.wants_close());
    }

    #[test]
    fn keep_alive_reads_back_to_back_requests() {
        let wire =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        let a = read_request(&mut r).unwrap();
        assert_eq!(a.target, "/healthz");
        assert!(!a.wants_close());
        let b = read_request(&mut r).unwrap();
        assert_eq!(b.target, "/metrics");
        assert!(b.wants_close());
        assert_eq!(read_request(&mut r), Err(HttpError::Closed));
    }

    #[test]
    fn rejects_protocol_violations_without_panicking() {
        assert_eq!(parse(b""), Err(HttpError::Closed));
        assert!(matches!(
            parse(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert_eq!(
            parse(b"POST /run HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        assert_eq!(
            parse(b"POST /run HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        assert_eq!(
            parse(b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::TruncatedBody)
        );
        let huge = format!(
            "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(
            parse(huge.as_bytes()),
            Err(HttpError::BodyTooLarge(MAX_BODY_BYTES + 1))
        );
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert_eq!(parse(long_line.as_bytes()), Err(HttpError::HeadTooLarge));
    }

    #[test]
    fn response_round_trips_through_the_client_reader() {
        let resp =
            Response::json(503, "{\"error\":\"queue full\"}").with_header("Retry-After", "1");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let back = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(back.status, 503);
        assert_eq!(back.body, resp.body);
        assert!(back
            .headers
            .iter()
            .any(|(n, v)| n == "retry-after" && v == "1"));
    }
}
