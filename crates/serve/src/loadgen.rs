//! The closed-loop load generator and latency reporter.
//!
//! The request mix is a fixed pool of shapes drawn by a seeded
//! splitmix64 stream, so the *sequence of shapes is a pure function of
//! the seed* — which client thread happens to send request `i` never
//! changes what request `i` is.  Combined with the server's
//! single-flight cache (N distinct shapes = exactly N compiles at any
//! concurrency), every aggregate in the report is jobs-deterministic;
//! under `deterministic` the wall-clock latency numbers are zeroed too
//! and the whole report is byte-identical at any `--jobs`.
//!
//! Two phases: **warm** issues each distinct shape once (this is where
//! all the compiles happen), then **mix** issues the seeded stream
//! against the now-warm cache — the phase the ≥ 90% hit-rate
//! acceptance criterion measures.

use crate::http::{read_response, write_request, HttpError};
use crate::json::{Json, ToJson};
use psb_telemetry::{ns_to_rounded_s, Histogram};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One `repro loadgen` invocation.
#[derive(Clone, PartialEq, Debug)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Requests in the mix phase (the warm phase adds one request per
    /// distinct shape on top).
    pub requests: usize,
    /// Closed-loop client threads.
    pub jobs: usize,
    /// Seed for the request-shape stream.
    pub seed: u64,
    /// Zero wall-derived report values for byte-identical output.
    pub deterministic: bool,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: String::new(),
            requests: 100,
            jobs: 1,
            seed: 42,
            deterministic: false,
        }
    }
}

/// The fixed shape pool: 2 workloads × 2 models × 2 sizes, all
/// comfortably inside any sane cycle budget.
fn shape_pool() -> Vec<Json> {
    let mut shapes = Vec::new();
    for workload in ["grep", "li"] {
        for model in ["region-pred", "trace"] {
            for size in [96u64, 160] {
                shapes.push(Json::obj(vec![
                    ("workload", workload.to_json()),
                    ("models", Json::Array(vec![Json::Str(model.to_string())])),
                    ("size", size.to_json()),
                ]));
            }
        }
    }
    shapes
}

/// splitmix64: the stream underlying shape selection.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Tallies shared by all client threads, merged under one lock at
/// request granularity (requests are milliseconds of work; the lock is
/// nanoseconds — contention is irrelevant next to the socket).
#[derive(Default)]
struct Tally {
    status: BTreeMap<u16, u64>,
    sources: BTreeMap<String, u64>,
    transport_errors: u64,
    latency: Histogram,
}

fn record_response(
    tally: &Mutex<Tally>,
    result: Result<(u16, Vec<u8>), HttpError>,
    elapsed_ns: u64,
) {
    let mut t = tally.lock().expect("tally poisoned");
    match result {
        Err(_) => t.transport_errors += 1,
        Ok((status, body)) => {
            *t.status.entry(status).or_insert(0) += 1;
            t.latency.record(elapsed_ns);
            if let Ok(v) = Json::parse(&String::from_utf8_lossy(&body)) {
                if let Some(models) = v.get("models").and_then(|m| m.as_array()) {
                    for m in models {
                        if let Some(src) = m.get("source").and_then(|s| s.as_str()) {
                            *t.sources.entry(src.to_string()).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
    }
}

/// One client's connection, lazily (re)established.
struct Client {
    addr: String,
    conn: Option<(BufReader<TcpStream>, TcpStream)>,
}

impl Client {
    fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            conn: None,
        }
    }

    fn post_run(&mut self, body: &[u8]) -> Result<(u16, Vec<u8>), HttpError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            let reader = BufReader::new(stream.try_clone()?);
            self.conn = Some((reader, stream));
        }
        let (reader, stream) = self.conn.as_mut().expect("just connected");
        let send = write_request(stream, "POST", "/run", body)
            .map_err(HttpError::from)
            .and_then(|()| read_response(reader));
        match send {
            Ok(resp) => Ok((resp.status, resp.body)),
            Err(e) => {
                // Keep-alive connections can die between requests (server
                // restart, timeout); retry once on a fresh connection.
                self.conn = None;
                let stream = TcpStream::connect(&self.addr)?;
                let mut reader = BufReader::new(stream.try_clone()?);
                let mut stream = stream;
                write_request(&mut stream, "POST", "/run", body)?;
                let resp = read_response(&mut reader)?;
                self.conn = Some((reader, stream));
                let _ = e;
                Ok((resp.status, resp.body))
            }
        }
    }
}

/// Runs the two-phase load and produces the latency/cache report.
///
/// # Errors
///
/// A message when the server is unreachable for the very first request
/// (after that, per-request transport failures are tallied, not fatal).
pub fn run_loadgen(config: &LoadgenConfig) -> Result<Json, String> {
    let shapes = shape_pool();
    let bodies: Vec<Vec<u8>> = shapes.iter().map(|s| s.pretty().into_bytes()).collect();

    // Fail fast (and clearly) if nothing is listening.  A health probe,
    // not a /run: it must not perturb the server's cache state or the
    // warm-phase compiled counts.
    {
        let stream = TcpStream::connect(&config.addr)
            .map_err(|e| format!("server unreachable at {}: {e}", config.addr))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("socket clone failed: {e}"))?,
        );
        let mut stream = stream;
        write_request(&mut stream, "GET", "/healthz", b"")
            .map_err(|e| format!("health probe failed: {e}"))?;
        let health = read_response(&mut reader)
            .map_err(|e| format!("health probe failed at {}: {e}", config.addr))?;
        if health.status != 200 {
            return Err(format!("health probe returned {}", health.status));
        }
    }

    // Phase 1: warm every shape (sequential — these are the compiles).
    let warm_tally = Mutex::new(Tally::default());
    let mut warm_client = Client::new(&config.addr);
    for body in &bodies {
        let t0 = Instant::now();
        let r = warm_client.post_run(body);
        record_response(&warm_tally, r, t0.elapsed().as_nanos() as u64);
    }

    // Phase 2: the seeded mix, closed-loop over `jobs` clients.
    let mix_tally = Mutex::new(Tally::default());
    let next = AtomicUsize::new(0);
    let jobs = config.jobs.max(1).min(config.requests.max(1));
    std::thread::scope(|s| {
        for _ in 0..jobs {
            let next = &next;
            let mix_tally = &mix_tally;
            let bodies = &bodies;
            s.spawn(move || {
                let mut client = Client::new(&config.addr);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= config.requests {
                        return;
                    }
                    let shape =
                        splitmix64(config.seed.wrapping_add(i as u64)) as usize % bodies.len();
                    let t0 = Instant::now();
                    let r = client.post_run(&bodies[shape]);
                    record_response(mix_tally, r, t0.elapsed().as_nanos() as u64);
                }
            });
        }
    });

    let warm = warm_tally.into_inner().expect("tally poisoned");
    let mix = mix_tally.into_inner().expect("tally poisoned");
    Ok(report(config, &shapes, &warm, &mix))
}

fn tally_json(t: &Tally, deterministic: bool) -> Json {
    let status = t
        .status
        .iter()
        .map(|(code, n)| (code.to_string(), Json::Int(*n as i64)))
        .collect();
    let sources = t
        .sources
        .iter()
        .map(|(src, n)| (src.clone(), Json::Int(*n as i64)))
        .collect();
    let lat = |p: f64| {
        if deterministic {
            0.0
        } else {
            ns_to_rounded_s(t.latency.percentile(p))
        }
    };
    Json::obj(vec![
        (
            "requests",
            (t.latency.count() + t.transport_errors).to_json(),
        ),
        ("transport_errors", t.transport_errors.to_json()),
        ("status", Json::Object(status)),
        ("sources", Json::Object(sources)),
        (
            "latency_s",
            Json::obj(vec![
                ("p50", lat(50.0).to_json()),
                ("p90", lat(90.0).to_json()),
                ("p99", lat(99.0).to_json()),
                (
                    "mean",
                    (if deterministic {
                        0.0
                    } else {
                        ns_to_rounded_s(t.latency.mean() as u64)
                    })
                    .to_json(),
                ),
            ]),
        ),
    ])
}

fn hit_rate(t: &Tally) -> f64 {
    let hits: u64 = t
        .sources
        .iter()
        .filter(|(s, _)| s.as_str() == "memory" || s.as_str() == "disk")
        .map(|(_, n)| n)
        .sum();
    let total: u64 = t.sources.values().sum();
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

fn report(config: &LoadgenConfig, shapes: &[Json], warm: &Tally, mix: &Tally) -> Json {
    let failed: u64 = mix.transport_errors
        + warm.transport_errors
        + warm
            .status
            .iter()
            .chain(mix.status.iter())
            .filter(|(&code, _)| code != 200)
            .map(|(_, n)| n)
            .sum::<u64>();
    // `jobs` is deliberately absent: the report must be byte-identical
    // at any client concurrency.
    Json::obj(vec![
        ("schema", "psb-loadgen-v1".to_json()),
        ("seed", config.seed.to_json()),
        ("shapes", shapes.len().to_json()),
        ("deterministic", config.deterministic.to_json()),
        ("failed", failed.to_json()),
        ("mix_hit_rate", hit_rate(mix).to_json()),
        ("warm", tally_json(warm, config.deterministic)),
        ("mix", tally_json(mix, config.deterministic)),
    ])
}

/// Renders the loadgen report as a short human summary (the stderr
/// companion to the JSON document).
pub fn render_report(report: &Json) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let get_u = |v: &Json, k: &str| v.get(k).and_then(Json::as_i64).unwrap_or(0);
    let get_f = |v: &Json, k: &str| v.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    writeln!(
        s,
        "loadgen: seed {} over {} shape(s), {} failed, mix hit rate {:.1}%",
        get_u(report, "seed"),
        get_u(report, "shapes"),
        get_u(report, "failed"),
        get_f(report, "mix_hit_rate") * 100.0
    )
    .unwrap();
    for phase in ["warm", "mix"] {
        let Some(t) = report.get(phase) else { continue };
        let lat = t.get("latency_s");
        let lat_f = |k: &str| {
            lat.and_then(|l| l.get(k))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        writeln!(
            s,
            "  {phase:<4}: {} request(s), p50 {:.6}s p90 {:.6}s p99 {:.6}s mean {:.6}s",
            get_u(t, "requests"),
            lat_f("p50"),
            lat_f("p90"),
            lat_f("p99"),
            lat_f("mean")
        )
        .unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_stream_is_a_pure_function_of_the_seed() {
        let pick =
            |seed: u64, i: usize, n: usize| splitmix64(seed.wrapping_add(i as u64)) as usize % n;
        let a: Vec<usize> = (0..64).map(|i| pick(7, i, 8)).collect();
        let b: Vec<usize> = (0..64).map(|i| pick(7, i, 8)).collect();
        assert_eq!(a, b);
        let c: Vec<usize> = (0..64).map(|i| pick(8, i, 8)).collect();
        assert_ne!(a, c, "different seeds give different mixes");
        // Every shape appears: the mix phase really exercises the pool.
        let mut seen = a.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, (0..8).collect::<Vec<usize>>());
    }

    #[test]
    fn shape_pool_is_fixed_and_small() {
        let shapes = shape_pool();
        assert_eq!(shapes.len(), 8);
        // Shapes are distinct cache keys: distinct serialized bodies.
        let mut bodies: Vec<String> = shapes.iter().map(|s| s.pretty()).collect();
        bodies.sort();
        bodies.dedup();
        assert_eq!(bodies.len(), 8);
    }

    #[test]
    fn hit_rate_counts_memory_and_disk_as_hits() {
        let mut t = Tally::default();
        t.sources.insert("memory".to_string(), 80);
        t.sources.insert("disk".to_string(), 12);
        t.sources.insert("compiled".to_string(), 8);
        assert!((hit_rate(&t) - 0.92).abs() < 1e-12);
        assert_eq!(hit_rate(&Tally::default()), 0.0);
    }
}
