//! psb-serve — simulation-as-a-service over the PSB pipeline.
//!
//! A zero-dependency, multi-tenant HTTP/1.1 + JSON server
//! (`repro serve`) that accepts compile+run requests — a named workload
//! or inline assembly, a model list, seeds and sizes — and returns
//! metrics and trace artifacts from the same golden-checked pipeline the
//! experiment harness runs.  Plus the matching deterministic closed-loop
//! load generator (`repro loadgen`).
//!
//! Layer map:
//!
//! | Module | Job |
//! |---|---|
//! | [`json`] | The shared hand-rolled JSON document model (typed-error parser + serde-style printer) |
//! | [`http`] | Minimal HTTP/1.1 codec over blocking `std::net` (keep-alive, `Content-Length`, size caps) |
//! | [`api`] | Request decoding and execution against the compile cache hierarchy, with typed errors |
//! | [`server`] | Acceptor + bounded admission queue + worker pool + `/metrics` |
//! | [`loadgen`] | Seeded request mix, closed-loop clients, jobs-deterministic latency report |
//!
//! The server's caching hierarchy is the in-memory single-flight
//! [`ArtifactCache`] backed by the persistent [`DiskStore`]
//! (`psb-compile`), shared across every request and tenant: two tenants
//! posting the same program, profile and scheduling configuration get
//! one compile, and a server restart refills from disk instead of
//! recompiling.
//!
//! [`ArtifactCache`]: psb_compile::ArtifactCache
//! [`DiskStore`]: psb_compile::DiskStore

#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod server;

pub use api::{ApiError, SimRequest, Source};
pub use loadgen::{render_report, run_loadgen, LoadgenConfig};
pub use server::{metrics_summary, serve, ServeConfig, ServeHandle};
