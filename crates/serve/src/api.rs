//! Request decoding and execution: JSON in, compile + golden-checked
//! simulation out.
//!
//! The execution path is the same pipeline the experiment harness runs —
//! [`psb_compile::compile_stored`] through the shared [`ArtifactCache`]
//! and optional [`DiskStore`], then the VLIW machine cross-checked
//! against the scalar golden model — wrapped in typed errors instead of
//! panics so a bad request can never take a worker thread down.

use crate::json::{Json, ToJson};
use psb_compile::{
    compile_stored, ArtifactCache, ArtifactSource, CompileRequest, DiskStore, ProfileSource,
};
use psb_core::{MachineConfig, MemoryModel, VliwError};
use psb_isa::{parse_program, ScalarProgram};
use psb_scalar::{RunError, RunResult, ScalarConfig, ScalarMachine};
use psb_sched::{Model, SchedConfig};
use psb_telemetry::{names, parallel_map_t, Telemetry};

/// Where a request's programs come from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Source {
    /// A named built-in workload; training and evaluation inputs are
    /// generated from the two seeds.
    Workload(String),
    /// Inline assembly text.  The program self-trains: the profile run
    /// executes the same program that is then measured.
    Program(String),
}

/// One decoded simulation request.
#[derive(Clone, PartialEq, Debug)]
pub struct SimRequest {
    /// Program source.
    pub source: Source,
    /// Models to compile and (for `/run`) execute.
    pub models: Vec<Model>,
    /// Workload size in input elements (ignored for inline programs).
    pub size: usize,
    /// Seed for the training input.
    pub train_seed: u64,
    /// Seed for the evaluation input.
    pub eval_seed: u64,
    /// Per-request simulated-cycle budget; the server may cap it lower.
    pub max_cycles: Option<u64>,
    /// Whether to return a Chrome-trace timeline of the request.
    pub trace: bool,
    /// Timing model the simulation runs under.  Never part of the
    /// compile cache key — artifacts are timing-model independent.
    pub memory: MemoryModel,
}

/// Why a request was refused, mapped onto a status code by the server.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ApiError {
    /// Client error → 400 (malformed JSON, unknown workload/model,
    /// unparsable program, faulting program).
    BadRequest(String),
    /// The simulation exceeded its cycle budget → 503.
    OverBudget(String),
    /// Pipeline bug surfaced by a request (compile failure on a valid
    /// program, golden-model divergence) → 500.
    Internal(String),
}

impl ApiError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ApiError::BadRequest(_) => 400,
            ApiError::OverBudget(_) => 503,
            ApiError::Internal(_) => 500,
        }
    }

    /// The machine-readable error kind for the response body.
    pub fn kind(&self) -> &'static str {
        match self {
            ApiError::BadRequest(_) => "bad_request",
            ApiError::OverBudget(_) => "over_budget",
            ApiError::Internal(_) => "internal",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            ApiError::BadRequest(m) | ApiError::OverBudget(m) | ApiError::Internal(m) => m,
        }
    }

    /// The JSON error body (`{"error": ..., "kind": ...}`).
    pub fn body(&self) -> Json {
        Json::obj(vec![
            ("error", self.message().to_json()),
            ("kind", Json::Str(self.kind().to_string())),
        ])
    }
}

fn bad(msg: impl Into<String>) -> ApiError {
    ApiError::BadRequest(msg.into())
}

/// Looks up a model by its report name.
///
/// # Errors
///
/// [`ApiError::BadRequest`] naming the unknown model.
pub fn parse_model(name: &str) -> Result<Model, ApiError> {
    Model::ALL
        .iter()
        .copied()
        .find(|m| m.name() == name)
        .ok_or_else(|| bad(format!("unknown model '{name}'")))
}

fn get_u64(obj: &Json, key: &str, default: u64) -> Result<u64, ApiError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_i64()
            .filter(|&n| n >= 0)
            .map(|n| n as u64)
            .ok_or_else(|| bad(format!("'{key}' must be a non-negative integer"))),
    }
}

/// Decodes the optional `"memory"` field: a spec string
/// (`"perfect"`, `"fixed:LOAD:FETCH"`, `"cache[:I:D]"`) or an object
/// `{"icache": SPEC|"off", "dcache": SPEC|"off"}` naming a cache model
/// side by side.  Absent means [`MemoryModel::Perfect`] — the
/// pre-refactor timing.
fn parse_memory(v: &Json) -> Result<MemoryModel, ApiError> {
    let model = match v.get("memory") {
        None => return Ok(MemoryModel::default()),
        Some(Json::Str(spec)) => {
            MemoryModel::parse(spec).map_err(|e| bad(format!("'memory': {e}")))?
        }
        Some(obj @ Json::Object(_)) => {
            let side = |key: &str| -> Result<String, ApiError> {
                match obj.get(key) {
                    None => Ok("off".to_string()),
                    Some(Json::Str(s)) => Ok(s.clone()),
                    Some(_) => Err(bad(format!(
                        "'memory.{key}' must be a cache spec string or \"off\""
                    ))),
                }
            };
            let spec = format!("cache:{}:{}", side("icache")?, side("dcache")?);
            MemoryModel::parse(&spec).map_err(|e| bad(format!("'memory': {e}")))?
        }
        Some(_) => return Err(bad("'memory' must be a spec string or an object")),
    };
    model
        .validate()
        .map_err(|e| bad(format!("'memory': {e}")))?;
    Ok(model)
}

impl SimRequest {
    /// Decodes a request body.
    ///
    /// # Errors
    ///
    /// [`ApiError::BadRequest`] describing the first violation found.
    pub fn from_json(v: &Json) -> Result<SimRequest, ApiError> {
        if !matches!(v, Json::Object(_)) {
            return Err(bad("request body must be a JSON object"));
        }
        let source = match (v.get("workload"), v.get("program")) {
            (Some(w), None) => Source::Workload(
                w.as_str()
                    .ok_or_else(|| bad("'workload' must be a string"))?
                    .to_string(),
            ),
            (None, Some(p)) => Source::Program(
                p.as_str()
                    .ok_or_else(|| bad("'program' must be a string"))?
                    .to_string(),
            ),
            (Some(_), Some(_)) => return Err(bad("give either 'workload' or 'program', not both")),
            (None, None) => return Err(bad("request needs a 'workload' name or a 'program'")),
        };
        let models = match v.get("models") {
            None => vec![Model::RegionPred],
            Some(Json::Str(s)) if s == "all" => Model::ALL.to_vec(),
            Some(Json::Array(items)) if !items.is_empty() => items
                .iter()
                .map(|m| {
                    m.as_str()
                        .ok_or_else(|| bad("'models' entries must be strings"))
                        .and_then(parse_model)
                })
                .collect::<Result<Vec<Model>, ApiError>>()?,
            Some(_) => {
                return Err(bad(
                    "'models' must be \"all\" or a non-empty array of names",
                ))
            }
        };
        let size = get_u64(v, "size", psb_workloads::DEFAULT_SIZE as u64)? as usize;
        let max_cycles = match v.get("max_cycles") {
            None => None,
            Some(_) => Some(get_u64(v, "max_cycles", 0)?),
        };
        Ok(SimRequest {
            source,
            models,
            size,
            train_seed: get_u64(v, "train_seed", 11)?,
            eval_seed: get_u64(v, "eval_seed", 1234)?,
            max_cycles,
            trace: matches!(v.get("trace"), Some(Json::Bool(true))),
            memory: parse_memory(v)?,
        })
    }

    /// Decodes a request straight from body bytes (`400` text for both
    /// invalid UTF-8 and malformed JSON, with the parser's offset).
    ///
    /// # Errors
    ///
    /// [`ApiError::BadRequest`] for undecodable bodies.
    pub fn from_body(body: &[u8]) -> Result<SimRequest, ApiError> {
        let text = std::str::from_utf8(body).map_err(|_| bad("request body is not UTF-8"))?;
        let v = Json::parse(text).map_err(|e| bad(format!("malformed JSON: {e}")))?;
        SimRequest::from_json(&v)
    }

    /// The effective simulated-cycle budget: the request's ask capped by
    /// the server's `--cycle-budget`, defaulting to the machine's own
    /// limit when neither is given.
    pub fn budget(&self, server_cap: Option<u64>) -> u64 {
        let default = MachineConfig::default().max_cycles;
        let asked = self.max_cycles.unwrap_or(default);
        asked.min(server_cap.unwrap_or(default)).max(1)
    }
}

/// The resolved training and evaluation programs of a request.
struct Programs {
    name: String,
    train: ScalarProgram,
    eval: ScalarProgram,
}

fn resolve(req: &SimRequest) -> Result<Programs, ApiError> {
    match &req.source {
        Source::Workload(name) => {
            let train = psb_workloads::by_name(name, req.train_seed, req.size)
                .ok_or_else(|| bad(format!("unknown workload '{name}'")))?;
            let eval = psb_workloads::by_name(name, req.eval_seed, req.size)
                .ok_or_else(|| bad(format!("unknown workload '{name}'")))?;
            Ok(Programs {
                name: name.clone(),
                train: train.program,
                eval: eval.program,
            })
        }
        Source::Program(text) => {
            let program =
                parse_program(text).map_err(|e| bad(format!("program parse error: {e}")))?;
            Ok(Programs {
                name: "inline".to_string(),
                train: program.clone(),
                eval: program,
            })
        }
    }
}

fn run_golden(eval: &ScalarProgram, budget: u64) -> Result<RunResult, ApiError> {
    let cfg = ScalarConfig {
        max_cycles: budget,
        ..ScalarConfig::default()
    };
    ScalarMachine::new(eval, cfg).run().map_err(|e| match e {
        RunError::CycleLimit(n) => {
            ApiError::OverBudget(format!("scalar golden run exceeded the {n}-cycle budget"))
        }
        other => bad(format!("program faults on the scalar machine: {other}")),
    })
}

/// One model's slice of a `/run` or `/compile` response.
struct ModelOutcome {
    model: Model,
    source: ArtifactSource,
    json: Json,
}

fn count_cache_outcome<T: Telemetry>(tel: &T, source: ArtifactSource) {
    let name = match source {
        ArtifactSource::Memory => names::SERVE_CACHE_MEMORY_HITS,
        ArtifactSource::Disk => names::SERVE_CACHE_DISK_HITS,
        ArtifactSource::Compiled => names::SERVE_CACHE_COMPILES,
    };
    tel.counter(name, 1);
}

/// Executes a `/run` request: golden scalar run, then every model
/// compiled through the cache hierarchy and simulated with the golden
/// cross-check.  Model runs fan out over `jobs` pool workers.
///
/// # Errors
///
/// [`ApiError`] — never panics on request content.
pub fn handle_run<T: Telemetry>(
    req: &SimRequest,
    cache: &ArtifactCache,
    store: Option<&DiskStore>,
    server_cap: Option<u64>,
    jobs: usize,
    tel: &T,
) -> Result<Json, ApiError> {
    let programs = resolve(req)?;
    let budget = req.budget(server_cap);
    // The golden run is budget-checked *before* any compile so an
    // over-budget request never perturbs cache or store state: its
    // rejection (and every counter it touches) is identical whether the
    // artifact is cached or not.
    let scalar = {
        let _sp = tel.span("serve", || format!("golden:{}", programs.name));
        run_golden(&programs.eval, budget)?
    };
    let outcomes = parallel_map_t(
        &req.models,
        jobs,
        tel,
        |_, m| format!("run:{}:{m}", programs.name),
        |&model| -> Result<ModelOutcome, ApiError> {
            let creq = CompileRequest {
                program: &programs.eval,
                profile: ProfileSource::Train {
                    program: &programs.train,
                    config: ScalarConfig::default(),
                },
                sched: SchedConfig::new(model),
            };
            let (art, source) = compile_stored(&creq, cache, store, tel)
                .map_err(|e| ApiError::Internal(format!("{model}: compile failed: {e}")))?;
            count_cache_outcome(tel, source);
            let cfg = MachineConfig {
                max_cycles: budget,
                memory: req.memory,
                ..MachineConfig::default()
            };
            let res = art.run(cfg).map_err(|e| match e {
                VliwError::CycleLimit(n) => ApiError::OverBudget(format!(
                    "{model}: simulation exceeded the {n}-cycle budget"
                )),
                other => ApiError::Internal(format!("{model}: machine error: {other}")),
            })?;
            if res.observable(&programs.eval.live_out) != scalar.observable(&programs.eval.live_out)
            {
                return Err(ApiError::Internal(format!(
                    "{model}: diverged from the scalar golden model"
                )));
            }
            let speedup = scalar.cycles as f64 / res.cycles as f64;
            Ok(ModelOutcome {
                model,
                source,
                json: Json::obj(vec![
                    ("model", model.name().to_json()),
                    ("source", source.name().to_json()),
                    (
                        "content_hash",
                        Json::Str(format!("{:016x}", art.content_hash)),
                    ),
                    ("vliw_cycles", (res.cycles as i64).to_json()),
                    ("speedup", speedup.to_json()),
                    ("static_ops", art.program.static_ops().to_json()),
                    ("squashed_ops", (res.ops_squashed as i64).to_json()),
                    ("recoveries", (res.recoveries as i64).to_json()),
                    ("stall_ifetch", (res.stall_ifetch as i64).to_json()),
                    ("stall_load_miss", (res.stall_load_miss as i64).to_json()),
                    ("icache_misses", (res.icache_misses as i64).to_json()),
                    ("dcache_misses", (res.dcache_misses as i64).to_json()),
                ]),
            })
        },
    );
    let mut models = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        let o = o?;
        let _ = (o.model, o.source);
        models.push(o.json);
    }
    Ok(Json::obj(vec![
        ("name", programs.name.to_json()),
        ("size", req.size.to_json()),
        ("train_seed", (req.train_seed as i64).to_json()),
        ("eval_seed", (req.eval_seed as i64).to_json()),
        ("budget", (budget as i64).to_json()),
        ("memory", Json::Str(req.memory.to_string())),
        ("scalar_cycles", (scalar.cycles as i64).to_json()),
        ("models", Json::Array(models)),
    ]))
}

/// Executes a `/compile` request: compile every model through the cache
/// hierarchy, no simulation, no budget (budgets gate *runs* so they
/// never leak into cache keys or artifact state).
///
/// # Errors
///
/// [`ApiError`] — never panics on request content.
pub fn handle_compile<T: Telemetry>(
    req: &SimRequest,
    cache: &ArtifactCache,
    store: Option<&DiskStore>,
    jobs: usize,
    tel: &T,
) -> Result<Json, ApiError> {
    let programs = resolve(req)?;
    let outcomes = parallel_map_t(
        &req.models,
        jobs,
        tel,
        |_, m| format!("compile:{}:{m}", programs.name),
        |&model| -> Result<Json, ApiError> {
            let creq = CompileRequest {
                program: &programs.eval,
                profile: ProfileSource::Train {
                    program: &programs.train,
                    config: ScalarConfig::default(),
                },
                sched: SchedConfig::new(model),
            };
            let (art, source) = compile_stored(&creq, cache, store, tel)
                .map_err(|e| ApiError::Internal(format!("{model}: compile failed: {e}")))?;
            count_cache_outcome(tel, source);
            Ok(Json::obj(vec![
                ("model", model.name().to_json()),
                ("source", source.name().to_json()),
                (
                    "content_hash",
                    Json::Str(format!("{:016x}", art.content_hash)),
                ),
                ("words", art.program.words.len().to_json()),
                ("static_ops", art.program.static_ops().to_json()),
            ]))
        },
    );
    let models = outcomes.into_iter().collect::<Result<Vec<Json>, _>>()?;
    Ok(Json::obj(vec![
        ("name", programs.name.to_json()),
        ("size", req.size.to_json()),
        ("models", Json::Array(models)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_telemetry::NullTelemetry;

    fn decode(text: &str) -> Result<SimRequest, ApiError> {
        SimRequest::from_body(text.as_bytes())
    }

    #[test]
    fn decodes_a_full_request() {
        let req = decode(
            r#"{"workload": "grep", "models": ["region-pred", "trace"],
                "size": 96, "train_seed": 3, "eval_seed": 4,
                "max_cycles": 500, "trace": true}"#,
        )
        .unwrap();
        assert_eq!(req.source, Source::Workload("grep".to_string()));
        assert_eq!(req.models, vec![Model::RegionPred, Model::Trace]);
        assert_eq!((req.size, req.train_seed, req.eval_seed), (96, 3, 4));
        assert_eq!(req.max_cycles, Some(500));
        assert!(req.trace);
    }

    #[test]
    fn defaults_fill_in_missing_fields() {
        let req = decode(r#"{"workload": "grep"}"#).unwrap();
        assert_eq!(req.models, vec![Model::RegionPred]);
        assert_eq!(req.size, psb_workloads::DEFAULT_SIZE);
        assert_eq!((req.train_seed, req.eval_seed), (11, 1234));
        assert_eq!(req.max_cycles, None);
        assert!(!req.trace);
        let all = decode(r#"{"workload": "grep", "models": "all"}"#).unwrap();
        assert_eq!(all.models.len(), Model::ALL.len());
    }

    #[test]
    fn rejects_contradictory_and_malformed_requests() {
        for (body, needle) in [
            (r#"{"workload": "grep", "program": "x"}"#, "not both"),
            (r#"{"size": 5}"#, "'workload'"),
            (r#"{"workload": "grep", "models": []}"#, "'models'"),
            (
                r#"{"workload": "grep", "models": ["nope"]}"#,
                "unknown model",
            ),
            (r#"{"workload": "grep", "size": -3}"#, "'size'"),
            (r#"{"workload": 7}"#, "'workload' must be a string"),
            (r#"[1, 2]"#, "JSON object"),
            (r#"{"workload": "grep""#, "malformed JSON"),
        ] {
            let err = decode(body).expect_err(body);
            assert_eq!(err.status(), 400, "{body}");
            assert!(err.message().contains(needle), "{body}: {}", err.message());
        }
    }

    #[test]
    fn memory_field_decodes_specs_objects_and_rejects_bad_ones() {
        let req = decode(r#"{"workload": "grep"}"#).unwrap();
        assert_eq!(req.memory, MemoryModel::Perfect);
        let req = decode(r#"{"workload": "grep", "memory": "fixed:3:2"}"#).unwrap();
        assert_eq!(req.memory, MemoryModel::FixedLatency { load: 3, fetch: 2 });
        let req = decode(
            r#"{"workload": "grep",
                "memory": {"icache": "8x1x2x1x4", "dcache": "4x2x2x1x6"}}"#,
        )
        .unwrap();
        assert!(matches!(
            req.memory,
            MemoryModel::Cache {
                icache: Some(_),
                dcache: Some(_)
            }
        ));
        let req = decode(r#"{"workload": "grep", "memory": {"dcache": "64x2x4x1x10"}}"#).unwrap();
        assert!(matches!(
            req.memory,
            MemoryModel::Cache {
                icache: None,
                dcache: Some(_)
            }
        ));
        for (body, needle) in [
            (r#"{"workload": "grep", "memory": "slow"}"#, "'memory'"),
            (r#"{"workload": "grep", "memory": 7}"#, "'memory'"),
            (
                r#"{"workload": "grep", "memory": {"icache": 3}}"#,
                "'memory.icache'",
            ),
            (
                r#"{"workload": "grep", "memory": {"dcache": "0x1x1x1x1"}}"#,
                "'memory'",
            ),
        ] {
            let err = decode(body).expect_err(body);
            assert_eq!(err.status(), 400, "{body}");
            assert!(err.message().contains(needle), "{body}: {}", err.message());
        }
    }

    #[test]
    fn run_under_a_cache_model_reports_misses_and_matches_golden() {
        let cache = ArtifactCache::new();
        let req = decode(
            r#"{"workload": "grep", "size": 96, "models": ["region-pred"],
                "memory": {"icache": "8x1x2x1x4", "dcache": "4x2x2x1x6"}}"#,
        )
        .unwrap();
        let out = handle_run(&req, &cache, None, None, 1, &NullTelemetry).unwrap();
        assert_eq!(
            out.get("memory").and_then(|m| m.as_str()),
            Some("cache:8x1x2x1x4:4x2x2x1x6")
        );
        let models = out.get("models").and_then(|m| m.as_array()).unwrap();
        let m = &models[0];
        assert!(m.get("icache_misses").and_then(|v| v.as_i64()).unwrap() > 0);
        assert!(m.get("stall_ifetch").and_then(|v| v.as_i64()).unwrap() > 0);
    }

    #[test]
    fn budget_is_the_min_of_request_and_server_cap() {
        let mut req = decode(r#"{"workload": "grep"}"#).unwrap();
        let default = MachineConfig::default().max_cycles;
        assert_eq!(req.budget(None), default);
        assert_eq!(req.budget(Some(1000)), 1000);
        req.max_cycles = Some(400);
        assert_eq!(req.budget(Some(1000)), 400);
        assert_eq!(req.budget(Some(50)), 50);
        req.max_cycles = Some(0);
        assert_eq!(req.budget(None), 1, "budget 0 clamps to 1, not infinity");
    }

    #[test]
    fn run_executes_and_over_budget_rejects_with_503() {
        let cache = ArtifactCache::new();
        let req = decode(r#"{"workload": "grep", "size": 96, "models": ["region-pred"]}"#).unwrap();
        let out = handle_run(&req, &cache, None, None, 1, &NullTelemetry).unwrap();
        let models = out.get("models").and_then(|m| m.as_array()).unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(
            models[0].get("source").and_then(|s| s.as_str()),
            Some("compiled")
        );
        assert!(out.get("scalar_cycles").and_then(|c| c.as_i64()).unwrap() > 0);

        // Same request again: served from memory, identical measurement.
        let again = handle_run(&req, &cache, None, None, 1, &NullTelemetry).unwrap();
        let models = again.get("models").and_then(|m| m.as_array()).unwrap();
        assert_eq!(
            models[0].get("source").and_then(|s| s.as_str()),
            Some("memory")
        );

        // A tiny budget rejects before touching the cache.
        let tight = decode(r#"{"workload": "grep", "size": 96, "max_cycles": 3}"#).unwrap();
        let err = handle_run(&tight, &cache, None, None, 1, &NullTelemetry).unwrap_err();
        assert_eq!(err.status(), 503);
        assert_eq!(err.kind(), "over_budget");
    }

    #[test]
    fn inline_programs_self_train_and_faults_are_client_errors() {
        let cache = ArtifactCache::new();
        let asm = psb_workloads::by_name("grep", 7, 48)
            .unwrap()
            .program
            .to_asm();
        let body = Json::obj(vec![
            ("program", asm.as_str().to_json()),
            ("models", Json::Array(vec![Json::Str("global".to_string())])),
        ])
        .pretty();
        let req = SimRequest::from_body(body.as_bytes()).unwrap();
        let out = handle_run(&req, &cache, None, None, 1, &NullTelemetry).unwrap();
        assert_eq!(out.get("name").and_then(|n| n.as_str()), Some("inline"));

        let bad = decode(r#"{"program": "this is not asm"}"#).unwrap();
        let err = handle_run(&bad, &cache, None, None, 1, &NullTelemetry).unwrap_err();
        assert_eq!(err.status(), 400);
    }
}
