//! The differential oracle for the artifact cache: on randomly generated
//! fuzz programs, under every scheduling model, a cache-served artifact
//! must be byte-equal to one produced by the uncached `compile_fresh`
//! path — same content hash, same program, same decoded arena — and the
//! two paths must agree on failures too.  Also proves the request keys
//! of the seven models never collide on one program.

use proptest::prelude::*;
use psb_compile::{
    compile, compile_fresh, ArtifactCache, CompileError, CompileRequest, ProfileSource,
};
use psb_fuzz::gen_case;
use psb_scalar::{ScalarConfig, ScalarMachine};
use psb_sched::{Model, SchedConfig};
use std::collections::HashSet;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    #[test]
    fn cached_artifacts_are_byte_equal_to_fresh(seed in 0u64..500) {
        let case = gen_case(seed);
        let scfg = ScalarConfig {
            fault_once_addrs: case.fault_once.clone(),
            ..ScalarConfig::default()
        };
        let cache = ArtifactCache::new();
        let mut keys = HashSet::new();
        for model in Model::ALL {
            let req = CompileRequest {
                program: &case.program,
                profile: ProfileSource::Train {
                    program: &case.program,
                    config: scfg.clone(),
                },
                sched: SchedConfig::new(model),
            };
            prop_assert!(
                keys.insert(req.key()),
                "cross-model key collision under {}", model
            );
            match (compile(&req, &cache), compile_fresh(&req)) {
                (Ok(cached), Ok(fresh)) => {
                    // The second lookup must be served from cache — the
                    // very same Arc, not a recompile.
                    let again = compile(&req, &cache).unwrap();
                    prop_assert!(
                        Arc::ptr_eq(&cached, &again),
                        "second lookup recompiled under {}", model
                    );
                    prop_assert!(
                        cached.same_content(&fresh),
                        "cached != fresh under {}", model
                    );
                    prop_assert_eq!(cached.content_hash, fresh.content_hash);
                    prop_assert_eq!(&cached.program, &fresh.program);
                    prop_assert_eq!(cached.decoded.as_ref(), fresh.decoded.as_ref());
                    // Both arenas must also carry well-formed dispatch
                    // lowering — the tabled engine trusts these indices.
                    prop_assert!(
                        cached.decoded.validate_dispatch().is_ok(),
                        "cached arena fails dispatch validation under {}", model
                    );
                    prop_assert!(
                        fresh.decoded.validate_dispatch().is_ok(),
                        "fresh arena fails dispatch validation under {}", model
                    );
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "paths fail differently"),
                (cached, fresh) => prop_assert!(
                    false,
                    "cache/fresh disagree under {}: cached ok={}, fresh ok={}",
                    model, cached.is_ok(), fresh.is_ok()
                ),
            }
        }
    }
}

/// A provided profile equal to what the training run would produce gives
/// an identical artifact (stage timings aside) with a *different* key —
/// the key hashes the source of the profile, not just its value.
#[test]
fn provided_profile_matches_training_run() {
    let case = gen_case(7);
    let scalar = ScalarMachine::new(&case.program, ScalarConfig::default())
        .run()
        .expect("seed 7 runs clean");
    let trained = compile_fresh(&CompileRequest {
        program: &case.program,
        profile: ProfileSource::Train {
            program: &case.program,
            config: ScalarConfig::default(),
        },
        sched: SchedConfig::new(Model::RegionPred),
    })
    .unwrap();
    let provided = compile_fresh(&CompileRequest {
        program: &case.program,
        profile: ProfileSource::Provided(&scalar.edge_profile),
        sched: SchedConfig::new(Model::RegionPred),
    })
    .unwrap();
    assert_eq!(trained.content_hash, provided.content_hash);
    assert_eq!(trained.profile, provided.profile);
    assert_eq!(trained.program, provided.program);
    assert_ne!(
        trained.request_key, provided.request_key,
        "the request key encodes the profile source"
    );
    assert_eq!(provided.stats.profile_seconds, 0.0);
}

/// A failing training run surfaces as a typed profile-stage error.
#[test]
fn profile_stage_failure_is_typed() {
    let case = gen_case(0);
    let err = compile_fresh(&CompileRequest {
        program: &case.program,
        profile: ProfileSource::Train {
            program: &case.program,
            config: ScalarConfig {
                max_cycles: 1,
                ..ScalarConfig::default()
            },
        },
        sched: SchedConfig::new(Model::RegionPred),
    })
    .unwrap_err();
    assert!(
        matches!(err, CompileError::Profile(_)),
        "expected a profile-stage error, got {err}"
    );
}
