//! Integration tests of the persistent artifact store: round-trip
//! fidelity, validation-on-load of corrupted/truncated files (typed
//! errors, never panics, always recoverable by recompiling), and the
//! cross-store (simulated cross-process) fill path.

use psb_compile::{
    compile_stored, decode_artifact, encode_artifact, ArtifactCache, ArtifactSource,
    CompileRequest, DiskStore, ProfileSource, StoreError, STORE_VERSION,
};
use psb_scalar::ScalarConfig;
use psb_sched::{Model, SchedConfig};
use psb_telemetry::NullTelemetry;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh per-test scratch directory (std-only; no tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "psb_store_test_{}_{}_{tag}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

struct Fixture {
    train: psb_workloads::Workload,
    eval: psb_workloads::Workload,
    sched: SchedConfig,
}

impl Fixture {
    fn new(model: Model) -> Fixture {
        Fixture {
            train: psb_workloads::by_name("grep", 7, 96).expect("grep exists"),
            eval: psb_workloads::by_name("grep", 11, 96).expect("grep exists"),
            sched: SchedConfig::new(model),
        }
    }

    fn request(&self) -> CompileRequest<'_> {
        CompileRequest {
            program: &self.eval.program,
            profile: ProfileSource::Train {
                program: &self.train.program,
                config: ScalarConfig::default(),
            },
            sched: self.sched.clone(),
        }
    }
}

#[test]
fn artifact_round_trips_through_the_store() {
    let fx = Fixture::new(Model::RegionPred);
    let dir = scratch("roundtrip");

    // First process: compile fresh, persisting into the store.
    let store = DiskStore::open(&dir).expect("open store");
    let cache = ArtifactCache::new();
    let (fresh, source) =
        compile_stored(&fx.request(), &cache, Some(&store), &NullTelemetry).expect("compile");
    assert_eq!(source, ArtifactSource::Compiled);
    assert_eq!(
        store.stats().writes,
        1,
        "the fresh compile must persist its artifact"
    );
    assert!(store.path_for(fx.request().key()).exists());

    // "Second process": new store handle, new memory cache — the load
    // must come from disk and reproduce the artifact bit-for-bit where
    // it matters (hash, program, profile, derived stats).
    let store2 = DiskStore::open(&dir).expect("reopen store");
    let cache2 = ArtifactCache::new();
    let (loaded, source2) =
        compile_stored(&fx.request(), &cache2, Some(&store2), &NullTelemetry).expect("load");
    assert_eq!(source2, ArtifactSource::Disk);
    assert_eq!(store2.stats().hits, 1);
    assert_eq!(store2.stats().writes, 0, "a disk hit must not re-save");
    assert_eq!(loaded.content_hash, fresh.content_hash);
    assert_eq!(loaded.request_key, fresh.request_key);
    assert_eq!(loaded.program, fresh.program);
    assert_eq!(loaded.sched_stats, fresh.sched_stats);
    assert_eq!(loaded.stats.words, fresh.stats.words);
    assert_eq!(loaded.stats.slots, fresh.stats.slots);
    assert_eq!(loaded.stats.profile_branches, fresh.stats.profile_branches);
    // Stage timings are zeroed on load: no compile work happened.
    assert_eq!(loaded.stats.profile_seconds, 0.0);
    assert_eq!(loaded.stats.schedule_seconds, 0.0);
    assert_eq!(loaded.stats.decode_seconds, 0.0);

    // Third lookup on the same handle: the memory cache answers.
    let (_, source3) =
        compile_stored(&fx.request(), &cache2, Some(&store2), &NullTelemetry).expect("memory");
    assert_eq!(source3, ArtifactSource::Memory);
    assert_eq!(store2.stats().hits, 1, "memory hit must not touch disk");
}

#[test]
fn encode_decode_is_the_identity_on_the_interesting_fields() {
    let fx = Fixture::new(Model::TracePred);
    let cache = ArtifactCache::new();
    let (art, _) = compile_stored(&fx.request(), &cache, None, &NullTelemetry).expect("compile");
    let bytes = encode_artifact(&art);
    let decoded = decode_artifact(&bytes, &fx.request()).expect("decode");
    assert_eq!(decoded.content_hash, art.content_hash);
    assert_eq!(decoded.program, art.program);
    assert_eq!(decoded.profile, art.profile);
    assert_eq!(decoded.sched_stats, art.sched_stats);
}

/// Each corruption mode yields its typed error — and in every case the
/// store-backed compile path recovers by recompiling and overwriting
/// the bad file, never panicking.
#[test]
fn corrupted_files_give_typed_errors_and_recompile_heals() {
    let fx = Fixture::new(Model::Squash);
    let dir = scratch("corrupt");
    let store = DiskStore::open(&dir).expect("open store");
    let cache = ArtifactCache::new();
    let (fresh, _) =
        compile_stored(&fx.request(), &cache, Some(&store), &NullTelemetry).expect("compile");
    let path = store.path_for(fx.request().key());
    let good = std::fs::read(&path).expect("artifact file");

    // Build (corruption, expected-error-predicate) pairs.
    type Pred = fn(&StoreError) -> bool;
    let cases: Vec<(&str, Vec<u8>, Pred)> = vec![
        (
            "bad magic",
            {
                let mut b = good.clone();
                b[0] = b'Q';
                b
            },
            |e| matches!(e, StoreError::Magic),
        ),
        (
            "future version",
            {
                let mut b = good.clone();
                b[4..8].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
                b
            },
            |e| matches!(e, StoreError::Version(v) if *v == STORE_VERSION + 1),
        ),
        (
            "flipped key",
            {
                let mut b = good.clone();
                b[8] ^= 0xff;
                b
            },
            |e| matches!(e, StoreError::KeyMismatch { .. }),
        ),
        (
            "flipped payload byte",
            {
                // Header is 32 bytes (magic+version+key+hash+len), trailer 8
                // (checksum); flip a bit in the middle of the payload.
                let mut b = good.clone();
                let mid = 32 + (b.len() - 40) / 2;
                b[mid] ^= 0x01;
                b
            },
            |e| matches!(e, StoreError::Checksum { .. }),
        ),
        (
            "stored hash flipped",
            {
                // Checksum still verifies (payload untouched); the recomputed
                // content hash disagrees with the stored header field.
                let mut b = good.clone();
                b[16] ^= 0xff;
                b
            },
            |e| matches!(e, StoreError::ContentHash { .. }),
        ),
        (
            "truncated mid-payload",
            good[..good.len() / 2].to_vec(),
            |e| matches!(e, StoreError::Truncated { .. }),
        ),
        ("empty file", Vec::new(), |e| {
            matches!(e, StoreError::Truncated { offset: 0 })
        }),
    ];

    for (what, bytes, expected) in cases {
        // The decoder reports the typed error...
        let err = decode_artifact(&bytes, &fx.request()).expect_err(what);
        assert!(expected(&err), "{what}: got {err:?} ({err})");

        // ...and the full store path degrades to a recompile that heals
        // the file in place.
        std::fs::write(&path, &bytes).expect("plant corruption");
        let store = DiskStore::open(&dir).expect("reopen");
        let cache = ArtifactCache::new(); // cold memory cache each time
        let (art, source) = compile_stored(&fx.request(), &cache, Some(&store), &NullTelemetry)
            .unwrap_or_else(|e| panic!("{what}: store path must recover, got {e}"));
        assert_eq!(source, ArtifactSource::Compiled, "{what}");
        assert_eq!(art.content_hash, fresh.content_hash, "{what}");
        assert_eq!(store.stats().errors, 1, "{what}: error must be counted");
        assert_eq!(store.stats().writes, 1, "{what}: recompile must re-save");
        // The healed file now loads cleanly.
        assert_eq!(
            decode_artifact(&std::fs::read(&path).expect("healed file"), &fx.request())
                .expect("healed artifact decodes")
                .content_hash,
            fresh.content_hash,
            "{what}"
        );
    }
}

#[test]
fn a_different_requests_file_is_rejected_as_key_mismatch() {
    let fx_a = Fixture::new(Model::RegionPred);
    let fx_b = Fixture::new(Model::Trace);
    let dir = scratch("xkey");
    let store = DiskStore::open(&dir).expect("open store");
    let cache = ArtifactCache::new();
    compile_stored(&fx_a.request(), &cache, Some(&store), &NullTelemetry).expect("compile");
    // Cross-link model A's artifact under model B's name (what a buggy
    // sync or manual copy would produce).
    let bytes = std::fs::read(store.path_for(fx_a.request().key())).expect("file");
    std::fs::write(store.path_for(fx_b.request().key()), &bytes).expect("cross-link");
    let err = decode_artifact(&bytes, &fx_b.request()).expect_err("key mismatch");
    assert!(matches!(err, StoreError::KeyMismatch { .. }), "{err:?}");
    // The store path still serves the right artifact for B (recompiled).
    let cache_b = ArtifactCache::new();
    let (art_b, source) =
        compile_stored(&fx_b.request(), &cache_b, Some(&store), &NullTelemetry).expect("recover");
    assert_eq!(source, ArtifactSource::Compiled);
    let (art_a, _) =
        compile_stored(&fx_a.request(), &cache_b, Some(&store), &NullTelemetry).expect("a");
    assert_ne!(art_b.content_hash, art_a.content_hash);
}

#[test]
fn size_capped_store_evicts_oldest_artifacts() {
    let dir = scratch("evict");
    let fixtures = [
        Fixture::new(Model::RegionPred),
        Fixture::new(Model::TracePred),
        Fixture::new(Model::Squash),
    ];
    // Fill an unbounded store with three distinct artifacts.
    let store = DiskStore::open(&dir).expect("open store");
    let mut arts = Vec::new();
    for fx in &fixtures {
        let cache = ArtifactCache::new();
        let (art, _) =
            compile_stored(&fx.request(), &cache, Some(&store), &NullTelemetry).expect("compile");
        arts.push(art);
    }
    let paths: Vec<PathBuf> = fixtures
        .iter()
        .map(|fx| store.path_for(fx.request().key()))
        .collect();
    assert!(paths.iter().all(|p| p.exists()));
    // Backdate the first two so eviction order is not at the mercy of
    // filesystem timestamp granularity.
    for (i, path) in paths[..2].iter().enumerate() {
        let f = std::fs::File::options()
            .write(true)
            .open(path)
            .expect("open");
        let when =
            std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(10 * (i as u64 + 1));
        f.set_times(std::fs::FileTimes::new().set_modified(when))
            .expect("backdate");
    }

    // Reopen capped at exactly the newest artifact's size: the next
    // save must evict both older files (oldest first) and keep its own.
    let cap = std::fs::metadata(&paths[2]).expect("md").len();
    let capped = DiskStore::open_with_limit(&dir, Some(cap)).expect("reopen capped");
    capped.save(&arts[2], &NullTelemetry).expect("resave");
    assert!(!paths[0].exists(), "oldest artifact must be evicted");
    assert!(!paths[1].exists(), "second-oldest artifact must be evicted");
    assert!(
        paths[2].exists(),
        "the just-written artifact is never evicted"
    );
    assert_eq!(capped.stats().evictions, 2);

    // The survivor still loads cleanly, and a hit refreshes its mtime
    // (LRU, not FIFO): the file's mtime moves forward on load.
    let before = std::fs::metadata(&paths[2])
        .expect("md")
        .modified()
        .expect("mtime");
    let f = std::fs::File::options()
        .write(true)
        .open(&paths[2])
        .expect("open");
    f.set_times(
        std::fs::FileTimes::new()
            .set_modified(std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(30)),
    )
    .expect("backdate survivor");
    let loaded = capped
        .load(&fixtures[2].request(), &NullTelemetry)
        .expect("load")
        .expect("hit");
    assert_eq!(loaded.content_hash, arts[2].content_hash);
    let after = std::fs::metadata(&paths[2])
        .expect("md")
        .modified()
        .expect("mtime");
    assert!(after >= before, "a hit must refresh the file's mtime");
}

#[test]
fn stats_distinguish_misses_from_errors() {
    let fx = Fixture::new(Model::Boost);
    let dir = scratch("stats");
    let store = DiskStore::open(&dir).expect("open store");
    // Clean miss: no file at all.
    assert!(store
        .load(&fx.request(), &NullTelemetry)
        .expect("miss is not an error")
        .is_none());
    assert_eq!(store.stats().misses, 1);
    assert_eq!(store.stats().errors, 0);
    // Error: a file exists but is garbage.
    std::fs::write(store.path_for(fx.request().key()), b"not an artifact").expect("plant");
    let err = store
        .load(&fx.request(), &NullTelemetry)
        .expect_err("garbage must be a typed error");
    assert!(matches!(err, StoreError::Magic), "{err:?}");
    let stats = store.stats();
    assert_eq!((stats.misses, stats.errors, stats.hits), (1, 1, 0));
}
