//! The thread-safe, memoizing artifact store.
//!
//! A sweep fans (workload × model × config) points out over worker
//! threads; many points share a compile key (the same schedule measured
//! under several machine configurations, engines or penalties), and every
//! model of one workload shares a training profile.  The cache memoizes
//! both levels — compiled artifacts keyed by the full request, edge
//! profiles keyed by the training program — behind sharded mutexes.
//!
//! # Concurrency discipline
//!
//! Lookups are **single-flight**: the first thread to miss a key installs
//! a pending marker and compiles with the shard unlocked; concurrent
//! requests for the same key block on the shard's condvar until the
//! artifact lands, rather than compiling a duplicate.  This keeps the
//! hit/miss counters deterministic — a sweep with N distinct points
//! records exactly N misses at *any* `--jobs` count — which CI relies on.
//! A failed compile removes the marker and wakes the waiters, who retry
//! (and re-fail) themselves.
//!
//! Eviction is FIFO per shard, only used by bounded caches (the fuzz
//! harness caps its cache so million-case sweeps stay in memory); the
//! experiment drivers use unbounded caches whose lifetime is one sweep.

use crate::CompiledArtifact;
use psb_scalar::EdgeProfile;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shard count; keys are avalanched, so low bits select uniformly.
const SHARDS: usize = 8;

#[derive(Debug)]
enum Slot<V> {
    /// A thread is compiling this key; wait on the shard condvar.
    Pending,
    /// The finished value.
    Ready(V),
}

#[derive(Debug)]
struct ShardState<V> {
    map: HashMap<u64, Slot<V>>,
    /// Ready keys in completion order (FIFO eviction victims).
    order: VecDeque<u64>,
}

#[derive(Debug)]
struct Shard<V> {
    state: Mutex<ShardState<V>>,
    ready: Condvar,
}

/// A sharded, single-flight memo table.
#[derive(Debug)]
struct SingleFlight<V> {
    shards: Vec<Shard<V>>,
    /// Per-shard capacity (`None` = unbounded).
    shard_capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> SingleFlight<V> {
    fn new(capacity: Option<usize>) -> SingleFlight<V> {
        SingleFlight {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    }),
                    ready: Condvar::new(),
                })
                .collect(),
            shard_capacity: capacity.map(|c| c.div_ceil(SHARDS).max(1)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.state.lock().expect("cache shard poisoned").order.len() as u64)
            .sum()
    }

    /// Returns the memoized value for `key`, or runs `compute` exactly
    /// once per key across all threads (modulo failures and eviction).
    fn get_or_compute<E>(&self, key: u64, compute: impl FnOnce() -> Result<V, E>) -> Result<V, E> {
        let shard = &self.shards[key as usize % SHARDS];
        let mut st = shard.state.lock().expect("cache shard poisoned");
        loop {
            match st.map.get(&key) {
                Some(Slot::Ready(v)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(v.clone());
                }
                Some(Slot::Pending) => {
                    st = shard.ready.wait(st).expect("cache shard poisoned");
                }
                None => break,
            }
        }
        st.map.insert(key, Slot::Pending);
        self.misses.fetch_add(1, Ordering::Relaxed);
        drop(st);

        let result = compute();

        let mut st = shard.state.lock().expect("cache shard poisoned");
        match result {
            Ok(v) => {
                st.map.insert(key, Slot::Ready(v.clone()));
                st.order.push_back(key);
                if let Some(cap) = self.shard_capacity {
                    // The key just pushed is never the front while another
                    // entry exists, so the insert itself survives.
                    while st.order.len() > cap {
                        let oldest = st.order.pop_front().expect("len > cap >= 1");
                        if st.map.remove(&oldest).is_some() {
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                shard.ready.notify_all();
                Ok(v)
            }
            Err(e) => {
                st.map.remove(&key);
                shard.ready.notify_all();
                Err(e)
            }
        }
    }
}

/// A training profile memo entry: the profile plus what producing it
/// cost, so cache-served compiles report the original stage timing.
#[derive(Clone, Debug)]
pub(crate) struct ProfileEntry {
    /// The recorded edge profile.
    pub profile: EdgeProfile,
    /// Wall seconds of the scalar training run (rounded).
    pub seconds: f64,
    /// Dynamic branches the run recorded.
    pub branches: u64,
}

/// Thread-safe memoizing store for [`CompiledArtifact`]s and training
/// profiles, shared by all workers of a sweep.
#[derive(Debug)]
pub struct ArtifactCache {
    artifacts: SingleFlight<Arc<CompiledArtifact>>,
    profiles: SingleFlight<Arc<ProfileEntry>>,
}

impl ArtifactCache {
    /// An unbounded cache (the experiment drivers: one sweep, one cache).
    pub fn new() -> ArtifactCache {
        ArtifactCache {
            artifacts: SingleFlight::new(None),
            profiles: SingleFlight::new(None),
        }
    }

    /// A cache holding at most ~`capacity` artifacts (FIFO eviction), for
    /// open-ended consumers like the fuzz harness.
    pub fn with_capacity(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            artifacts: SingleFlight::new(Some(capacity)),
            profiles: SingleFlight::new(Some(capacity)),
        }
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.artifacts.hits.load(Ordering::Relaxed),
            misses: self.artifacts.misses.load(Ordering::Relaxed),
            evictions: self.artifacts.evictions.load(Ordering::Relaxed),
            entries: self.artifacts.entries(),
            profile_hits: self.profiles.hits.load(Ordering::Relaxed),
            profile_misses: self.profiles.misses.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn artifact<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<Arc<CompiledArtifact>, E>,
    ) -> Result<Arc<CompiledArtifact>, E> {
        self.artifacts.get_or_compute(key, compute)
    }

    pub(crate) fn profile<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<Arc<ProfileEntry>, E>,
    ) -> Result<Arc<ProfileEntry>, E> {
        self.profiles.get_or_compute(key, compute)
    }
}

impl Default for ArtifactCache {
    fn default() -> ArtifactCache {
        ArtifactCache::new()
    }
}

/// Counter snapshot surfaced by `repro compile` / the bench cache check
/// (rendered to JSON by the eval crate, like an `ObsReport`).
///
/// With single-flight lookups and no eviction pressure, `misses` equals
/// the number of *distinct* compile requests regardless of thread count —
/// the deterministic property CI asserts on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Artifact requests served from the cache.
    pub hits: u64,
    /// Artifact requests that compiled (one per distinct key).
    pub misses: u64,
    /// Artifacts evicted by a bounded cache's FIFO.
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: u64,
    /// Training-profile stage requests served from the memo.
    pub profile_hits: u64,
    /// Training-profile stage requests that ran the scalar machine.
    pub profile_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flight_computes_each_key_once() {
        let sf: SingleFlight<u64> = SingleFlight::new(None);
        let computed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for key in 0..16u64 {
                        let v = sf
                            .get_or_compute::<()>(key, || {
                                computed.fetch_add(1, Ordering::Relaxed);
                                // Widen the race window so waiters really
                                // do find a Pending marker.
                                std::thread::sleep(std::time::Duration::from_millis(1));
                                Ok(key * 10)
                            })
                            .unwrap();
                        assert_eq!(v, key * 10);
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 16, "duplicate compute");
        assert_eq!(sf.misses.load(Ordering::Relaxed), 16);
        assert_eq!(sf.hits.load(Ordering::Relaxed), 8 * 16 - 16);
    }

    #[test]
    fn failures_release_the_pending_marker() {
        let sf: SingleFlight<u64> = SingleFlight::new(None);
        assert_eq!(
            sf.get_or_compute(7, || Err::<u64, &str>("boom")),
            Err("boom")
        );
        // The key is retryable, not wedged.
        assert_eq!(sf.get_or_compute::<&str>(7, || Ok(42)), Ok(42));
        assert_eq!(sf.get_or_compute::<&str>(7, || Ok(0)), Ok(42));
    }

    #[test]
    fn bounded_cache_evicts_fifo() {
        let sf: SingleFlight<u64> = SingleFlight::new(Some(SHARDS));
        // Shard capacity is 1: a second distinct key in one shard evicts
        // the first.  Keys k and k + SHARDS land in the same shard.
        sf.get_or_compute::<()>(3, || Ok(1)).unwrap();
        sf.get_or_compute::<()>(3 + SHARDS as u64, || Ok(2))
            .unwrap();
        assert_eq!(sf.evictions.load(Ordering::Relaxed), 1);
        // The evicted key recomputes.
        sf.get_or_compute::<()>(3, || Ok(10)).unwrap();
        assert_eq!(sf.misses.load(Ordering::Relaxed), 3);
        assert_eq!(sf.entries(), 1);
    }
}
